//! Umbrella crate for the UPA reproduction workspace.
//!
//! Re-exports the public crates so that examples and integration tests
//! can use a single dependency, and hosts the [`suite`] module that wires
//! all nine evaluated queries (seven TPC-H + KMeans + Linear Regression)
//! into one uniform harness for the benchmark binaries.
//!
//! See `README.md` for an overview and `DESIGN.md` for the system
//! inventory.

pub mod suite;

pub use dataflow;
pub use upa_core;
pub use upa_flex;
pub use upa_mlalgo;
pub use upa_relational;
pub use upa_stats;
pub use upa_tpch;
