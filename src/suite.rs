//! The nine-query evaluation suite (paper Table II), behind one uniform
//! interface.
//!
//! Each [`EvalQuery`] exposes the four executions the experiments need:
//!
//! * `run_plain` — the vanilla dataflow job (the Figure 2(b) baseline);
//! * `run_upa` — the full UPA pipeline;
//! * `ground_truth` — exact local sensitivity by brute force (the
//!   Figure 2(a)/3 reference);
//! * `flex_sensitivity` — the FLEX static bound, or the unsupported error
//!   for the four non-count queries.
//!
//! Outputs are uniformly `Vec<f64>` (scalar queries have one component)
//! so the harness can treat counting, arithmetic and ML queries alike.

use dataflow::{Context, Data, Dataset, PairOps};
use upa_core::brute::{exact_local_sensitivity, GroundTruth};
use upa_core::domain::EmpiricalSampler;
use upa_core::join::JoinAggregate;
use upa_core::pipeline::{Upa, UpaResult};
use upa_core::query::MapReduceQuery;
use upa_core::UpaError;
use upa_flex::{analyze, FlexUnsupported, Metadata, Plan};
use upa_mlalgo::data::{generate_points, generate_regression, LifeScienceConfig};
use upa_mlalgo::kmeans::Point;
use upa_mlalgo::{KMeans, LinearRegression, LrRecord};
use upa_tpch::gen::TpchDatasets;
use upa_tpch::meta::build_metadata;
use upa_tpch::queries as tq;
use upa_tpch::{Lineitem, Order, Tables, TpchConfig};

/// Workload scale of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalScale {
    /// Number of TPC-H orders (other tables derive from it).
    pub orders: usize,
    /// Number of ML records (points / regression rows).
    pub ml_records: usize,
    /// Partitions per dataset.
    pub partitions: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for EvalScale {
    fn default() -> Self {
        EvalScale {
            orders: 5_000,
            ml_records: 10_000,
            partitions: 8,
            seed: 0xE7A1,
        }
    }
}

/// Generated workload: tables, datasets, metadata, ML data.
pub struct EvalData {
    /// Engine handle.
    pub ctx: Context,
    /// Generated TPC-H tables.
    pub tables: Tables,
    /// The tables loaded into datasets.
    pub datasets: TpchDatasets,
    /// FLEX metadata computed from the tables.
    pub metadata: Metadata,
    /// KMeans points.
    pub points: Vec<Point>,
    /// KMeans points as a dataset.
    pub points_ds: Dataset<Point>,
    /// Regression records.
    pub lr_records: Vec<LrRecord>,
    /// Regression records as a dataset.
    pub lr_ds: Dataset<LrRecord>,
    /// The scale this data was generated at.
    pub scale: EvalScale,
}

impl EvalData {
    /// Generates the full workload at `scale` on `ctx`.
    pub fn generate(ctx: &Context, scale: EvalScale) -> EvalData {
        let tables = Tables::generate(&TpchConfig {
            orders: scale.orders,
            seed: scale.seed,
            ..TpchConfig::default()
        });
        let datasets = TpchDatasets::load(ctx, &tables, scale.partitions);
        let metadata = build_metadata(&tables);
        let ml_config = LifeScienceConfig {
            records: scale.ml_records,
            dims: 4,
            clusters: 3,
            outlier_fraction: 0.01,
            seed: scale.seed ^ 0x5CD0,
        };
        let points = generate_points(&ml_config);
        let points_ds = ctx.parallelize(points.clone(), scale.partitions);
        let (lr_records, _true_w) = generate_regression(&ml_config);
        let lr_ds = ctx.parallelize(lr_records.clone(), scale.partitions);
        EvalData {
            ctx: ctx.clone(),
            tables,
            datasets,
            metadata,
            points,
            points_ds,
            lr_records,
            lr_ds,
            scale,
        }
    }
}

/// One evaluated query, uniformly over `Vec<f64>` outputs.
pub trait EvalQuery: Send + Sync {
    /// Name as the paper prints it.
    fn name(&self) -> &'static str;
    /// Table II "Query Type".
    fn kind(&self) -> &'static str;
    /// The table whose records iDP protects.
    fn protected(&self) -> &'static str;
    /// Whether FLEX supports the query.
    fn flex_supported(&self) -> bool;
    /// Vanilla dataflow execution.
    fn run_plain(&self, data: &EvalData) -> Vec<f64>;
    /// Full UPA execution.
    ///
    /// # Errors
    ///
    /// Propagates [`UpaError`] from the pipeline.
    fn run_upa(&self, upa: &mut Upa, data: &EvalData) -> Result<UpaResult<Vec<f64>>, UpaError>;
    /// Exact local sensitivity by brute force (all removals plus
    /// `domain_samples` sampled additions).
    fn ground_truth(
        &self,
        data: &EvalData,
        domain_samples: usize,
        seed: u64,
    ) -> GroundTruth<Vec<f64>>;
    /// FLEX's static bound.
    ///
    /// # Errors
    ///
    /// Returns [`FlexUnsupported`] for the four non-count queries.
    fn flex_sensitivity(&self, data: &EvalData) -> Result<f64, FlexUnsupported>;
}

/// Lifts a scalar query to the suite's uniform `Vec<f64>` output.
fn vectorize<T: Data>(q: &MapReduceQuery<T, f64, f64>) -> MapReduceQuery<T, f64, Vec<f64>> {
    let qm = q.clone();
    let qr = q.clone();
    let qf = q.clone();
    let mut v = MapReduceQuery::new(
        q.name().to_string(),
        move |t: &T| qm.map(t),
        move |a: &f64, b: &f64| qr.reduce(a, b),
        move |acc: Option<&f64>| vec![qf.finalize(acc)],
    );
    if let Some(hk) = q.half_key() {
        let hk = std::sync::Arc::clone(hk);
        v = v.with_half_key(move |t: &T| hk(t));
    }
    v
}

/// A scalar query over one protected table (Q1, Q6, Q11, Q16, Q21).
struct ScalarQuery<T> {
    name: &'static str,
    kind: &'static str,
    protected_name: &'static str,
    query: MapReduceQuery<T, f64, Vec<f64>>,
    rows: Vec<T>,
    dataset: Dataset<T>,
    flex_plan: Plan,
    flex_ok: bool,
}

impl<T: Data> EvalQuery for ScalarQuery<T> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> &'static str {
        self.kind
    }
    fn protected(&self) -> &'static str {
        self.protected_name
    }
    fn flex_supported(&self) -> bool {
        self.flex_ok
    }

    fn run_plain(&self, _data: &EvalData) -> Vec<f64> {
        let m = self.query.mapper();
        let acc = self.dataset.map(move |t| m(t)).reduce(|a, b| a + b);
        self.query.finalize(acc.as_ref())
    }

    fn run_upa(&self, upa: &mut Upa, _data: &EvalData) -> Result<UpaResult<Vec<f64>>, UpaError> {
        let domain = EmpiricalSampler::new(self.rows.clone());
        upa.run(&self.dataset, &self.query, &domain)
    }

    fn ground_truth(
        &self,
        _data: &EvalData,
        domain_samples: usize,
        seed: u64,
    ) -> GroundTruth<Vec<f64>> {
        let domain = EmpiricalSampler::new(self.rows.clone());
        exact_local_sensitivity(&self.rows, &self.query, &domain, domain_samples, seed)
    }

    fn flex_sensitivity(&self, data: &EvalData) -> Result<f64, FlexUnsupported> {
        analyze(&self.flex_plan, &data.metadata)
    }
}

/// A join-count query executed through `joinDP` (Q4, Q13).
struct JoinQuery {
    name: &'static str,
    broadcast_query: MapReduceQuery<Order, f64, Vec<f64>>,
    agg: JoinAggregate<u64, Order, Lineitem, f64, Vec<f64>>,
    pred: fn(&Order, &Lineitem) -> bool,
    orders_rows: Vec<Order>,
    orders_keyed: Dataset<(u64, Order)>,
    lineitem_keyed: Dataset<(u64, Lineitem)>,
    flex_plan: Plan,
}

impl EvalQuery for JoinQuery {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> &'static str {
        "Count"
    }
    fn protected(&self) -> &'static str {
        "orders"
    }
    fn flex_supported(&self) -> bool {
        true
    }

    fn run_plain(&self, _data: &EvalData) -> Vec<f64> {
        let pred = self.pred;
        let count = self
            .orders_keyed
            .join(&self.lineitem_keyed)
            .filter(move |(_, (o, l))| pred(o, l))
            .count();
        vec![count as f64]
    }

    fn run_upa(&self, upa: &mut Upa, _data: &EvalData) -> Result<UpaResult<Vec<f64>>, UpaError> {
        let keyed_rows: Vec<(u64, Order)> =
            self.orders_rows.iter().map(|o| (o.orderkey, *o)).collect();
        let domain = EmpiricalSampler::new(keyed_rows);
        upa.run_join(&self.orders_keyed, &self.lineitem_keyed, &self.agg, &domain)
    }

    fn ground_truth(
        &self,
        _data: &EvalData,
        domain_samples: usize,
        seed: u64,
    ) -> GroundTruth<Vec<f64>> {
        let domain = EmpiricalSampler::new(self.orders_rows.clone());
        exact_local_sensitivity(
            &self.orders_rows,
            &self.broadcast_query,
            &domain,
            domain_samples,
            seed,
        )
    }

    fn flex_sensitivity(&self, data: &EvalData) -> Result<f64, FlexUnsupported> {
        analyze(&self.flex_plan, &data.metadata)
    }
}

/// KMeans (one Lloyd iteration from a warmed-up model).
struct KmQuery {
    query: MapReduceQuery<Point, upa_mlalgo::kmeans::KmAcc, Vec<f64>>,
    model: KMeans,
    points: Vec<Point>,
    dataset: Dataset<Point>,
}

impl EvalQuery for KmQuery {
    fn name(&self) -> &'static str {
        "KMeans"
    }
    fn kind(&self) -> &'static str {
        "Machine Learning"
    }
    fn protected(&self) -> &'static str {
        "ds1.10"
    }
    fn flex_supported(&self) -> bool {
        false
    }

    fn run_plain(&self, _data: &EvalData) -> Vec<f64> {
        self.model.step_plain(&self.dataset)
    }

    fn run_upa(&self, upa: &mut Upa, _data: &EvalData) -> Result<UpaResult<Vec<f64>>, UpaError> {
        let domain = EmpiricalSampler::new(self.points.clone());
        upa.run(&self.dataset, &self.query, &domain)
    }

    fn ground_truth(
        &self,
        _data: &EvalData,
        domain_samples: usize,
        seed: u64,
    ) -> GroundTruth<Vec<f64>> {
        let domain = EmpiricalSampler::new(self.points.clone());
        exact_local_sensitivity(&self.points, &self.query, &domain, domain_samples, seed)
    }

    fn flex_sensitivity(&self, data: &EvalData) -> Result<f64, FlexUnsupported> {
        analyze(&upa_mlalgo::ml_flex_plan("ds1.10"), &data.metadata)
    }
}

/// Linear Regression (one SGD epoch from a warmed-up model).
struct LrQuery {
    query: MapReduceQuery<LrRecord, upa_mlalgo::linreg::LrAcc, Vec<f64>>,
    model: LinearRegression,
    records: Vec<LrRecord>,
    dataset: Dataset<LrRecord>,
}

impl EvalQuery for LrQuery {
    fn name(&self) -> &'static str {
        "LinearRegression"
    }
    fn kind(&self) -> &'static str {
        "Machine Learning"
    }
    fn protected(&self) -> &'static str {
        "ds1.10"
    }
    fn flex_supported(&self) -> bool {
        false
    }

    fn run_plain(&self, _data: &EvalData) -> Vec<f64> {
        self.model.step_plain(&self.dataset)
    }

    fn run_upa(&self, upa: &mut Upa, _data: &EvalData) -> Result<UpaResult<Vec<f64>>, UpaError> {
        let domain = EmpiricalSampler::new(self.records.clone());
        upa.run(&self.dataset, &self.query, &domain)
    }

    fn ground_truth(
        &self,
        _data: &EvalData,
        domain_samples: usize,
        seed: u64,
    ) -> GroundTruth<Vec<f64>> {
        let domain = EmpiricalSampler::new(self.records.clone());
        exact_local_sensitivity(&self.records, &self.query, &domain, domain_samples, seed)
    }

    fn flex_sensitivity(&self, data: &EvalData) -> Result<f64, FlexUnsupported> {
        analyze(&upa_mlalgo::ml_flex_plan("ds1.10"), &data.metadata)
    }
}

/// Builds all nine evaluated queries over `data`, in the paper's
/// Figure 2 order (the five FLEX-supported queries first).
pub fn build_queries(data: &EvalData) -> Vec<Box<dyn EvalQuery>> {
    let mut queries: Vec<Box<dyn EvalQuery>> = Vec::with_capacity(9);

    let q1 = tq::Q1::new(&data.tables);
    queries.push(Box::new(ScalarQuery {
        name: "TPCH1",
        kind: "Count",
        protected_name: "lineitem",
        query: vectorize(q1.query()),
        rows: data.tables.lineitem.clone(),
        dataset: data.datasets.lineitem.clone(),
        flex_plan: tq::Q1::flex_plan(),
        flex_ok: true,
    }));

    let (orders_keyed, lineitem_keyed) = tq::Q4::keyed(&data.datasets);
    let q4 = tq::Q4::new(&data.tables);
    queries.push(Box::new(JoinQuery {
        name: "TPCH4",
        broadcast_query: vectorize(q4.query()),
        agg: JoinAggregate::new(
            "TPCH4",
            |_k: &u64, o: &Order, l: &Lineitem| tq::q4_qualifies(o, l).then_some(1.0),
            |a, b| a + b,
            |acc: Option<&f64>| vec![acc.copied().unwrap_or(0.0)],
        ),
        pred: tq::q4_qualifies,
        orders_rows: data.tables.orders.clone(),
        orders_keyed: orders_keyed.clone(),
        lineitem_keyed: lineitem_keyed.clone(),
        flex_plan: tq::Q4::flex_plan(),
    }));

    let q13 = tq::Q13::new(&data.tables);
    queries.push(Box::new(JoinQuery {
        name: "TPCH13",
        broadcast_query: vectorize(q13.query()),
        agg: JoinAggregate::new(
            "TPCH13",
            |_k: &u64, o: &Order, l: &Lineitem| tq::q13_qualifies(o, l).then_some(1.0),
            |a, b| a + b,
            |acc: Option<&f64>| vec![acc.copied().unwrap_or(0.0)],
        ),
        pred: tq::q13_qualifies,
        orders_rows: data.tables.orders.clone(),
        orders_keyed,
        lineitem_keyed,
        flex_plan: tq::Q13::flex_plan(),
    }));

    let q16 = tq::Q16::new(&data.tables);
    queries.push(Box::new(ScalarQuery {
        name: "TPCH16",
        kind: "Count",
        protected_name: "partsupp",
        query: vectorize(q16.query()),
        rows: data.tables.partsupp.clone(),
        dataset: data.datasets.partsupp.clone(),
        flex_plan: tq::Q16::flex_plan(),
        flex_ok: true,
    }));

    let q21 = tq::Q21::new(&data.tables);
    queries.push(Box::new(ScalarQuery {
        name: "TPCH21",
        kind: "Count",
        protected_name: "supplier",
        query: vectorize(q21.query()),
        rows: data.tables.supplier.clone(),
        dataset: data.datasets.supplier.clone(),
        flex_plan: tq::Q21::flex_plan(),
        flex_ok: true,
    }));

    // KMeans: warm the model with two plain Lloyd iterations so the
    // evaluated query is a realistic mid-training step.
    let mut km = KMeans::init_from_points(&data.points, 3);
    km.fit(&data.points_ds, 2);
    queries.push(Box::new(KmQuery {
        query: km.step_query("KMeans"),
        model: km,
        points: data.points.clone(),
        dataset: data.points_ds.clone(),
    }));

    // Linear Regression: warm with three plain epochs.
    let dims = data.lr_records[0].features.len();
    let mut lr = LinearRegression::new(dims, 0.05);
    lr.fit(&data.lr_ds, 3);
    queries.push(Box::new(LrQuery {
        query: lr.step_query("LinearRegression"),
        model: lr,
        records: data.lr_records.clone(),
        dataset: data.lr_ds.clone(),
    }));

    let q6 = tq::Q6::new(&data.tables);
    queries.push(Box::new(ScalarQuery {
        name: "TPCH6",
        kind: "Arithmetic",
        protected_name: "lineitem",
        query: vectorize(q6.query()),
        rows: data.tables.lineitem.clone(),
        dataset: data.datasets.lineitem.clone(),
        flex_plan: tq::Q6::flex_plan(),
        flex_ok: false,
    }));

    let q11 = tq::Q11::new(&data.tables);
    queries.push(Box::new(ScalarQuery {
        name: "TPCH11",
        kind: "Arithmetic",
        protected_name: "partsupp",
        query: vectorize(q11.query()),
        rows: data.tables.partsupp.clone(),
        dataset: data.datasets.partsupp.clone(),
        flex_plan: tq::Q11::flex_plan(),
        flex_ok: false,
    }));

    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use upa_core::UpaConfig;

    fn tiny_data() -> EvalData {
        let ctx = Context::with_threads(4);
        EvalData::generate(
            &ctx,
            EvalScale {
                orders: 400,
                ml_records: 1_500,
                partitions: 4,
                seed: 11,
            },
        )
    }

    #[test]
    fn suite_has_nine_queries_in_paper_order() {
        let data = tiny_data();
        let queries = build_queries(&data);
        let names: Vec<&str> = queries.iter().map(|q| q.name()).collect();
        assert_eq!(
            names,
            vec![
                "TPCH1",
                "TPCH4",
                "TPCH13",
                "TPCH16",
                "TPCH21",
                "KMeans",
                "LinearRegression",
                "TPCH6",
                "TPCH11"
            ]
        );
        assert_eq!(queries.iter().filter(|q| q.flex_supported()).count(), 5);
    }

    #[test]
    fn upa_raw_output_matches_plain_for_every_query() {
        let data = tiny_data();
        let queries = build_queries(&data);
        let mut upa = Upa::new(
            data.ctx.clone(),
            UpaConfig {
                sample_size: 40,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        for q in &queries {
            let plain = q.run_plain(&data);
            let result = q.run_upa(&mut upa, &data).unwrap();
            assert_eq!(plain.len(), result.raw.len(), "{}", q.name());
            for (a, b) in plain.iter().zip(&result.raw) {
                assert!(
                    (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                    "{}: plain {a} vs upa raw {b}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn flex_supports_exactly_five() {
        let data = tiny_data();
        let queries = build_queries(&data);
        for q in &queries {
            assert_eq!(
                q.flex_sensitivity(&data).is_ok(),
                q.flex_supported(),
                "{}",
                q.name()
            );
        }
    }

    #[test]
    fn ground_truth_has_one_removal_per_protected_record() {
        let data = tiny_data();
        let queries = build_queries(&data);
        for q in &queries {
            let gt = q.ground_truth(&data, 10, 1);
            let expected = match q.protected() {
                "lineitem" => data.tables.lineitem.len(),
                "orders" => data.tables.orders.len(),
                "partsupp" => data.tables.partsupp.len(),
                "supplier" => data.tables.supplier.len(),
                "ds1.10" => data.scale.ml_records,
                other => panic!("unknown protected table {other}"),
            };
            assert_eq!(gt.removal_outputs.len(), expected, "{}", q.name());
            assert!(gt.local_sensitivity >= 0.0);
        }
    }
}
