//! End-to-end run of the full nine-query evaluation suite (Table II)
//! with noise enabled — the integration surface the benchmark binaries
//! build on.

use dataflow::Context;
use upa_repro::suite::{build_queries, EvalData, EvalScale};
use upa_repro::upa_core::{Upa, UpaConfig, UpaError};
use upa_repro::upa_stats::rmse::relative_rmse;

fn small_scale() -> EvalScale {
    EvalScale {
        orders: 600,
        ml_records: 2_000,
        partitions: 4,
        seed: 3,
    }
}

#[test]
fn all_nine_queries_release_noisy_outputs() {
    let ctx = Context::with_threads(4);
    let data = EvalData::generate(&ctx, small_scale());
    let queries = build_queries(&data);
    assert_eq!(queries.len(), 9);
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 60,
            epsilon: 0.1,
            ..UpaConfig::default()
        },
    );
    for q in &queries {
        let result = q.run_upa(&mut upa, &data).unwrap_or_else(|e| {
            panic!("{} failed: {e}", q.name());
        });
        assert!(
            result.released.iter().all(|v| v.is_finite()),
            "{}: non-finite release",
            q.name()
        );
        assert!(
            result
                .sensitivity
                .iter()
                .all(|s| *s >= 0.0 && s.is_finite()),
            "{}: bad sensitivity",
            q.name()
        );
        // Noise is on: the released value differs from the enforced one
        // in at least one component unless sensitivity is exactly zero.
        if result.sensitivity.iter().any(|s| *s > 0.0) {
            assert_ne!(result.released, result.enforced, "{}", q.name());
        }
    }
    // One history entry per query.
    assert_eq!(upa.enforcer().history_len(), 9);
}

#[test]
fn upa_sensitivity_tracks_ground_truth_for_count_queries() {
    let ctx = Context::with_threads(4);
    let data = EvalData::generate(&ctx, small_scale());
    let queries = build_queries(&data);
    let mut upa_estimates = Vec::new();
    let mut truths = Vec::new();
    for q in &queries {
        // Large sample so the estimate is dominated by the fit, not
        // sampling error (the paper's n=1000 regime).
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 1_000,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        let result = q.run_upa(&mut upa, &data).unwrap();
        let gt = q.ground_truth(&data, 200, 17);
        upa_estimates.push(result.sensitivity.iter().copied().fold(0.0, f64::max));
        truths.push(gt.local_sensitivity);
    }
    // Aggregate relative RMSE over the suite must be small: UPA's
    // Figure 2(a) reports ~3.8% on the paper's setup; allow a generous
    // factor for the tiny test scale.
    let err = relative_rmse(&upa_estimates, &truths).unwrap();
    assert!(
        err < 1.0,
        "suite-wide relative RMSE {err} out of band\nestimates {upa_estimates:?}\ntruths {truths:?}"
    );
}

#[test]
fn flex_bounds_are_conservative_where_supported() {
    let ctx = Context::with_threads(4);
    let data = EvalData::generate(&ctx, small_scale());
    let queries = build_queries(&data);
    for q in &queries {
        match q.flex_sensitivity(&data) {
            Ok(flex) => {
                let gt = q.ground_truth(&data, 100, 23);
                // FLEX's worst-case bound must upper-bound the true local
                // sensitivity (its soundness property).
                assert!(
                    flex >= gt.local_sensitivity - 1e-9,
                    "{}: FLEX {flex} below ground truth {}",
                    q.name(),
                    gt.local_sensitivity
                );
            }
            Err(_) => assert!(!q.flex_supported(), "{}", q.name()),
        }
    }
}

#[test]
fn budget_spans_multiple_suite_queries() {
    let ctx = Context::with_threads(4);
    let data = EvalData::generate(&ctx, small_scale());
    let queries = build_queries(&data);
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 40,
            epsilon: 0.1,
            ..UpaConfig::default()
        },
    )
    .with_budget(0.45);
    let mut ok = 0;
    let mut exhausted = 0;
    for q in queries.iter() {
        match q.run_upa(&mut upa, &data) {
            Ok(_) => ok += 1,
            Err(UpaError::BudgetExhausted { .. }) => exhausted += 1,
            Err(e) => panic!("{}: {e}", q.name()),
        }
    }
    assert_eq!(ok, 4, "0.45 budget funds exactly four ε=0.1 queries");
    assert_eq!(exhausted, 5);
}
