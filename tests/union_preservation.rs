//! Property-based tests of the union-preservation invariant — the heart
//! of UPA's efficiency claim.
//!
//! For a commutative, associative reducer, the neighbour outputs that
//! UPA derives by *reusing* `R(M(S′))` plus prefix/suffix partial
//! reductions must equal direct re-evaluation of the query on each
//! neighbouring dataset. These properties drive randomised datasets,
//! partitionings and reducers through both paths.

use dataflow::fault::FaultInjector;
use dataflow::{Config, Context};
use proptest::prelude::*;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::query::MapReduceQuery;
use upa_repro::upa_core::{Upa, UpaConfig};

fn upa(ctx: &Context, sample_size: usize, seed: u64) -> Upa {
    Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size,
            add_noise: false,
            seed,
            ..UpaConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every UPA removal output corresponds to evaluating the query
    /// directly on the dataset minus one of its records.
    #[test]
    fn removal_outputs_match_direct_evaluation(
        values in prop::collection::vec(-100.0f64..100.0, 30..200),
        partitions in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(values.clone(), partitions);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x)
            .with_half_key(|x: &f64| x.to_bits());
        let domain = EmpiricalSampler::new(values.clone());
        let mut u = upa(&ctx, 16, seed);
        let result = u.run(&ds, &query, &domain).unwrap();
        let total: f64 = result.raw;
        // Multiset of direct neighbour outputs.
        let direct: Vec<f64> = (0..values.len())
            .map(|i| total - values[i])
            .collect();
        for o in &result.removal_outputs {
            let hit = direct.iter().any(|d| (d - o).abs() < 1e-6 * total.abs().max(1.0));
            prop_assert!(hit, "removal output {o} matches no direct neighbour");
        }
    }

    /// A MAX-reduce (commutative, associative, non-invertible) goes
    /// through the same reuse path correctly — the reuse trick does not
    /// secretly rely on subtraction being possible.
    #[test]
    fn max_reduce_neighbours_are_exact(
        values in prop::collection::vec(0.0f64..1_000.0, 20..120),
        seed in 0u64..1_000,
    ) {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(values.clone(), 4);
        let query = MapReduceQuery::new(
            "max",
            |x: &f64| *x,
            |a: &f64, b: &f64| a.max(*b),
            |acc: Option<&f64>| acc.copied().unwrap_or(0.0),
        ).with_half_key(|x: &f64| x.to_bits());
        let domain = EmpiricalSampler::new(values.clone());
        let mut u = upa(&ctx, 12, seed);
        let result = u.run(&ds, &query, &domain).unwrap();
        // Direct evaluation for every possible removal.
        let direct: Vec<f64> = (0..values.len()).map(|i| {
            values.iter().enumerate().filter(|(j, _)| *j != i)
                .map(|(_, v)| *v).fold(0.0, f64::max)
        }).collect();
        for o in &result.removal_outputs {
            prop_assert!(
                direct.iter().any(|d| (d - o).abs() < 1e-9),
                "max removal output {o} not reproducible"
            );
        }
    }

    /// The engine's parallel reduce equals the sequential fold for any
    /// partitioning — commutativity/associativity made observable.
    #[test]
    fn parallel_reduce_is_partition_invariant(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 1..300),
        p1 in 1usize..9,
        p2 in 1usize..9,
    ) {
        let ctx = Context::with_threads(4);
        let a = ctx.parallelize(values.clone(), p1)
            .reduce(|x, y| x + y).unwrap();
        let b = ctx.parallelize(values.clone(), p2)
            .reduce(|x, y| x + y).unwrap();
        let direct: f64 = values.iter().sum();
        // Float addition is not exactly associative; tolerance covers it.
        let tol = 1e-9 * values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((a - direct).abs() <= tol);
        prop_assert!((b - direct).abs() <= tol);
    }

    /// Fault injection with retry never changes results (the property
    /// that justifies re-executing tasks — paper §II-C).
    #[test]
    fn injected_faults_do_not_change_results(
        values in prop::collection::vec(0i64..1_000, 10..400),
        fault_seed in 0u64..100,
    ) {
        let clean_ctx = Context::with_threads(4);
        let faulty_ctx = Context::new(Config {
            threads: 4,
            fault: FaultInjector::new(0.3, fault_seed),
            max_task_retries: 32,
            ..Config::default()
        });
        let clean = clean_ctx.parallelize(values.clone(), 6)
            .map(|x| x * 2)
            .reduce(|a, b| a + b);
        let faulty = faulty_ctx.parallelize(values.clone(), 6)
            .map(|x| x * 2)
            .reduce(|a, b| a + b);
        prop_assert_eq!(clean, faulty);
    }

    /// The inferred range always contains the (pre-enforcement, exact)
    /// outputs of the sampled neighbours it was fitted to — up to the
    /// 1%/99% percentile tails by construction.
    #[test]
    fn range_covers_most_sampled_neighbours(
        values in prop::collection::vec(0.0f64..50.0, 100..400),
        seed in 0u64..1_000,
    ) {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(values.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x)
            .with_half_key(|x: &f64| x.to_bits());
        let domain = EmpiricalSampler::new(values.clone());
        let mut u = upa(&ctx, 64, seed);
        let result = u.run(&ds, &query, &domain).unwrap();
        let (lo, hi) = result.range.bounds[0];
        let inside = result.removal_outputs.iter()
            .chain(result.addition_outputs.iter())
            .filter(|o| **o >= lo && **o <= hi)
            .count();
        let total = result.removal_outputs.len() + result.addition_outputs.len();
        // A normal fit's P1–P99 covers 98% in expectation; leave slack
        // for non-normal samples.
        prop_assert!(
            inside as f64 >= 0.80 * total as f64,
            "only {inside}/{total} sampled neighbours inside the range"
        );
    }
}

/// Deterministic spot check: UPA on a fault-injected engine produces the
/// same inferred sensitivity as on a clean engine.
#[test]
fn upa_pipeline_survives_fault_injection() {
    let values: Vec<f64> = (0..2_000).map(|i| (i % 31) as f64).collect();
    let query =
        MapReduceQuery::scalar_sum("sum", |x: &f64| *x).with_half_key(|x: &f64| x.to_bits());
    let domain = EmpiricalSampler::new(values.clone());

    let clean_ctx = Context::with_threads(4);
    let faulty_ctx = Context::new(Config {
        threads: 4,
        fault: FaultInjector::new(0.35, 77),
        max_task_retries: 32,
        ..Config::default()
    });

    let mut clean = upa(&clean_ctx, 50, 5);
    let mut faulty = upa(&faulty_ctx, 50, 5);
    let a = clean
        .run(&clean_ctx.parallelize(values.clone(), 8), &query, &domain)
        .unwrap();
    let b = faulty
        .run(&faulty_ctx.parallelize(values, 8), &query, &domain)
        .unwrap();
    assert_eq!(a.raw, b.raw);
    assert_eq!(a.sensitivity, b.sensitivity);
    assert!(
        faulty_ctx.metrics().task_retries > 0,
        "faults must have fired"
    );
}
