//! Integration tests of the observability layer: engine metrics
//! arithmetic, per-query audits across concurrent sessions, and
//! budget-spend accounting across repeated queries.

use dataflow::Context;
use upa_repro::upa_core::api::DpSession;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::{UpaConfig, UpaError};

fn config(n: usize) -> UpaConfig {
    UpaConfig::builder()
        .sample_size(n)
        .add_noise(false)
        .build()
        .expect("valid config")
}

/// `MetricsSnapshot::since` must attribute exactly the work done between
/// the two snapshots, field by field.
#[test]
fn metrics_snapshot_since_attributes_interval_work() {
    let ctx = Context::with_threads(2);
    let data: Vec<f64> = (0..2_000).map(|i| (i % 7) as f64).collect();
    let domain = EmpiricalSampler::new(data.clone());
    let ds = ctx.parallelize(data, 4);

    let mut session = DpSession::new(ctx.clone(), config(50));
    let before = ctx.metrics();
    session
        .dpread(&ds, &domain)
        .map_dp("count", |_x: &f64| 1.0)
        .reduce_dp(|a, b| a + b)
        .unwrap();
    let after = ctx.metrics();
    let delta = after.since(&before);

    assert!(delta.stages > 0, "query ran stages: {delta}");
    assert!(delta.tasks > 0);
    assert!(delta.records_processed > 0);
    assert_eq!(delta.stages, after.stages - before.stages);
    assert_eq!(
        delta.records_processed,
        after.records_processed - before.records_processed
    );
    // `since` against a *newer* snapshot saturates instead of wrapping.
    let inverted = before.since(&after);
    assert_eq!(inverted.stages, 0);
    assert_eq!(inverted.records_processed, 0);
}

/// Two sessions running concurrently on separate contexts keep separate,
/// coherent audit trails.
#[test]
fn concurrent_sessions_keep_separate_audits() {
    let run_session = |name: &'static str, rows: usize, sample: usize| {
        std::thread::spawn(move || {
            let ctx = Context::with_threads(2);
            let data: Vec<f64> = (0..rows).map(|i| (i % 11) as f64).collect();
            let domain = EmpiricalSampler::new(data.clone());
            let ds = ctx.parallelize(data, 4);
            let mut session = DpSession::new(ctx, config(sample));
            session
                .dpread(&ds, &domain)
                .map_dp(name, |x: &f64| *x)
                .reduce_dp(|a, b| a + b)
                .unwrap();
            let audit = session.last_audit().expect("audit recorded").clone();
            (name, audit)
        })
    };
    let a = run_session("session_a_sum", 3_000, 40);
    let b = run_session("session_b_sum", 1_000, 20);
    let (name_a, audit_a) = a.join().expect("session a completes");
    let (name_b, audit_b) = b.join().expect("session b completes");

    assert_eq!(audit_a.query, name_a);
    assert_eq!(audit_b.query, name_b);
    assert_eq!(audit_a.sample_size, 40);
    assert_eq!(audit_b.sample_size, 20);
    for audit in [&audit_a, &audit_b] {
        for stage in ["sample", "map", "reduce", "enforce", "noise"] {
            assert!(
                audit.stage_nanos(stage) > 0,
                "{}: stage {stage} has zero time",
                audit.query
            );
        }
        assert!(audit.total_nanos > 0);
        assert!(audit.engine.stages > 0);
    }
}

/// Repeated queries against one engine charge the budget once per
/// release, and every audit snapshots the remaining budget at its release.
#[test]
fn budget_spend_accounts_across_repeated_queries() {
    use upa_repro::upa_core::query::MapReduceQuery;
    use upa_repro::upa_core::Upa;

    let ctx = Context::with_threads(2);
    let data: Vec<f64> = (0..1_500).map(|i| (i % 13) as f64).collect();
    let domain = EmpiricalSampler::new(data.clone());
    let ds = ctx.parallelize(data, 4);
    let epsilon = 0.1;
    let mut upa = Upa::new(
        ctx,
        UpaConfig {
            epsilon,
            sample_size: 30,
            add_noise: false,
            ..UpaConfig::default()
        },
    )
    .with_budget(0.25);
    let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0);

    assert!(upa.run(&ds, &query, &domain).is_ok());
    assert!(upa.run(&ds, &query, &domain).is_ok());
    let third = upa.run(&ds, &query, &domain);
    assert!(
        matches!(third, Err(UpaError::BudgetExhausted { .. })),
        "0.25 budget covers two 0.1 releases, not three: {third:?}"
    );

    // Only the successful releases left audits, each recording its ε and
    // the budget remaining at that point.
    let audits = upa.audits();
    assert_eq!(audits.len(), 2);
    assert!((audits[0].epsilon - epsilon).abs() < 1e-12);
    let rem0 = audits[0].budget_remaining.expect("accountant attached");
    let rem1 = audits[1].budget_remaining.expect("accountant attached");
    assert!((rem0 - 0.15).abs() < 1e-9, "after first release: {rem0}");
    assert!((rem1 - 0.05).abs() < 1e-9, "after second release: {rem1}");
    assert_eq!(upa.remaining_budget(), Some(rem1));
}
