//! End-to-end iDP guarantee tests (paper §IV-C).
//!
//! The proof rests on two facts: (1) after range enforcement, the released
//! (pre-noise) outputs of a query on a dataset and on any neighbouring
//! dataset both lie inside `Ô_f`, so their distance is bounded by the
//! inferred sensitivity; (2) Laplace noise of scale `width/ε` then bounds
//! the output-probability ratio by `e^ε`. Both are checked empirically.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::query::MapReduceQuery;
use upa_repro::upa_core::{DpOutput, Upa, UpaConfig};

fn dataset_values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 17 + 3) % 50) as f64).collect()
}

fn sum_query() -> MapReduceQuery<f64, f64, f64> {
    MapReduceQuery::scalar_sum("sum", |x: &f64| *x).with_half_key(|x: &f64| x.to_bits())
}

/// The clamped outputs of a query on a dataset and on every neighbour
/// obtained by removing one record lie within the enforced range, so
/// their difference is bounded by the inferred sensitivity.
#[test]
fn enforced_outputs_of_neighbours_stay_within_range() {
    let ctx = Context::with_threads(4);
    let data = dataset_values(3_000);
    let query = sum_query();
    let domain = EmpiricalSampler::new(data.clone());
    let config = UpaConfig {
        sample_size: 100,
        add_noise: false,
        ..UpaConfig::default()
    };

    // Base run establishes the range.
    let mut upa = Upa::new(ctx.clone(), config.clone());
    let ds = ctx.parallelize(data.clone(), 8);
    let base = upa.run(&ds, &query, &domain).unwrap();

    // Several neighbouring datasets, each through a *fresh* UPA (we are
    // checking the mechanism's geometry, not the history-based defence).
    for drop_idx in [0usize, 917, 2_999] {
        let mut neighbour = data.clone();
        neighbour.remove(drop_idx);
        let nds = ctx.parallelize(neighbour, 8);
        let mut fresh = Upa::new(ctx.clone(), config.clone());
        let result = fresh.run(&nds, &query, &domain).unwrap();
        assert!(
            result.range.contains(&result.enforced.components()),
            "neighbour output must be inside its enforced range"
        );
        // The inferred ranges of x and x−r overlap heavily (they differ by
        // one record out of 3000), so the enforced outputs cannot be
        // pulled apart farther than roughly one range width.
        let dist = (result.enforced - base.enforced).abs();
        let width = base.sensitivity[0].max(result.sensitivity[0]);
        assert!(
            dist <= 2.0 * width + 60.0,
            "neighbour distance {dist} vastly exceeds sensitivity {width}"
        );
    }
}

/// Empirical ε-iDP check: histogram the released outputs of a count query
/// on x and on a neighbouring x′ over many runs; every bin's probability
/// ratio must respect e^±ε (with sampling slack).
#[test]
fn empirical_epsilon_ratio_bound_for_count() {
    let ctx = Context::with_threads(4);
    let data = dataset_values(2_000);
    let mut neighbour = data.clone();
    neighbour.pop();
    let query =
        MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0).with_half_key(|x: &f64| x.to_bits());
    let domain = EmpiricalSampler::new(data.clone());
    let epsilon = 0.5;
    let runs = 400;

    let collect = |values: &Vec<f64>, seed_base: u64| -> Vec<f64> {
        let ds = ctx.parallelize(values.clone(), 8);
        (0..runs)
            .map(|i| {
                let mut upa = Upa::new(
                    ctx.clone(),
                    UpaConfig {
                        sample_size: 50,
                        epsilon,
                        seed: seed_base + i as u64,
                        ..UpaConfig::default()
                    },
                );
                upa.run(&ds, &query, &domain).unwrap().released
            })
            .collect()
    };

    let out_x = collect(&data, 1_000);
    let out_y = collect(&neighbour, 2_000);

    // Coarse bins around the true count (2000): sensitivity ≈ 2, noise
    // scale ≈ 4, so ±40 covers essentially all mass.
    let bin = |v: f64| -> i64 { ((v - 2_000.0) / 8.0).floor() as i64 };
    let mut hx = std::collections::HashMap::new();
    let mut hy = std::collections::HashMap::new();
    for v in &out_x {
        *hx.entry(bin(*v)).or_insert(0usize) += 1;
    }
    for v in &out_y {
        *hy.entry(bin(*v)).or_insert(0usize) += 1;
    }
    let mut checked = 0;
    for (b, cx) in &hx {
        if let Some(cy) = hy.get(b) {
            // Only bins with enough mass give a meaningful empirical
            // ratio at 400 samples.
            if *cx >= 40 && *cy >= 40 {
                let ratio = *cx as f64 / *cy as f64;
                assert!(
                    ratio <= epsilon.exp() * 1.6 && ratio >= (-epsilon).exp() / 1.6,
                    "bin {b}: ratio {ratio} violates e^±ε"
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 2,
        "need at least two populated bins, got {checked}"
    );
}

/// The inferred sensitivity is an upper bound on the *post-enforcement*
/// local sensitivity by construction: any output is clamped into Ô_f.
#[test]
fn clamping_bounds_worst_case_outputs() {
    let ctx = Context::with_threads(4);
    // A pathological dataset: one record is 10^6 times larger than the
    // rest, so the sampled-neighbour fit almost surely misses it.
    let mut data = dataset_values(2_000);
    data[1_000] = 5.0e7;
    let query = sum_query();
    let domain = EmpiricalSampler::new(dataset_values(2_000));
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 20, // tiny sample: likely misses the outlier
            add_noise: false,
            seed: 9,
            ..UpaConfig::default()
        },
    );
    let ds = ctx.parallelize(data, 8);
    let result = upa.run(&ds, &query, &domain).unwrap();
    // Even though the raw output includes the huge outlier, the enforced
    // output is inside the inferred range: the iDP proof's prerequisite.
    assert!(result.range.contains(&result.enforced.components()));
}
