//! Attack scenarios from UPA's threat model (§III): an analyst who can
//! filter a victim's record out of the dataset submits the same query on
//! neighbouring inputs and tries to learn the victim's presence from the
//! outputs.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_tpch::queries::{Q21, Q4};
use upa_repro::upa_tpch::{Tables, TpchConfig};

fn tables() -> Tables {
    Tables::generate(&TpchConfig {
        orders: 3_000,
        ..TpchConfig::default()
    })
}

#[test]
fn repeated_supplier_query_on_neighbour_is_detected() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let q21 = Q21::new(&t);
    let domain = EmpiricalSampler::new(t.supplier.clone());
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 16,
            add_noise: false,
            ..UpaConfig::default()
        },
    );

    let full = ctx.parallelize(t.supplier.clone(), 4);
    let r1 = upa.run(&full, q21.query(), &domain).unwrap();
    assert!(!r1.enforce_outcome.attack_suspected);

    // Remove one arbitrary (mid-table) supplier: a neighbouring dataset.
    let mut neighbour = t.supplier.clone();
    neighbour.remove(neighbour.len() / 2);
    let nds = ctx.parallelize(neighbour, 4);
    let r2 = upa.run(&nds, q21.query(), &domain).unwrap();
    assert!(
        r2.enforce_outcome.attack_suspected,
        "stable half keys must expose the neighbouring repeat"
    );
    assert!(r2.enforce_outcome.removed_records >= 2);
}

#[test]
fn adding_a_record_is_also_detected() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let q21 = Q21::new(&t);
    let domain = EmpiricalSampler::new(t.supplier.clone());
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 16,
            add_noise: false,
            ..UpaConfig::default()
        },
    );

    let full = ctx.parallelize(t.supplier.clone(), 4);
    let _ = upa.run(&full, q21.query(), &domain).unwrap();

    let mut grown = t.supplier.clone();
    let mut extra = grown[0];
    extra.suppkey = 999_999; // a fresh supplier with no lineitems
    grown.push(extra);
    let gds = ctx.parallelize(grown, 4);
    let r2 = upa.run(&gds, q21.query(), &domain).unwrap();
    assert!(r2.enforce_outcome.attack_suspected);
}

#[test]
fn unrelated_queries_are_not_flagged() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let q21 = Q21::new(&t);
    let q4 = Q4::new(&t);
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 16,
            add_noise: false,
            ..UpaConfig::default()
        },
    );

    let suppliers = ctx.parallelize(t.supplier.clone(), 4);
    let supp_domain = EmpiricalSampler::new(t.supplier.clone());
    let r1 = upa.run(&suppliers, q21.query(), &supp_domain).unwrap();
    assert!(!r1.enforce_outcome.attack_suspected);

    // A different query over a different table: partition outputs differ
    // in both halves, so no defensive removal happens.
    let orders = ctx.parallelize(t.orders.clone(), 4);
    let order_domain = EmpiricalSampler::new(t.orders.clone());
    let r2 = upa.run(&orders, q4.query(), &order_domain).unwrap();
    assert!(!r2.enforce_outcome.attack_suspected);
    assert_eq!(r2.enforce_outcome.removed_records, 0);
}

#[test]
fn noisy_releases_hide_an_outlier_victim() {
    // The signal-vs-noise argument of the paper's threat model, end to
    // end: the victim's influence must be dominated by the noise scale.
    let t = tables();
    let ctx = Context::with_threads(4);
    let q21 = Q21::new(&t);
    let domain = EmpiricalSampler::new(t.supplier.clone());

    let victim_influence = t
        .supplier
        .iter()
        .map(|s| q21.query().map(s))
        .fold(0.0, f64::max);
    assert!(victim_influence > 0.0);

    let mut upa = Upa::new(ctx.clone(), UpaConfig::default());
    let full = ctx.parallelize(t.supplier.clone(), 4);
    let r = upa.run(&full, q21.query(), &domain).unwrap();
    let noise_scale = r.max_sensitivity() / r.epsilon;
    assert!(
        noise_scale > victim_influence / 2.0,
        "noise scale {noise_scale} must be commensurate with the worst-case influence {victim_influence}"
    );
}
