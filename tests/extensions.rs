//! Integration tests of the extension features: SQL-composed DP queries,
//! group-level privacy, prepared-query reuse, DP histograms and the
//! manual-range baseline — spanning `upa-relational`, `upa-core` and
//! `upa-flex`.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::manual::ManualRangeMechanism;
use upa_repro::upa_core::output::OutputRange;
use upa_repro::upa_core::query::MapReduceQuery;
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_relational::expr::Expr;
use upa_repro::upa_relational::plan::{int, LogicalPlan};
use upa_repro::upa_tpch::sql::catalog;
use upa_repro::upa_tpch::{Tables, TpchConfig};

fn tables() -> Tables {
    Tables::generate(&TpchConfig {
        orders: 1_500,
        ..TpchConfig::default()
    })
}

/// A DP count over the *rows of a SQL view*: filter with the relational
/// engine, then protect the filtered relation's rows with UPA. This is
/// the composability a SparkSQL deployment would use.
#[test]
fn dp_count_over_a_sql_view() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let sql = catalog(&ctx, &t, 4);
    // The view: urgent orders only.
    let view_plan = LogicalPlan::scan("orders").filter(Expr::col("orderpriority").eq(int(1)));
    let view = sql.execute(&view_plan).unwrap();
    let rows = view.as_rows().unwrap();
    let exact = rows.len() as f64;
    assert!(exact > 0.0);

    // Protect the view's rows: each row is one individual's order.
    let query = MapReduceQuery::scalar_sum("urgent_count", |_row: &Vec<_>| 1.0);
    let pool = rows.data().collect();
    let domain = EmpiricalSampler::new(pool);
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 64,
            add_noise: false,
            ..UpaConfig::default()
        },
    );
    let result = upa.run(rows.data(), &query, &domain).unwrap();
    assert_eq!(result.raw, exact);
    assert!((result.max_empirical_sensitivity() - 1.0).abs() < 1e-9);
}

/// Group-level privacy protects a family of g records with proportionally
/// more noise, end to end on TPC-H data.
#[test]
fn group_privacy_on_tpch_counts() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let q = upa_repro::upa_tpch::queries::Q1::new(&t);
    let domain = EmpiricalSampler::new(t.lineitem.clone());
    let ds = ctx.parallelize(t.lineitem.clone(), 4);
    let mut individual = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 100,
            add_noise: false,
            ..UpaConfig::default()
        },
    );
    let mut group = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 100,
            add_noise: false,
            group_size: 10,
            ..UpaConfig::default()
        },
    );
    let ri = individual.run(&ds, q.query(), &domain).unwrap();
    let rg = group.run(&ds, q.query(), &domain).unwrap();
    assert_eq!(ri.max_empirical_sensitivity(), 1.0);
    assert_eq!(rg.max_empirical_sensitivity(), 10.0);
    assert!(rg.max_sensitivity() > ri.max_sensitivity());
}

/// Prepared queries answer repeated analyst requests without re-running
/// the engine (the §VI-E reuse extension) — across the suite's own query
/// objects.
#[test]
fn repeated_analyst_queries_reuse_preparation() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let q = upa_repro::upa_tpch::queries::Q6::new(&t);
    let domain = EmpiricalSampler::new(t.lineitem.clone());
    let ds = ctx.parallelize(t.lineitem.clone(), 4);
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 100,
            ..UpaConfig::default()
        },
    )
    .with_budget(0.5);
    let prepared = upa.prepare(&ds, q.query(), &domain).unwrap();
    let before = ctx.metrics();
    let mut releases = Vec::new();
    for _ in 0..5 {
        releases.push(upa.release(&prepared).unwrap().released);
    }
    assert_eq!(ctx.metrics().since(&before).stages, 0);
    // All releases differ (independent noise) and the budget is spent.
    releases.sort_by(f64::total_cmp);
    releases.dedup();
    assert_eq!(releases.len(), 5);
    assert!(
        upa.release(&prepared).is_err(),
        "budget exhausted after 5 × 0.1"
    );
}

/// DP histogram of order priorities: per-bucket sensitivity is 1, and the
/// released histogram totals stay close to the truth.
#[test]
fn dp_histogram_of_order_priorities() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let query = MapReduceQuery::histogram("priorities", 5, |o: &upa_repro::upa_tpch::Order| {
        Some(o.orderpriority as usize - 1)
    })
    .with_half_key(|o: &upa_repro::upa_tpch::Order| o.orderkey);
    let domain = EmpiricalSampler::new(t.orders.clone());
    let ds = ctx.parallelize(t.orders.clone(), 4);
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 200,
            epsilon: 1.0,
            ..UpaConfig::default()
        },
    );
    let result = upa.run(&ds, &query, &domain).unwrap();
    assert_eq!(result.raw.len(), 5);
    assert_eq!(result.raw.iter().sum::<f64>(), t.orders.len() as f64);
    // A record lands in exactly one bucket: per-bucket empirical
    // sensitivity is 1.
    for s in &result.empirical_sensitivity {
        assert!((s - 1.0).abs() < 1e-9, "per-bucket sensitivity {s}");
    }
    // With ε=1 per bucket the noisy histogram is close to the truth.
    for (noisy, exact) in result.released.iter().zip(&result.raw) {
        assert!((noisy - exact).abs() < 100.0, "{noisy} vs {exact}");
    }
}

/// The manual-range baseline and UPA answer the same query; the manual
/// release is orders of magnitude noisier.
#[test]
fn manual_baseline_is_much_noisier_than_upa() {
    let t = tables();
    let ctx = Context::with_threads(4);
    let q = upa_repro::upa_tpch::queries::Q1::new(&t);
    let ds = ctx.parallelize(t.lineitem.clone(), 4);
    let epsilon = 0.1;
    // The analyst's safe global declaration: counts up to ten million.
    let mut manual = ManualRangeMechanism::new(OutputRange::new(vec![(0.0, 1.0e7)]), epsilon, 11);
    let manual_release = manual.run(&ds, q.query()).unwrap();
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size: 100,
            epsilon,
            add_noise: false,
            ..UpaConfig::default()
        },
    );
    let domain = EmpiricalSampler::new(t.lineitem.clone());
    let upa_result = upa.run(&ds, q.query(), &domain).unwrap();
    assert_eq!(manual_release.raw, upa_result.raw);
    let manual_scale = manual_release.sensitivity[0] / epsilon;
    let upa_scale = upa_result.max_sensitivity() / epsilon;
    assert!(
        manual_scale / upa_scale > 1e4,
        "manual {manual_scale} vs UPA {upa_scale}"
    );
}
