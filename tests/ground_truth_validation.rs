//! Cross-validation of the fast (associativity-reusing) ground-truth
//! oracle against the literal black-box brute force on real workload
//! queries — the check that our Figure 2(a)/3 reference values are the
//! paper's Definition II.1, just computed faster.

use upa_repro::upa_core::brute::{blackbox_local_sensitivity, exact_local_sensitivity};
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_tpch::queries::{Q21, Q4, Q6};
use upa_repro::upa_tpch::{Tables, TpchConfig};

fn tiny_tables() -> Tables {
    Tables::generate(&TpchConfig {
        orders: 60,
        ..TpchConfig::default()
    })
}

#[test]
fn fast_ground_truth_matches_blackbox_on_q4() {
    let t = tiny_tables();
    let q = Q4::new(&t);
    let domain = EmpiricalSampler::new(t.orders.clone());
    let fast = exact_local_sensitivity(&t.orders, q.query(), &domain, 30, 5);
    let slow = blackbox_local_sensitivity(&t.orders, q.query(), &domain, 30, 5);
    assert_eq!(fast.removal_outputs.len(), slow.removal_outputs.len());
    for (a, b) in fast.removal_outputs.iter().zip(&slow.removal_outputs) {
        assert!((a - b).abs() < 1e-9);
    }
    assert!((fast.local_sensitivity - slow.local_sensitivity).abs() < 1e-9);
}

#[test]
fn fast_ground_truth_matches_blackbox_on_q6() {
    let t = tiny_tables();
    let q = Q6::new(&t);
    let domain = EmpiricalSampler::new(t.lineitem.clone());
    let fast = exact_local_sensitivity(&t.lineitem, q.query(), &domain, 20, 9);
    let slow = blackbox_local_sensitivity(&t.lineitem, q.query(), &domain, 20, 9);
    assert!((fast.local_sensitivity - slow.local_sensitivity).abs() < 1e-6);
    assert!((fast.output - slow.output).abs() < 1e-6 * fast.output.abs().max(1.0));
}

#[test]
fn fast_ground_truth_matches_blackbox_on_q21() {
    let t = tiny_tables();
    let q = Q21::new(&t);
    let domain = EmpiricalSampler::new(t.supplier.clone());
    let fast = exact_local_sensitivity(&t.supplier, q.query(), &domain, 10, 3);
    let slow = blackbox_local_sensitivity(&t.supplier, q.query(), &domain, 10, 3);
    assert!((fast.local_sensitivity - slow.local_sensitivity).abs() < 1e-9);
    // Q21's sensitivity comes from the heaviest supplier: it must equal
    // the max per-supplier contribution.
    let max_contribution = t
        .supplier
        .iter()
        .map(|s| q.query().map(s))
        .fold(0.0, f64::max);
    assert!((fast.local_sensitivity - max_contribution).abs() < 1e-9);
}

#[test]
fn neighbour_extremes_match_between_oracles() {
    let t = tiny_tables();
    let q = Q4::new(&t);
    let domain = EmpiricalSampler::new(t.orders.clone());
    let fast = exact_local_sensitivity(&t.orders, q.query(), &domain, 25, 1);
    let slow = blackbox_local_sensitivity(&t.orders, q.query(), &domain, 25, 1);
    let fe = fast.neighbour_extremes();
    let se = slow.neighbour_extremes();
    for ((flo, fhi), (slo, shi)) in fe.iter().zip(&se) {
        assert!((flo - slo).abs() < 1e-9);
        assert!((fhi - shi).abs() < 1e-9);
    }
}
