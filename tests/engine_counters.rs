//! Engine-counter regression tests for the hot-path optimisations:
//! map-side combining must keep UPA's shuffle volume proportional to the
//! partition count (never the dataset size), narrow-stage fusion must
//! keep chained record transforms inside one engine stage, and repeated
//! releases must stay engine-free.

use dataflow::{Config, Context, PairOps};
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::query::MapReduceQuery;
use upa_repro::upa_core::{Upa, UpaConfig};

fn upa_over(ctx: &Context, sample_size: usize) -> Upa {
    Upa::new(
        ctx.clone(),
        UpaConfig::builder()
            .sample_size(sample_size)
            .add_noise(false)
            .build()
            .expect("valid config"),
    )
}

/// UPA's phase-3 remainder reduce keys every record by its logical half,
/// so without a combiner the shuffle ships the whole dataset. With
/// map-side combining each map partition ships at most one record per
/// half: shuffle volume is O(num_partitions), not O(|x|).
#[test]
fn prepare_shuffles_partition_counts_not_dataset_size() {
    let parts = 8usize;
    let records = 20_000usize;
    let ctx = Context::new(Config {
        threads: 4,
        default_partitions: parts,
        shuffle_partitions: parts,
        ..Config::default()
    });
    let data: Vec<f64> = (0..records).map(|i| (i % 13) as f64).collect();
    let ds = ctx.parallelize(data.clone(), parts);
    let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
    let domain = EmpiricalSampler::new(data);

    let mut upa = upa_over(&ctx, 100);
    let before = ctx.metrics();
    let prepared = upa.prepare(&ds, &query, &domain).expect("prepare runs");
    let delta = ctx.metrics().since(&before);

    assert!(delta.shuffles >= 1, "the per-half reduce is a real shuffle");
    assert!(
        delta.shuffle_records <= 2 * parts as u64,
        "combiner must cap shuffled records at 2 per map partition, got {} for {} records",
        delta.shuffle_records,
        records
    );

    // The release consumes only driver-side state: zero engine work.
    let before = ctx.metrics();
    upa.release(&prepared).expect("release runs");
    let delta = ctx.metrics().since(&before);
    assert_eq!(delta.stages, 0);
    assert_eq!(delta.shuffles, 0);
    assert_eq!(delta.shuffle_records, 0);
}

/// Disabling the combiner restores the naive O(|x|) shuffle — the
/// counter contrast proving the combiner is what bounds the volume.
#[test]
fn combiner_off_shuffles_every_remainder_record() {
    let parts = 4usize;
    let records = 5_000usize;
    let sample = 100usize;
    let ctx = Context::new(Config {
        threads: 4,
        default_partitions: parts,
        shuffle_partitions: parts,
        map_side_combine: false,
        ..Config::default()
    });
    let data: Vec<f64> = (0..records).map(|i| (i % 7) as f64).collect();
    let ds = ctx.parallelize(data.clone(), parts);
    let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
    let domain = EmpiricalSampler::new(data);

    let mut upa = upa_over(&ctx, sample);
    let before = ctx.metrics();
    upa.prepare(&ds, &query, &domain).expect("prepare runs");
    let delta = ctx.metrics().since(&before);
    assert_eq!(
        delta.shuffle_records,
        (records - sample) as u64,
        "without combining, every remainder record crosses the shuffle"
    );
}

/// A chain of narrow transforms feeding a keyed reduce runs the chain as
/// one fused stage: stage count stays flat no matter how many record
/// transforms are chained.
#[test]
fn narrow_chains_do_not_multiply_stages() {
    let ctx = Context::with_threads(4);
    let data: Vec<i64> = (0..4_000).collect();

    let run = |chain_len: usize| -> u64 {
        let before = ctx.metrics();
        let mut ds = ctx.parallelize(data.clone(), 4);
        for _ in 0..chain_len {
            ds = ds.map(|x: &i64| x + 1);
        }
        let total = ds
            .map(|x: &i64| (x % 3, *x))
            .reduce_by_key(|a, b| a + b)
            .collect()
            .iter()
            .map(|(_, v)| *v)
            .sum::<i64>();
        assert_eq!(
            total,
            data.iter().map(|x| x + chain_len as i64).sum::<i64>()
        );
        ctx.metrics().since(&before).stages
    };

    let short = run(1);
    let long = run(6);
    assert_eq!(
        short, long,
        "fusion must keep chained narrow transforms in a single stage"
    );
}
