//! Quickstart: release a differentially private count with UPA.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example loads a synthetic dataset into the dataflow engine, wraps
//! it with the paper's Table I operators (`dpread` → `mapDP` →
//! `reduceDP`), and prints the inferred sensitivity, the enforced output
//! range and the noisy release.

use dataflow::Context;
use upa_repro::upa_core::api::DpSession;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::UpaConfig;

fn main() {
    // A dataset of ages; the analyst wants the number of adults without
    // learning whether any specific individual is present.
    let ages: Vec<f64> = (0..100_000).map(|i| ((i * 37 + 11) % 100) as f64).collect();

    let ctx = Context::default();
    let dataset = ctx.parallelize_default(ages.clone());
    // The record domain the paper's added neighbours are drawn from;
    // attached at `dpread`, like the paper's Table I signature.
    let domain = EmpiricalSampler::new(ages);

    let config = UpaConfig::builder()
        .epsilon(0.1) // the paper's evaluation budget
        .build()
        .expect("valid config");
    let mut session = DpSession::new(ctx.clone(), config);

    let result = session
        .dpread(&dataset, &domain)
        .map_dp(
            "count_adults",
            |age: &f64| if *age >= 18.0 { 1.0 } else { 0.0 },
        )
        .reduce_dp(|a, b| a + b)
        .expect("query runs");

    println!("exact count      : {}", result.raw);
    println!("inferred LS      : {:.6}", result.sensitivity[0]);
    println!(
        "enforced range   : [{:.3}, {:.3}]",
        result.range.bounds[0].0, result.range.bounds[0].1
    );
    println!("noisy release    : {:.3}", result.released);
    println!(
        "noise scale      : {:.3} (sensitivity / epsilon)",
        result.sensitivity[0] / result.epsilon
    );
    println!("sampled records  : {}", result.sample_size);
    println!("engine metrics   : {}", ctx.metrics());

    // Every successful release leaves an EXPLAIN ANALYZE-style audit.
    if let Some(audit) = session.last_audit() {
        println!("\n{}", audit.render());
    }

    // A count changes by at most 1 per record, so the inferred local
    // sensitivity (the P1–P99 width of the ±1 neighbour-output sample)
    // lands within a small constant of the true sensitivity 1.
    assert!(result.sensitivity[0] > 0.0 && result.sensitivity[0] < 6.0);
}
