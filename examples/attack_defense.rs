//! The repeated-query attack from UPA's threat model, and RANGE
//! ENFORCER's defence.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example attack_defense
//! ```
//!
//! The analyst knows enough attributes of one individual's TPC-H order to
//! filter it out, and submits the same counting query twice — once
//! against the full dataset, once with the victim's record excluded. The
//! difference of exact outputs would reveal the victim's presence. UPA
//! detects that the second query matches a previous query on a
//! neighbouring dataset (partition fingerprints), removes records to
//! break the adjacency, clamps into the enforced range and adds noise.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_tpch::queries::Q21;
use upa_repro::upa_tpch::{Tables, TpchConfig};

fn main() {
    let tables = Tables::generate(&TpchConfig {
        orders: 20_000,
        ..TpchConfig::default()
    });
    let ctx = Context::default();
    let q21 = Q21::new(&tables);
    let domain = EmpiricalSampler::new(tables.supplier.clone());

    // The victim: the most active supplier (largest join fan-in — the
    // worst case for privacy).
    let victim_influence = tables
        .supplier
        .iter()
        .map(|s| q21.query().map(s))
        .fold(0.0, f64::max);
    println!("victim's true influence on the count: {victim_influence}");

    let mut upa = Upa::new(ctx.clone(), UpaConfig::default());

    // Query 1: the full supplier table.
    let full = ctx.parallelize_default(tables.supplier.clone());
    let r1 = upa.run(&full, q21.query(), &domain).expect("query runs");
    println!(
        "release 1: {:.2} (exact {:.0}, attack suspected: {})",
        r1.released, r1.raw, r1.enforce_outcome.attack_suspected
    );

    // Query 2 (the attack): same query, victim removed.
    let victim_idx = tables
        .supplier
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            q21.query()
                .map(a)
                .partial_cmp(&q21.query().map(b))
                .expect("finite")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut without_victim = tables.supplier.clone();
    without_victim.remove(victim_idx);
    let neighbour = ctx.parallelize_default(without_victim);
    let r2 = upa
        .run(&neighbour, q21.query(), &domain)
        .expect("query runs");
    println!(
        "release 2: {:.2} (exact {:.0}, attack suspected: {}, records removed: {})",
        r2.released,
        r2.raw,
        r2.enforce_outcome.attack_suspected,
        r2.enforce_outcome.removed_records
    );

    println!(
        "\nexact difference    : {:.0} (would reveal the victim)",
        r1.raw - r2.raw
    );
    println!(
        "released difference : {:.2} (noise scale {:.2} drowns the signal)",
        r1.released - r2.released,
        r1.sensitivity[0] / r1.epsilon
    );

    assert!(
        r2.enforce_outcome.attack_suspected,
        "RANGE ENFORCER must flag the neighbouring repeat"
    );
    assert!(
        r1.sensitivity[0] / r1.epsilon >= victim_influence / 2.0,
        "noise must be commensurate with the victim's influence"
    );
}
