//! Differentially private KMeans on the synthetic life-science dataset.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example private_kmeans
//! ```
//!
//! Each Lloyd iteration is one UPA query whose output (the updated
//! centroid matrix) is released with noise calibrated to the inferred
//! per-component local sensitivity. The total ε budget is split across
//! iterations by the budget accountant. The example prints the model's
//! inertia per iteration, private vs non-private.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_mlalgo::data::{generate_points, LifeScienceConfig};
use upa_repro::upa_mlalgo::KMeans;

fn main() {
    let config = LifeScienceConfig {
        records: 30_000,
        dims: 3,
        clusters: 3,
        outlier_fraction: 0.005,
        ..LifeScienceConfig::default()
    };
    let points = generate_points(&config);
    let ctx = Context::default();
    let dataset = ctx.parallelize_default(points.clone());
    let domain = EmpiricalSampler::new(points.clone());

    let iterations = 5;
    let per_iter_epsilon = 0.5;
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            epsilon: per_iter_epsilon,
            ..UpaConfig::default()
        },
    )
    .with_budget(per_iter_epsilon * iterations as f64);

    let mut private = KMeans::init_from_points(&points, 3);
    let mut plain = private.clone();

    println!("iter |   private inertia |     plain inertia | max component sensitivity");
    for iter in 0..iterations {
        // Non-private reference run.
        let flat = plain.step_plain(&dataset);
        plain.set_flat_centroids(&flat);

        // Private run: the released (noisy) centroids feed the next step.
        let query = private.step_query(format!("kmeans_iter_{iter}"));
        let result = upa.run(&dataset, &query, &domain).expect("budget suffices");
        private.set_flat_centroids(&result.released);

        println!(
            "{iter:4} | {:17.2} | {:17.2} | {:.6}",
            private.inertia(&points),
            plain.inertia(&points),
            result.max_sensitivity(),
        );
    }

    println!(
        "\nremaining budget: {:.3}",
        upa.remaining_budget().expect("budget attached")
    );
    println!("plain centroids   : {:?}", plain.centroids());
    println!("private centroids : {:?}", private.centroids());

    // Per-record influence on a centroid is ~1/cluster_size, so the noisy
    // model must stay close to the non-private one at this scale.
    let drift: f64 = plain
        .centroids()
        .iter()
        .flatten()
        .zip(private.centroids().iter().flatten())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max centroid drift: {drift:.4}");
}
