//! One query, three treatments: execute it as SQL, analyse it with FLEX,
//! release it privately with UPA.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sql_query
//! ```
//!
//! The analyst's TPCH4-style counting query is written once as a
//! relational plan. The example (1) executes the plan on the relational
//! engine, (2) derives the FLEX plan from it and compares the static
//! sensitivity bound against brute-force ground truth, and (3) runs the
//! equivalent Map/Reduce decomposition through UPA's full iDP pipeline —
//! the side-by-side that the paper's Figure 2(a) aggregates over nine
//! queries.

use dataflow::Context;
use upa_repro::upa_core::brute::exact_local_sensitivity;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_flex::{analyze, SmoothMechanism};
use upa_repro::upa_tpch::meta::build_metadata;
use upa_repro::upa_tpch::queries::Q4;
use upa_repro::upa_tpch::sql::{catalog, q4_plan};
use upa_repro::upa_tpch::{Tables, TpchConfig};

fn main() {
    let tables = Tables::generate(&TpchConfig {
        orders: 10_000,
        ..TpchConfig::default()
    });
    let ctx = Context::default();

    // (1) Execute the SQL plan.
    let sql = catalog(&ctx, &tables, 8);
    let plan = q4_plan();
    let exact = sql
        .execute(&plan)
        .expect("plan executes")
        .as_scalar()
        .expect("count is scalar");
    println!("SQL execution of TPCH4       : {exact}");

    // (2) Static analysis of the same plan.
    let metadata = build_metadata(&tables);
    let flex_plan = plan.to_flex();
    let flex_bound = analyze(&flex_plan, &metadata).expect("count query");
    let smooth = SmoothMechanism::new(0.1, 1e-6)
        .sensitivity(&flex_plan, &metadata)
        .expect("count query");
    println!("FLEX local-sensitivity bound : {flex_bound}");
    println!("FLEX smooth sensitivity      : {smooth:.2}");

    // Ground truth for comparison.
    let q4 = Q4::new(&tables);
    let domain = EmpiricalSampler::new(tables.orders.clone());
    let gt = exact_local_sensitivity(&tables.orders, q4.query(), &domain, 1_000, 7);
    println!("brute-force ground truth LS  : {}", gt.local_sensitivity);

    // (3) The UPA release.
    let mut upa = Upa::new(ctx.clone(), UpaConfig::default());
    let ds = ctx.parallelize_default(tables.orders.clone());
    let result = upa.run(&ds, q4.query(), &domain).expect("query runs");
    println!(
        "UPA inferred (empirical) LS  : {}",
        result.max_empirical_sensitivity()
    );
    println!("UPA noisy release (ε=0.1)    : {:.2}", result.released);

    assert_eq!(result.raw, exact, "all three views agree on f(x)");
    assert!(
        (result.max_empirical_sensitivity() - gt.local_sensitivity).abs()
            <= (flex_bound - gt.local_sensitivity).abs(),
        "UPA's dynamic estimate should beat the static bound"
    );
}
