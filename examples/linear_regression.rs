//! The paper's §III walk-through: Linear Regression under iDP.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example linear_regression
//! ```
//!
//! One SGD epoch is one UPA query: the mapper computes a gradient per
//! record, the reducer sums gradients, the finalize step applies the
//! model update, and UPA releases the updated weights with per-component
//! Laplace noise. The example trains privately and non-privately and
//! compares the models and their mean squared error.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_mlalgo::data::{generate_regression, LifeScienceConfig};
use upa_repro::upa_mlalgo::LinearRegression;

fn main() {
    let config = LifeScienceConfig {
        records: 50_000,
        dims: 4,
        outlier_fraction: 0.002,
        ..LifeScienceConfig::default()
    };
    let (records, true_w) = generate_regression(&config);
    let ctx = Context::default();
    let dataset = ctx.parallelize_default(records.clone());
    let domain = EmpiricalSampler::new(records.clone());

    let epochs = 20;
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            epsilon: 0.5,
            ..UpaConfig::default()
        },
    )
    .with_budget(0.5 * epochs as f64);

    let mut private = LinearRegression::new(config.dims, 0.2);
    let mut plain = private.clone();

    println!("epoch |  private MSE |    plain MSE | max grad sensitivity");
    for epoch in 0..epochs {
        plain.set_weights(plain.step_plain(&dataset));

        let query = private.step_query(format!("lr_epoch_{epoch}"));
        let result = upa.run(&dataset, &query, &domain).expect("budget suffices");
        private.set_weights(result.released.clone());

        if epoch % 4 == 0 || epoch == epochs - 1 {
            println!(
                "{epoch:5} | {:12.5} | {:12.5} | {:.6}",
                private.mse(&records),
                plain.mse(&records),
                result.max_sensitivity(),
            );
        }
    }

    println!("\nhidden model  : {true_w:?}");
    println!("plain model   : {:?}", plain.weights());
    println!("private model : {:?}", private.weights());

    let worst_gap = private
        .weights()
        .iter()
        .zip(&true_w)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max |private − hidden| = {worst_gap:.4}");
    assert!(
        private.mse(&records) < 1.0,
        "private training should still converge at this scale"
    );
}
