//! Group-level privacy and repeated-query reuse — the paper's §VI-E
//! future-work extensions, implemented.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example group_privacy
//! ```
//!
//! A hospital's dataset contains whole families; protecting a single
//! record is not enough when up to `g` records belong to one household.
//! Setting `group_size = g` makes UPA sample neighbouring datasets that
//! differ by `g` records, scaling the inferred sensitivity (and noise)
//! to joint influence. The same prepared query is then released several
//! times — fresh noise and a fresh ε charge each time, but no engine
//! re-execution.

use dataflow::Context;
use upa_repro::upa_core::domain::EmpiricalSampler;
use upa_repro::upa_core::query::MapReduceQuery;
use upa_repro::upa_core::{Upa, UpaConfig};

fn main() {
    // Synthetic patient ages; a "household" is up to 5 records.
    let ages: Vec<f64> = (0..60_000).map(|i| ((i * 13 + 7) % 95) as f64).collect();
    let ctx = Context::default();
    let dataset = ctx.parallelize_default(ages.clone());
    let domain = EmpiricalSampler::new(ages);
    let query = MapReduceQuery::scalar_sum(
        "minors_count",
        |age: &f64| {
            if *age < 18.0 {
                1.0
            } else {
                0.0
            }
        },
    )
    .with_half_key(|age: &f64| age.to_bits());

    println!("group size | inferred sensitivity | noise scale (ε = 0.1)");
    for group_size in [1usize, 2, 5, 10] {
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                group_size,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        let result = upa.run(&dataset, &query, &domain).expect("query runs");
        println!(
            "{group_size:10} | {:20.3} | {:.3}",
            result.max_empirical_sensitivity(),
            result.max_sensitivity() / result.epsilon,
        );
    }

    // Repeated-query reuse: prepare once, release thrice.
    println!("\nprepared-query reuse (no engine work per release):");
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            group_size: 5,
            ..UpaConfig::default()
        },
    )
    .with_budget(0.3);
    let prepared = upa.prepare(&dataset, &query, &domain).expect("prepares");
    let before = ctx.metrics();
    for i in 1..=3 {
        let r = upa
            .release(&prepared)
            .expect("budget covers three releases");
        println!(
            "  release {i}: {:.2} (remaining budget {:.2})",
            r.released,
            upa.remaining_budget().expect("budget attached")
        );
    }
    let delta = ctx.metrics().since(&before);
    println!(
        "  engine stages during the three releases: {} (shuffles: {})",
        delta.stages, delta.shuffles
    );
    assert_eq!(delta.stages, 0);
    assert!(
        upa.release(&prepared).is_err(),
        "fourth release exceeds the budget"
    );
    println!("  fourth release correctly refused: budget exhausted");
}
