//! Dataset metadata: the per-column maximum frequencies FLEX consumes.
//!
//! FLEX's analysis needs, for every join-key column, the number of
//! occurrences of the most frequently occurring value. The data curator
//! computes these once per dataset (they are considered public metadata in
//! FLEX's model).

use crate::plan::ColumnRef;
use std::collections::HashMap;
use std::hash::Hash;

/// Per-column maximum-frequency metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metadata {
    max_freq: HashMap<ColumnRef, u64>,
}

impl Metadata {
    /// Creates empty metadata.
    pub fn new() -> Self {
        Metadata::default()
    }

    /// Records the maximum frequency of `table.column`.
    pub fn set_max_freq(
        &mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        max_freq: u64,
    ) {
        self.max_freq
            .insert(ColumnRef::new(table, column), max_freq);
    }

    /// The maximum frequency of a column, if known.
    pub fn max_freq(&self, column: &ColumnRef) -> Option<u64> {
        self.max_freq.get(column).copied()
    }

    /// Computes and records the maximum frequency of a column from the
    /// actual key values — the helper the benchmark harness uses when it
    /// generates datasets.
    ///
    /// ```
    /// use upa_flex::{ColumnRef, Metadata};
    /// let mut m = Metadata::new();
    /// m.record_keys("t", "k", [1, 1, 1, 2, 3].iter());
    /// assert_eq!(m.max_freq(&ColumnRef::new("t", "k")), Some(3));
    /// ```
    pub fn record_keys<K: Hash + Eq, I: Iterator<Item = K>>(
        &mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        keys: I,
    ) {
        let mut counts: HashMap<K, u64> = HashMap::new();
        for k in keys {
            *counts.entry(k).or_insert(0) += 1;
        }
        let mf = counts.values().copied().max().unwrap_or(0);
        self.set_max_freq(table, column, mf);
    }

    /// Number of columns with recorded metadata.
    pub fn len(&self) -> usize {
        self.max_freq.len()
    }

    /// Whether no metadata has been recorded.
    pub fn is_empty(&self) -> bool {
        self.max_freq.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = Metadata::new();
        m.set_max_freq("orders", "custkey", 12);
        assert_eq!(m.max_freq(&ColumnRef::new("orders", "custkey")), Some(12));
        assert_eq!(m.max_freq(&ColumnRef::new("orders", "orderkey")), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn record_keys_computes_mode_frequency() {
        let mut m = Metadata::new();
        m.record_keys("t", "k", ["a", "b", "a", "c", "a", "b"].iter());
        assert_eq!(m.max_freq(&ColumnRef::new("t", "k")), Some(3));
    }

    #[test]
    fn record_keys_empty_column() {
        let mut m = Metadata::new();
        m.record_keys("t", "k", std::iter::empty::<u32>());
        assert_eq!(m.max_freq(&ColumnRef::new("t", "k")), Some(0));
    }

    #[test]
    fn overwriting_updates() {
        let mut m = Metadata::new();
        m.set_max_freq("t", "k", 5);
        m.set_max_freq("t", "k", 9);
        assert_eq!(m.max_freq(&ColumnRef::new("t", "k")), Some(9));
        assert_eq!(m.len(), 1);
    }
}
