//! **FLEX** — the static-analysis baseline UPA is evaluated against.
//!
//! FLEX ("Towards Practical Differential Privacy for SQL Queries",
//! Johnson, Near & Song, VLDB 2018) infers an upper bound on the local
//! sensitivity of SQL **counting** queries by looking only at the query's
//! operator composition and at dataset *metadata* — the maximum frequency
//! of each join key. It never executes the query:
//!
//! * a count over a single table has sensitivity 1;
//! * a count over a join can change by (at most) the product of the most
//!   frequent join-key occurrences on either side, so FLEX multiplies max
//!   frequencies across every join in the plan;
//! * `Filter` is invisible to the analysis (its selectivity is data
//!   dependent), which is FLEX's main source of over-estimation — the
//!   paper's Figure 2(a) shows it off by up to five orders of magnitude on
//!   TPCH16/TPCH21, which stack multiple filters and joins;
//! * non-count aggregates (SUM/AVG, arithmetic, machine learning) are
//!   **unsupported** — only five of the paper's nine queries are
//!   analysable (Table II).
//!
//! # Example
//!
//! ```
//! use upa_flex::{analyze, Metadata, Plan};
//!
//! let plan = Plan::count(Plan::join(
//!     Plan::table("orders"),
//!     Plan::table("lineitem"),
//!     ("orders", "orderkey"),
//!     ("lineitem", "orderkey"),
//! ));
//! let mut meta = Metadata::new();
//! meta.set_max_freq("orders", "orderkey", 1);
//! meta.set_max_freq("lineitem", "orderkey", 7);
//! let s = analyze(&plan, &meta).unwrap();
//! assert_eq!(s, 7.0);
//! ```

pub mod analysis;
pub mod metadata;
pub mod plan;
pub mod smooth;

pub use analysis::{analyze, elastic_sensitivity, FlexUnsupported};
pub use metadata::Metadata;
pub use plan::{ColumnRef, Plan};
pub use smooth::{smooth_sensitivity, SmoothMechanism};
