//! Relational query plans — the IR FLEX analyses.

/// A `(table, column)` reference used as a join key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates a column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl From<(&str, &str)> for ColumnRef {
    fn from((table, column): (&str, &str)) -> Self {
        ColumnRef::new(table, column)
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Non-count aggregates — FLEX cannot analyse these (Table II's
/// unsupported rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateKind {
    /// SUM of an expression (TPCH6, TPCH11).
    Sum,
    /// AVG of an expression.
    Avg,
    /// An iterative machine-learning computation (KMeans, Linear
    /// Regression).
    MachineLearning,
}

impl std::fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateKind::Sum => write!(f, "SUM"),
            AggregateKind::Avg => write!(f, "AVG"),
            AggregateKind::MachineLearning => write!(f, "ML"),
        }
    }
}

/// A relational query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A base table scan.
    Table {
        /// Table name.
        name: String,
    },
    /// A selection; the predicate is opaque to static analysis (which is
    /// the point — FLEX cannot see through it).
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Human-readable predicate description.
        predicate: String,
    },
    /// An equi-join on one key pair.
    Join {
        /// Left input plan.
        left: Box<Plan>,
        /// Right input plan.
        right: Box<Plan>,
        /// Join key on the left side.
        left_key: ColumnRef,
        /// Join key on the right side.
        right_key: ColumnRef,
    },
    /// COUNT(*) over the input.
    Count {
        /// Input plan.
        input: Box<Plan>,
    },
    /// A non-count aggregate (unsupported by FLEX).
    Aggregate {
        /// The aggregate's kind.
        kind: AggregateKind,
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// A base table scan.
    pub fn table(name: impl Into<String>) -> Plan {
        Plan::Table { name: name.into() }
    }

    /// A filter over `input`.
    pub fn filter(input: Plan, predicate: impl Into<String>) -> Plan {
        Plan::Filter {
            input: Box::new(input),
            predicate: predicate.into(),
        }
    }

    /// An equi-join of `left` and `right`.
    pub fn join(
        left: Plan,
        right: Plan,
        left_key: impl Into<ColumnRef>,
        right_key: impl Into<ColumnRef>,
    ) -> Plan {
        Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_key: left_key.into(),
            right_key: right_key.into(),
        }
    }

    /// COUNT(*) of `input`.
    pub fn count(input: Plan) -> Plan {
        Plan::Count {
            input: Box::new(input),
        }
    }

    /// A non-count aggregate of `input`.
    pub fn aggregate(kind: AggregateKind, input: Plan) -> Plan {
        Plan::Aggregate {
            kind,
            input: Box::new(input),
        }
    }

    /// Number of `Join` operators in the plan (the paper ties FLEX's error
    /// blow-up to this count).
    pub fn join_count(&self) -> usize {
        match self {
            Plan::Table { .. } => 0,
            Plan::Filter { input, .. } | Plan::Count { input } | Plan::Aggregate { input, .. } => {
                input.join_count()
            }
            Plan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// Number of `Filter` operators in the plan.
    pub fn filter_count(&self) -> usize {
        match self {
            Plan::Table { .. } => 0,
            Plan::Filter { input, .. } => 1 + input.filter_count(),
            Plan::Count { input } | Plan::Aggregate { input, .. } => input.filter_count(),
            Plan::Join { left, right, .. } => left.filter_count() + right.filter_count(),
        }
    }
}

/// Renders the plan as an indented operator tree, matching the engine's
/// `explain()` style.
impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn render(plan: &Plan, depth: usize, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            match plan {
                Plan::Table { name } => writeln!(f, "Table({name})"),
                Plan::Filter { input, predicate } => {
                    writeln!(f, "Filter({predicate})")?;
                    render(input, depth + 1, f)
                }
                Plan::Join {
                    left,
                    right,
                    left_key,
                    right_key,
                } => {
                    writeln!(f, "Join({left_key} = {right_key})")?;
                    render(left, depth + 1, f)?;
                    render(right, depth + 1, f)
                }
                Plan::Count { input } => {
                    writeln!(f, "Count")?;
                    render(input, depth + 1, f)
                }
                Plan::Aggregate { kind, input } => {
                    writeln!(f, "Aggregate({kind})")?;
                    render(input, depth + 1, f)
                }
            }
        }
        render(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_join_plan() -> Plan {
        Plan::count(Plan::join(
            Plan::filter(Plan::table("a"), "a.x > 3"),
            Plan::join(Plan::table("b"), Plan::table("c"), ("b", "k"), ("c", "k")),
            ("a", "k"),
            ("b", "k"),
        ))
    }

    #[test]
    fn join_and_filter_counts() {
        let p = two_join_plan();
        assert_eq!(p.join_count(), 2);
        assert_eq!(p.filter_count(), 1);
        assert_eq!(Plan::count(Plan::table("t")).join_count(), 0);
    }

    #[test]
    fn display_renders_tree() {
        let text = two_join_plan().to_string();
        assert!(text.starts_with("Count\n"));
        assert!(text.contains("Join(a.k = b.k)"));
        assert!(text.contains("Filter(a.x > 3)"));
        assert!(text.contains("Table(c)"));
    }

    #[test]
    fn column_ref_from_tuple_and_display() {
        let c: ColumnRef = ("lineitem", "orderkey").into();
        assert_eq!(c.to_string(), "lineitem.orderkey");
        assert_eq!(c, ColumnRef::new("lineitem", "orderkey"));
    }

    #[test]
    fn aggregate_kinds_display() {
        assert_eq!(AggregateKind::Sum.to_string(), "SUM");
        assert_eq!(AggregateKind::MachineLearning.to_string(), "ML");
    }
}
