//! The FLEX sensitivity analysis.
//!
//! Recursive rule (elastic sensitivity at distance 0, specialised to the
//! counting queries this paper compares on):
//!
//! ```text
//! S(Table t)                 = 1
//! S(Filter p)                = S(p)            -- predicates are opaque
//! S(Join l r on a = b)       = max( S(l) · mf(b),  S(r) · mf(a) )
//! S(Count p)                 = S(p)
//! S(Aggregate …)             = unsupported
//! ```
//!
//! where `mf(c)` is the metadata max frequency of join key `c`. Chained
//! joins therefore multiply max frequencies — the error-magnification the
//! paper describes for TPCH16/TPCH21.

use crate::metadata::Metadata;
use crate::plan::{AggregateKind, ColumnRef, Plan};

/// Why FLEX cannot analyse a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlexUnsupported {
    /// The plan's root aggregate is not COUNT (SUM/AVG/ML are the paper's
    /// "possible extensions" that FLEX does not realise).
    NonCountAggregate(AggregateKind),
    /// The plan has no aggregate at all (raw row output cannot be
    /// released under DP by FLEX).
    NoAggregate,
    /// A join key has no recorded max-frequency metadata.
    MissingMetadata(ColumnRef),
}

impl std::fmt::Display for FlexUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlexUnsupported::NonCountAggregate(kind) => {
                write!(f, "FLEX supports only COUNT, not {kind}")
            }
            FlexUnsupported::NoAggregate => write!(f, "plan has no aggregate to release"),
            FlexUnsupported::MissingMetadata(c) => {
                write!(f, "no max-frequency metadata for join key {c}")
            }
        }
    }
}

impl std::error::Error for FlexUnsupported {}

/// Analyses a counting plan, returning FLEX's local-sensitivity bound
/// (elastic sensitivity at distance 0).
///
/// # Errors
///
/// Returns [`FlexUnsupported`] for non-count queries or missing metadata —
/// the "FLEX supports 5 of 9 queries" rows of the paper's Table II.
pub fn analyze(plan: &Plan, metadata: &Metadata) -> Result<f64, FlexUnsupported> {
    elastic_sensitivity(plan, metadata, 0)
}

/// Elastic sensitivity at distance `k`: the local-sensitivity bound for
/// any dataset at edit distance `k` from the metadata's dataset. At
/// distance `k`, each join key's max frequency can have grown by `k`
/// (every edited record could pile onto the most frequent key) —
/// FLEX's `mf_k = mf + k` rule. This is the ingredient of smooth
/// sensitivity (see [`crate::smooth`]).
///
/// # Errors
///
/// Same conditions as [`analyze`].
pub fn elastic_sensitivity(
    plan: &Plan,
    metadata: &Metadata,
    k: u64,
) -> Result<f64, FlexUnsupported> {
    match plan {
        Plan::Count { input } => relation_sensitivity(input, metadata, k),
        Plan::Aggregate { kind, .. } => Err(FlexUnsupported::NonCountAggregate(*kind)),
        // Descend through non-aggregating roots looking for the aggregate.
        Plan::Filter { input, .. } => elastic_sensitivity(input, metadata, k),
        Plan::Table { .. } | Plan::Join { .. } => Err(FlexUnsupported::NoAggregate),
    }
}

/// How many output rows of `plan` one protected record can influence, at
/// edit distance `k`.
fn relation_sensitivity(plan: &Plan, metadata: &Metadata, k: u64) -> Result<f64, FlexUnsupported> {
    match plan {
        Plan::Table { .. } => Ok(1.0),
        Plan::Filter { input, .. } => relation_sensitivity(input, metadata, k),
        Plan::Count { input } | Plan::Aggregate { input, .. } => {
            relation_sensitivity(input, metadata, k)
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let mf_left = metadata
                .max_freq(left_key)
                .ok_or_else(|| FlexUnsupported::MissingMetadata(left_key.clone()))?
                + k;
            let mf_right = metadata
                .max_freq(right_key)
                .ok_or_else(|| FlexUnsupported::MissingMetadata(right_key.clone()))?
                + k;
            let s_left = relation_sensitivity(left, metadata, k)?;
            let s_right = relation_sensitivity(right, metadata, k)?;
            // One record on the left joins with up to mf(right_key) rows
            // on the right, and vice versa.
            Ok((s_left * mf_right as f64).max(s_right * mf_left as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Metadata {
        let mut m = Metadata::new();
        m.set_max_freq("orders", "orderkey", 1);
        m.set_max_freq("lineitem", "orderkey", 7);
        m.set_max_freq("lineitem", "suppkey", 120);
        m.set_max_freq("supplier", "suppkey", 1);
        m
    }

    #[test]
    fn plain_count_has_unit_sensitivity() {
        let plan = Plan::count(Plan::table("lineitem"));
        assert_eq!(analyze(&plan, &meta()).unwrap(), 1.0);
    }

    #[test]
    fn filters_are_invisible() {
        let filtered = Plan::count(Plan::filter(
            Plan::table("lineitem"),
            "shipdate < '1998-09-01'",
        ));
        let unfiltered = Plan::count(Plan::table("lineitem"));
        assert_eq!(
            analyze(&filtered, &meta()).unwrap(),
            analyze(&unfiltered, &meta()).unwrap(),
            "FLEX cannot exploit filters"
        );
    }

    #[test]
    fn join_multiplies_max_frequencies() {
        let plan = Plan::count(Plan::join(
            Plan::table("orders"),
            Plan::table("lineitem"),
            ("orders", "orderkey"),
            ("lineitem", "orderkey"),
        ));
        // max(1 · mf(lineitem.orderkey), 1 · mf(orders.orderkey)) = 7.
        assert_eq!(analyze(&plan, &meta()).unwrap(), 7.0);
    }

    #[test]
    fn chained_joins_magnify_error() {
        let plan = Plan::count(Plan::join(
            Plan::join(
                Plan::table("orders"),
                Plan::table("lineitem"),
                ("orders", "orderkey"),
                ("lineitem", "orderkey"),
            ),
            Plan::table("supplier"),
            ("lineitem", "suppkey"),
            ("supplier", "suppkey"),
        ));
        // Inner join: 7. Outer: max(7 · mf(supplier.suppkey)=7,
        // 1 · mf(lineitem.suppkey)=120) = 120.
        assert_eq!(analyze(&plan, &meta()).unwrap(), 120.0);
    }

    #[test]
    fn non_count_aggregates_are_unsupported() {
        for kind in [
            AggregateKind::Sum,
            AggregateKind::Avg,
            AggregateKind::MachineLearning,
        ] {
            let plan = Plan::aggregate(kind, Plan::table("lineitem"));
            assert_eq!(
                analyze(&plan, &meta()),
                Err(FlexUnsupported::NonCountAggregate(kind))
            );
        }
    }

    #[test]
    fn plan_without_aggregate_is_rejected() {
        assert_eq!(
            analyze(&Plan::table("lineitem"), &meta()),
            Err(FlexUnsupported::NoAggregate)
        );
    }

    #[test]
    fn missing_metadata_is_reported() {
        let plan = Plan::count(Plan::join(
            Plan::table("a"),
            Plan::table("b"),
            ("a", "k"),
            ("b", "k"),
        ));
        match analyze(&plan, &Metadata::new()) {
            Err(FlexUnsupported::MissingMetadata(c)) => assert_eq!(c.table, "a"),
            other => panic!("expected missing metadata, got {other:?}"),
        }
    }

    #[test]
    fn elastic_sensitivity_grows_with_distance() {
        let plan = Plan::count(Plan::join(
            Plan::table("orders"),
            Plan::table("lineitem"),
            ("orders", "orderkey"),
            ("lineitem", "orderkey"),
        ));
        let m = meta();
        let e0 = elastic_sensitivity(&plan, &m, 0).unwrap();
        let e5 = elastic_sensitivity(&plan, &m, 5).unwrap();
        assert_eq!(e0, 7.0);
        assert_eq!(e5, 12.0, "mf + k on both keys, max rule");
        assert!(elastic_sensitivity(&plan, &m, 100).unwrap() > e5);
    }

    #[test]
    fn elastic_sensitivity_at_zero_is_analyze() {
        let plan = Plan::count(Plan::table("lineitem"));
        let m = meta();
        assert_eq!(
            elastic_sensitivity(&plan, &m, 0).unwrap(),
            analyze(&plan, &m).unwrap()
        );
    }

    #[test]
    fn count_above_filter_above_join() {
        let plan = Plan::count(Plan::filter(
            Plan::join(
                Plan::table("orders"),
                Plan::table("lineitem"),
                ("orders", "orderkey"),
                ("lineitem", "orderkey"),
            ),
            "l_commitdate < l_receiptdate",
        ));
        assert_eq!(analyze(&plan, &meta()).unwrap(), 7.0);
    }
}
