//! Smooth sensitivity on top of elastic sensitivity.
//!
//! Smooth sensitivity (Nissim, Raskhodnikova & Smith, STOC 2007; paper
//! §II-B) protects **groups** of records by calibrating noise to the
//! maximum discounted local sensitivity over all datasets within edit
//! distance `k`:
//!
//! ```text
//! S_β(x) = max_{k ≥ 0} e^{−βk} · A^{(k)}(x)
//! ```
//!
//! FLEX instantiates `A^{(k)}` with elastic sensitivity
//! ([`crate::analysis::elastic_sensitivity`]), which grows polynomially in
//! `k` for counting queries with joins, so the exponential discount
//! guarantees the maximum is attained at a finite `k`.

use crate::analysis::{elastic_sensitivity, FlexUnsupported};
use crate::metadata::Metadata;
use crate::plan::Plan;

/// The smooth-sensitivity bound `max_k e^{−βk}·E(q, k)`.
///
/// `horizon` bounds the search; because elastic sensitivity of a plan
/// with `j` joins grows like `k^j` while the discount decays
/// exponentially, any horizon past `~j/β` is exact. The function extends
/// the search adaptively until the discounted series has clearly peaked.
///
/// # Errors
///
/// Propagates [`FlexUnsupported`] from the elastic analysis, and rejects
/// non-positive `beta`.
pub fn smooth_sensitivity(
    plan: &Plan,
    metadata: &Metadata,
    beta: f64,
) -> Result<f64, FlexUnsupported> {
    assert!(
        beta.is_finite() && beta > 0.0,
        "smooth sensitivity needs beta > 0"
    );
    let mut best = 0.0f64;
    let mut k = 0u64;
    let mut since_best = 0u32;
    loop {
        let value = (-beta * k as f64).exp() * elastic_sensitivity(plan, metadata, k)?;
        if value > best {
            best = value;
            since_best = 0;
        } else {
            since_best += 1;
            // The discounted sequence of a polynomially growing E(q,k) is
            // unimodal; a long non-improving run means the peak passed.
            if since_best > (4.0 / beta).ceil() as u32 + 8 {
                return Ok(best);
            }
        }
        k += 1;
        if k > 10_000_000 {
            // Defensive cap; unreachable for sane β.
            return Ok(best);
        }
    }
}

/// FLEX's (ε, δ) smooth-noise mechanism: `β = ε / (2·ln(2/δ))` and
/// Laplace noise of scale `2·S_β/ε`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothMechanism {
    epsilon: f64,
    delta: f64,
}

impl SmoothMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon > 0` and `0 < delta < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        SmoothMechanism { epsilon, delta }
    }

    /// The discount rate β.
    pub fn beta(&self) -> f64 {
        self.epsilon / (2.0 * (2.0 / self.delta).ln())
    }

    /// The smooth-sensitivity bound for a plan.
    ///
    /// # Errors
    ///
    /// Propagates [`FlexUnsupported`].
    pub fn sensitivity(&self, plan: &Plan, metadata: &Metadata) -> Result<f64, FlexUnsupported> {
        smooth_sensitivity(plan, metadata, self.beta())
    }

    /// The Laplace noise scale `2·S_β/ε`.
    ///
    /// # Errors
    ///
    /// Propagates [`FlexUnsupported`].
    pub fn noise_scale(&self, plan: &Plan, metadata: &Metadata) -> Result<f64, FlexUnsupported> {
        Ok(2.0 * self.sensitivity(plan, metadata)? / self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Metadata {
        let mut m = Metadata::new();
        m.set_max_freq("orders", "orderkey", 1);
        m.set_max_freq("lineitem", "orderkey", 7);
        m
    }

    fn join_count() -> Plan {
        Plan::count(Plan::join(
            Plan::table("orders"),
            Plan::table("lineitem"),
            ("orders", "orderkey"),
            ("lineitem", "orderkey"),
        ))
    }

    #[test]
    fn smooth_upper_bounds_local() {
        let m = meta();
        let local = elastic_sensitivity(&join_count(), &m, 0).unwrap();
        let smooth = smooth_sensitivity(&join_count(), &m, 0.1).unwrap();
        assert!(
            smooth >= local,
            "smooth {smooth} must dominate local {local}"
        );
    }

    #[test]
    fn smooth_of_plain_count_is_one() {
        // E(q, k) = 1 for all k, so the max is at k = 0.
        let m = meta();
        let plan = Plan::count(Plan::table("lineitem"));
        let s = smooth_sensitivity(&plan, &m, 0.25).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_beta_gives_larger_smooth_sensitivity() {
        let m = meta();
        let tight = smooth_sensitivity(&join_count(), &m, 1.0).unwrap();
        let loose = smooth_sensitivity(&join_count(), &m, 0.01).unwrap();
        assert!(loose > tight);
    }

    #[test]
    fn smooth_matches_manual_maximisation() {
        let m = meta();
        let beta = 0.2;
        let got = smooth_sensitivity(&join_count(), &m, beta).unwrap();
        let want = (0..2_000u64)
            .map(|k| (-beta * k as f64).exp() * (7.0 + k as f64))
            .fold(0.0f64, f64::max);
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    #[test]
    fn mechanism_computes_beta_and_scale() {
        let m = meta();
        let mech = SmoothMechanism::new(0.1, 1e-6);
        let beta = mech.beta();
        assert!((beta - 0.1 / (2.0 * (2.0e6f64).ln())).abs() < 1e-12);
        let scale = mech.noise_scale(&join_count(), &m).unwrap();
        assert!(scale > 2.0 * 7.0 / 0.1, "scale includes the smooth blow-up");
    }

    #[test]
    fn mechanism_propagates_unsupported() {
        let m = meta();
        let mech = SmoothMechanism::new(0.1, 1e-6);
        let plan = Plan::aggregate(crate::plan::AggregateKind::Sum, Plan::table("t"));
        assert!(mech.sensitivity(&plan, &m).is_err());
    }

    #[test]
    #[should_panic(expected = "beta > 0")]
    fn zero_beta_rejected() {
        let _ = smooth_sensitivity(&join_count(), &meta(), 0.0);
    }
}
