//! TPC-H-style workload for the UPA reproduction.
//!
//! The paper evaluates UPA on seven SparkSQL TPC-H queries over 114–133 GB
//! of TPC-H data (Table II). This crate rebuilds that substrate at
//! laptop scale:
//!
//! * [`rows`] — the TPC-H table row types used by the queries
//!   (`lineitem`, `orders`, `part`, `supplier`, `partsupp`, `nation`);
//! * [`gen`] — a **deterministic, seeded generator** with Zipf-skewed join
//!   keys. Skew matters: the heavy-fan-in suppliers it creates are exactly
//!   the sensitivity outliers that make TPCH21 the hardest query in the
//!   paper's Figure 3;
//! * [`meta`] — per-column max-frequency metadata for the FLEX baseline;
//! * [`queries`] — the seven queries (Q1, Q4, Q6, Q11, Q13, Q16, Q21),
//!   each in three forms: a plain dataflow job (the vanilla-Spark
//!   baseline), a commutative/associative Map/Reduce decomposition for
//!   UPA, and a relational plan for FLEX.
//!
//! The queries keep TPC-H's operator structure (which filters feed which
//! joins) while simplifying predicates to the generated columns; DESIGN.md
//! documents the substitution.

pub mod gen;
pub mod meta;
pub mod queries;
pub mod rows;
pub mod sql;

pub use gen::{Tables, TpchConfig};
pub use rows::{Lineitem, Nation, Order, Part, PartSupp, Supplier};
