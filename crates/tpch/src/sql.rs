//! SQL forms of the TPC-H queries, executable on the relational engine.
//!
//! The paper submits Q1/Q4/Q6/Q11/Q13/Q16/Q21 as SparkSQL; FLEX analyses
//! their plans. This module loads the generated tables into the
//! [`upa_relational`] catalog and provides each query as a
//! [`LogicalPlan`], so the *same plan* can be executed (to cross-check the
//! hand-written Map/Reduce decompositions in [`crate::queries`]) and
//! statically analysed (via [`LogicalPlan::to_flex`]).

use crate::gen::Tables;
use crate::queries::{
    Q11_NATION_BOUND, Q16_BRAND, Q16_SIZES, Q21_NATION_BOUND, Q4_DATE_HI, Q4_DATE_LO, Q6_DATE_HI,
    Q6_DATE_LO,
};
use crate::rows::STATUS_F;
use dataflow::Context;
use upa_relational::expr::Expr;
use upa_relational::plan::{int, LogicalPlan};
use upa_relational::value::{Relation, Row, Schema, Value};
use upa_relational::Catalog;

/// Loads the generated tables into a relational catalog.
pub fn catalog(ctx: &Context, tables: &Tables, partitions: usize) -> Catalog {
    let mut c = Catalog::new();

    let lineitem: Vec<Row> = tables
        .lineitem
        .iter()
        .map(|l| {
            vec![
                Value::Int(l.orderkey as i64),
                Value::Int(l.partkey as i64),
                Value::Int(l.suppkey as i64),
                Value::Float(l.quantity),
                Value::Float(l.extendedprice),
                Value::Float(l.discount),
                Value::Int(l.shipdate as i64),
                Value::Int(l.commitdate as i64),
                Value::Int(l.receiptdate as i64),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        ctx,
        Schema::new(
            "lineitem",
            &[
                "orderkey",
                "partkey",
                "suppkey",
                "quantity",
                "extendedprice",
                "discount",
                "shipdate",
                "commitdate",
                "receiptdate",
            ],
        ),
        lineitem,
        partitions,
    ));

    let orders: Vec<Row> = tables
        .orders
        .iter()
        .map(|o| {
            vec![
                Value::Int(o.orderkey as i64),
                Value::Int(o.custkey as i64),
                Value::Int(o.orderstatus as i64),
                Value::Int(o.orderdate as i64),
                Value::Int(o.orderpriority as i64),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        ctx,
        Schema::new(
            "orders",
            &[
                "orderkey",
                "custkey",
                "orderstatus",
                "orderdate",
                "orderpriority",
            ],
        ),
        orders,
        partitions,
    ));

    let part: Vec<Row> = tables
        .part
        .iter()
        .map(|p| {
            vec![
                Value::Int(p.partkey as i64),
                Value::Int(p.brand as i64),
                Value::Int(p.typ as i64),
                Value::Int(p.size as i64),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        ctx,
        Schema::new("part", &["partkey", "brand", "typ", "size"]),
        part,
        partitions,
    ));

    let supplier: Vec<Row> = tables
        .supplier
        .iter()
        .map(|s| {
            vec![
                Value::Int(s.suppkey as i64),
                Value::Int(s.nationkey as i64),
                Value::Bool(s.complaint),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        ctx,
        Schema::new("supplier", &["suppkey", "nationkey", "complaint"]),
        supplier,
        partitions,
    ));

    let partsupp: Vec<Row> = tables
        .partsupp
        .iter()
        .map(|ps| {
            vec![
                Value::Int(ps.partkey as i64),
                Value::Int(ps.suppkey as i64),
                Value::Int(ps.availqty as i64),
                Value::Float(ps.supplycost),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        ctx,
        Schema::new(
            "partsupp",
            &["partkey", "suppkey", "availqty", "supplycost"],
        ),
        partsupp,
        partitions,
    ));

    let nation: Vec<Row> = tables
        .nation
        .iter()
        .map(|n| {
            vec![
                Value::Int(n.nationkey as i64),
                Value::Int(n.regionkey as i64),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        ctx,
        Schema::new("nation", &["nationkey", "regionkey"]),
        nation,
        partitions,
    ));

    c
}

/// Q1: `SELECT COUNT(*) FROM lineitem`.
pub fn q1_plan() -> LogicalPlan {
    LogicalPlan::scan("lineitem").count()
}

/// Q4: count of qualifying `orders ⋈ lineitem` pairs.
pub fn q4_plan() -> LogicalPlan {
    LogicalPlan::scan("orders")
        .join(
            LogicalPlan::scan("lineitem"),
            "orders.orderkey",
            "lineitem.orderkey",
        )
        .filter(
            Expr::col("orders.orderdate")
                .ge(int(Q4_DATE_LO as i64))
                .and(Expr::col("orders.orderdate").lt(int(Q4_DATE_HI as i64)))
                .and(Expr::col("lineitem.commitdate").lt(Expr::col("lineitem.receiptdate"))),
        )
        .count()
}

/// Q6: `SELECT SUM(extendedprice * discount) FROM lineitem WHERE …`.
pub fn q6_plan() -> LogicalPlan {
    LogicalPlan::scan("lineitem")
        .filter(
            Expr::col("shipdate")
                .ge(int(Q6_DATE_LO as i64))
                .and(Expr::col("shipdate").lt(int(Q6_DATE_HI as i64)))
                .and(Expr::col("discount").ge(Expr::lit(Value::Float(0.05))))
                .and(Expr::col("discount").le(Expr::lit(Value::Float(0.07))))
                .and(Expr::col("quantity").lt(Expr::lit(Value::Float(24.0)))),
        )
        .sum(Expr::col("extendedprice").mul(Expr::col("discount")))
}

/// Q11: `SUM(supplycost * availqty)` for partsupp of the nation group.
pub fn q11_plan() -> LogicalPlan {
    LogicalPlan::scan("partsupp")
        .join(
            LogicalPlan::scan("supplier"),
            "partsupp.suppkey",
            "supplier.suppkey",
        )
        .filter(Expr::col("supplier.nationkey").lt(int(Q11_NATION_BOUND as i64)))
        .sum(Expr::col("partsupp.supplycost").mul(Expr::col("partsupp.availqty")))
}

/// Q13: count of `orders ⋈ lineitem` pairs for non-urgent orders.
pub fn q13_plan() -> LogicalPlan {
    LogicalPlan::scan("orders")
        .join(
            LogicalPlan::scan("lineitem"),
            "orders.orderkey",
            "lineitem.orderkey",
        )
        .filter(Expr::col("orders.orderpriority").ge(int(2)))
        .count()
}

/// Q16: count of partsupp with the brand/type/size filters and
/// complaint-free suppliers.
pub fn q16_plan() -> LogicalPlan {
    LogicalPlan::scan("partsupp")
        .join(
            LogicalPlan::scan("part"),
            "partsupp.partkey",
            "part.partkey",
        )
        .join(
            LogicalPlan::scan("supplier"),
            "partsupp.suppkey",
            "supplier.suppkey",
        )
        .filter(
            Expr::col("part.brand")
                .ne(int(Q16_BRAND as i64))
                .and(Expr::col("part.typ").modulo(int(5)).ne(int(0)))
                .and(
                    Expr::col("part.size")
                        .in_list(Q16_SIZES.iter().map(|s| Value::Int(*s as i64)).collect()),
                )
                .and(Expr::col("supplier.complaint").eq(Expr::lit(Value::Bool(false)))),
        )
        .count()
}

/// Q21: count of late lineitems of nation-group suppliers on finished
/// orders.
pub fn q21_plan() -> LogicalPlan {
    LogicalPlan::scan("supplier")
        .join(
            LogicalPlan::scan("lineitem"),
            "supplier.suppkey",
            "lineitem.suppkey",
        )
        .join(
            LogicalPlan::scan("orders"),
            "lineitem.orderkey",
            "orders.orderkey",
        )
        .join(
            LogicalPlan::scan("nation"),
            "supplier.nationkey",
            "nation.nationkey",
        )
        .filter(
            Expr::col("nation.nationkey")
                .lt(int(Q21_NATION_BOUND as i64))
                .and(Expr::col("lineitem.receiptdate").gt(Expr::col("lineitem.commitdate")))
                .and(Expr::col("orders.orderstatus").eq(int(STATUS_F as i64))),
        )
        .count()
}

/// The queries as SQL text (parsed by
/// [`upa_relational::sqlparse::parse_sql`]); the tests check that parsing
/// these strings reproduces the hand-built plans. Date and nation-group
/// constants are formatted in, matching the generator's columns.
pub fn sql_texts() -> Vec<(&'static str, String)> {
    vec![
        ("Q1", "SELECT COUNT(*) FROM lineitem".to_string()),
        (
            "Q4",
            format!(
                "SELECT COUNT(*) FROM orders \
                 JOIN lineitem ON orders.orderkey = lineitem.orderkey \
                 WHERE orders.orderdate >= {} AND orders.orderdate < {} \
                 AND lineitem.commitdate < lineitem.receiptdate",
                Q4_DATE_LO, Q4_DATE_HI
            ),
        ),
        (
            "Q6",
            format!(
                "SELECT SUM(extendedprice * discount) FROM lineitem \
                 WHERE shipdate >= {} AND shipdate < {} \
                 AND discount >= 0.05 AND discount <= 0.07 AND quantity < 24.0",
                Q6_DATE_LO, Q6_DATE_HI
            ),
        ),
        (
            "Q11",
            format!(
                "SELECT SUM(partsupp.supplycost * partsupp.availqty) FROM partsupp \
                 JOIN supplier ON partsupp.suppkey = supplier.suppkey \
                 WHERE supplier.nationkey < {Q11_NATION_BOUND}"
            ),
        ),
        (
            "Q13",
            "SELECT COUNT(*) FROM orders \
             JOIN lineitem ON orders.orderkey = lineitem.orderkey \
             WHERE orders.orderpriority >= 2"
                .to_string(),
        ),
        (
            "Q16",
            format!(
                "SELECT COUNT(*) FROM partsupp \
                 JOIN part ON partsupp.partkey = part.partkey \
                 JOIN supplier ON partsupp.suppkey = supplier.suppkey \
                 WHERE part.brand <> {} AND part.typ % 5 <> 0 \
                 AND part.size IN (1, 4, 9, 14, 19, 23, 36, 49) \
                 AND supplier.complaint = FALSE",
                Q16_BRAND
            ),
        ),
        (
            "Q21",
            format!(
                "SELECT COUNT(*) FROM supplier \
                 JOIN lineitem ON supplier.suppkey = lineitem.suppkey \
                 JOIN orders ON lineitem.orderkey = orders.orderkey \
                 JOIN nation ON supplier.nationkey = nation.nationkey \
                 WHERE nation.nationkey < {} \
                 AND lineitem.receiptdate > lineitem.commitdate \
                 AND orders.orderstatus = {}",
                Q21_NATION_BOUND, STATUS_F
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TpchConfig, TpchDatasets};
    use crate::queries as tq;

    fn setup() -> (Tables, Catalog, TpchDatasets) {
        let tables = Tables::generate(&TpchConfig {
            orders: 600,
            ..TpchConfig::default()
        });
        let ctx = Context::with_threads(4);
        let catalog = catalog(&ctx, &tables, 4);
        let datasets = TpchDatasets::load(&ctx, &tables, 4);
        (tables, catalog, datasets)
    }

    #[test]
    fn catalog_registers_all_tables() {
        let (tables, c, _d) = setup();
        assert_eq!(c.len(), 6);
        assert_eq!(c.table("lineitem").unwrap().len(), tables.lineitem.len());
        assert_eq!(c.table("orders").unwrap().len(), tables.orders.len());
    }

    /// The SQL plan and the hand-written Map/Reduce decomposition must
    /// compute the same answer for every count/arithmetic query — this is
    /// the cross-check that the plan handed to FLEX is the query UPA
    /// actually ran.
    #[test]
    fn sql_plans_match_handwritten_queries() {
        let (tables, c, d) = setup();
        let cases: Vec<(&str, LogicalPlan, f64)> = vec![
            ("Q1", q1_plan(), tq::Q1::new(&tables).plain(&d)),
            ("Q4", q4_plan(), tq::Q4::new(&tables).plain(&d)),
            ("Q6", q6_plan(), tq::Q6::new(&tables).plain(&d)),
            ("Q11", q11_plan(), tq::Q11::new(&tables).plain(&d)),
            ("Q13", q13_plan(), tq::Q13::new(&tables).plain(&d)),
            ("Q16", q16_plan(), tq::Q16::new(&tables).plain(&d)),
            ("Q21", q21_plan(), tq::Q21::new(&tables).plain(&d)),
        ];
        for (name, plan, want) in cases {
            let got = c.execute(&plan).unwrap().as_scalar().unwrap();
            let tol = 1e-6 * want.abs().max(1.0);
            assert!(
                (got - want).abs() <= tol,
                "{name}: SQL plan gives {got}, handwritten query gives {want}"
            );
        }
    }

    /// The SQL *text* of every query parses and executes to the same
    /// answer as the hand-built plan — tokenizer, parser, binder and
    /// executor exercised end to end on all seven queries.
    #[test]
    fn sql_texts_parse_and_execute() {
        let (_tables, c, _d) = setup();
        let plans: Vec<(&str, LogicalPlan)> = vec![
            ("Q1", q1_plan()),
            ("Q4", q4_plan()),
            ("Q6", q6_plan()),
            ("Q11", q11_plan()),
            ("Q13", q13_plan()),
            ("Q16", q16_plan()),
            ("Q21", q21_plan()),
        ];
        for (name, text) in sql_texts() {
            let parsed = upa_relational::parse_sql(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let want_plan = &plans.iter().find(|(n, _)| *n == name).expect("plan").1;
            let got = c.execute(&parsed).unwrap().as_scalar().unwrap();
            let want = c.execute(want_plan).unwrap().as_scalar().unwrap();
            let tol = 1e-6 * want.abs().max(1.0);
            assert!(
                (got - want).abs() <= tol,
                "{name}: SQL text gives {got}, plan gives {want}"
            );
        }
    }

    /// The FLEX plans derived from the executable SQL plans agree with the
    /// hand-maintained ones on operator structure.
    #[test]
    fn derived_flex_plans_match_handwritten_shapes() {
        assert_eq!(
            q1_plan().to_flex().join_count(),
            tq::Q1::flex_plan().join_count()
        );
        assert_eq!(
            q4_plan().to_flex().join_count(),
            tq::Q4::flex_plan().join_count()
        );
        assert_eq!(
            q13_plan().to_flex().join_count(),
            tq::Q13::flex_plan().join_count()
        );
        assert_eq!(
            q16_plan().to_flex().join_count(),
            tq::Q16::flex_plan().join_count()
        );
        assert_eq!(
            q21_plan().to_flex().join_count(),
            tq::Q21::flex_plan().join_count()
        );
    }

    /// FLEX analysis of the derived plans matches analysis of the
    /// hand-written plans numerically.
    #[test]
    fn derived_flex_plans_match_handwritten_bounds() {
        let (tables, _c, _d) = setup();
        let meta = crate::meta::build_metadata(&tables);
        for (derived, handwritten) in [
            (q1_plan().to_flex(), tq::Q1::flex_plan()),
            (q4_plan().to_flex(), tq::Q4::flex_plan()),
            (q13_plan().to_flex(), tq::Q13::flex_plan()),
            (q16_plan().to_flex(), tq::Q16::flex_plan()),
            (q21_plan().to_flex(), tq::Q21::flex_plan()),
        ] {
            let a = upa_flex::analyze(&derived, &meta).unwrap();
            let b = upa_flex::analyze(&handwritten, &meta).unwrap();
            assert_eq!(a, b);
        }
    }
}
