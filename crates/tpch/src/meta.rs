//! FLEX metadata extraction from generated tables.
//!
//! FLEX's model assumes the data curator publishes the maximum frequency
//! of every join-key column. This module computes those frequencies for
//! the generated database — the same numbers FLEX's analysis would be
//! given in production.

use crate::gen::Tables;
use upa_flex::Metadata;

/// Builds per-column max-frequency metadata for every join key the seven
/// queries use.
pub fn build_metadata(tables: &Tables) -> Metadata {
    let mut m = Metadata::new();
    m.record_keys(
        "lineitem",
        "orderkey",
        tables.lineitem.iter().map(|l| l.orderkey),
    );
    m.record_keys(
        "lineitem",
        "suppkey",
        tables.lineitem.iter().map(|l| l.suppkey),
    );
    m.record_keys(
        "lineitem",
        "partkey",
        tables.lineitem.iter().map(|l| l.partkey),
    );
    m.record_keys(
        "orders",
        "orderkey",
        tables.orders.iter().map(|o| o.orderkey),
    );
    m.record_keys("orders", "custkey", tables.orders.iter().map(|o| o.custkey));
    m.record_keys("part", "partkey", tables.part.iter().map(|p| p.partkey));
    m.record_keys(
        "supplier",
        "suppkey",
        tables.supplier.iter().map(|s| s.suppkey),
    );
    m.record_keys(
        "supplier",
        "nationkey",
        tables.supplier.iter().map(|s| s.nationkey),
    );
    m.record_keys(
        "partsupp",
        "partkey",
        tables.partsupp.iter().map(|p| p.partkey),
    );
    m.record_keys(
        "partsupp",
        "suppkey",
        tables.partsupp.iter().map(|p| p.suppkey),
    );
    m.record_keys(
        "nation",
        "nationkey",
        tables.nation.iter().map(|n| n.nationkey),
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use upa_flex::ColumnRef;

    #[test]
    fn metadata_covers_all_join_keys() {
        let tables = Tables::generate(&TpchConfig {
            orders: 500,
            ..TpchConfig::default()
        });
        let m = build_metadata(&tables);
        for (t, c) in [
            ("lineitem", "orderkey"),
            ("lineitem", "suppkey"),
            ("orders", "orderkey"),
            ("part", "partkey"),
            ("supplier", "suppkey"),
            ("partsupp", "partkey"),
            ("partsupp", "suppkey"),
            ("nation", "nationkey"),
        ] {
            assert!(
                m.max_freq(&ColumnRef::new(t, c)).is_some(),
                "missing metadata for {t}.{c}"
            );
        }
    }

    #[test]
    fn primary_keys_have_frequency_one() {
        let tables = Tables::generate(&TpchConfig {
            orders: 500,
            ..TpchConfig::default()
        });
        let m = build_metadata(&tables);
        assert_eq!(m.max_freq(&ColumnRef::new("orders", "orderkey")), Some(1));
        assert_eq!(m.max_freq(&ColumnRef::new("supplier", "suppkey")), Some(1));
        assert_eq!(m.max_freq(&ColumnRef::new("part", "partkey")), Some(1));
    }

    #[test]
    fn skewed_foreign_keys_have_high_frequency() {
        let tables = Tables::generate(&TpchConfig {
            orders: 2_000,
            ..TpchConfig::default()
        });
        let m = build_metadata(&tables);
        let supp_mf = m
            .max_freq(&ColumnRef::new("lineitem", "suppkey"))
            .expect("recorded");
        let avg = tables.lineitem.len() as u64 / tables.supplier.len() as u64;
        assert!(
            supp_mf > 3 * avg,
            "Zipf skew should inflate the max frequency (mf {supp_mf}, avg {avg})"
        );
    }
}
