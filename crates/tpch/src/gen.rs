//! Deterministic, seeded TPC-H-style data generator.
//!
//! Table cardinalities follow the official TPC-H ratios, parameterised by
//! the number of orders. Two deliberate deviations from the uniform
//! official generator, both load-bearing for the reproduction:
//!
//! * **lineitem fan-out per order** is Zipf-distributed (1..=12), so some
//!   orders own many lineitems — the join influence that Q4/Q13 must
//!   track;
//! * **lineitem supplier keys** are Zipf-distributed, so a few suppliers
//!   serve a large share of lineitems — the heavy-tailed sensitivity
//!   outliers that make TPCH21 the least accurate query in the paper's
//!   Figure 3.

use crate::rows::*;
use dataflow::{Context, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upa_stats::sampling::Zipf;

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchConfig {
    /// Number of `orders` rows; every other cardinality derives from it
    /// using TPC-H's ratios (lineitem ≈ 4×, part = 2/15×, supplier =
    /// 1/150× with a floor, partsupp = 4 per part).
    pub orders: usize,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Zipf exponent for the lineitem→supplier skew. 0 disables the skew;
    /// the default 1.1 produces the heavy-tailed supplier fan-in.
    pub supplier_skew: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            orders: 5_000,
            seed: 0x7C_4D,
            supplier_skew: 1.1,
        }
    }
}

/// The generated database.
#[derive(Debug, Clone, Default)]
pub struct Tables {
    /// `lineitem` rows (the biggest table).
    pub lineitem: Vec<Lineitem>,
    /// `orders` rows.
    pub orders: Vec<Order>,
    /// `part` rows.
    pub part: Vec<Part>,
    /// `supplier` rows.
    pub supplier: Vec<Supplier>,
    /// `partsupp` rows.
    pub partsupp: Vec<PartSupp>,
    /// `nation` rows (always 25).
    pub nation: Vec<Nation>,
}

impl Tables {
    /// Generates a database.
    ///
    /// # Panics
    ///
    /// Panics if `config.orders` is zero.
    pub fn generate(config: &TpchConfig) -> Tables {
        assert!(config.orders > 0, "orders must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let num_orders = config.orders;
        let num_parts = (num_orders * 2 / 15).max(20);
        let num_suppliers = (num_orders / 150).max(10);
        let fanout = Zipf::new(12, 1.0);
        let supp_pick = Zipf::new(num_suppliers, config.supplier_skew);
        let part_pick = Zipf::new(num_parts, 0.6);

        let nation: Vec<Nation> = (0..25)
            .map(|k| Nation {
                nationkey: k,
                regionkey: k / 5,
            })
            .collect();

        let supplier: Vec<Supplier> = (0..num_suppliers)
            .map(|i| Supplier {
                suppkey: i as u64 + 1,
                nationkey: rng.gen_range(0..25),
                acctbal: rng.gen_range(-999.0..9999.0),
                complaint: rng.gen_bool(0.08),
            })
            .collect();

        let part: Vec<Part> = (0..num_parts)
            .map(|i| Part {
                partkey: i as u64 + 1,
                brand: rng.gen_range(1..=25),
                typ: rng.gen_range(1..=150),
                size: rng.gen_range(1..=50),
            })
            .collect();

        // Each part is supplied by 4 suppliers, as in TPC-H.
        let mut partsupp = Vec::with_capacity(num_parts * 4);
        for p in &part {
            for _ in 0..4 {
                partsupp.push(PartSupp {
                    partkey: p.partkey,
                    suppkey: rng.gen_range(1..=num_suppliers as u64),
                    availqty: rng.gen_range(1..10_000),
                    supplycost: rng.gen_range(1.0..1_000.0),
                });
            }
        }

        let mut orders = Vec::with_capacity(num_orders);
        let mut lineitem = Vec::new();
        for i in 0..num_orders {
            let orderkey = i as u64 + 1;
            let orderdate = rng.gen_range(0..DATE_RANGE - 151);
            let status = *[STATUS_F, STATUS_O, STATUS_P]
                .get(rng.gen_range(0..3))
                .expect("three statuses");
            orders.push(Order {
                orderkey,
                custkey: rng.gen_range(1..=(num_orders as u64 / 10).max(1)),
                orderstatus: status,
                totalprice: rng.gen_range(900.0..500_000.0),
                orderdate,
                orderpriority: rng.gen_range(1..=5),
            });
            let lines = fanout.sample(&mut rng);
            for _ in 0..lines {
                let quantity = rng.gen_range(1.0..50.0);
                let shipdate = orderdate + rng.gen_range(1..121);
                lineitem.push(Lineitem {
                    orderkey,
                    partkey: part_pick.sample(&mut rng) as u64,
                    suppkey: supp_pick.sample(&mut rng) as u64,
                    quantity,
                    extendedprice: quantity * rng.gen_range(900.0..2_100.0),
                    discount: rng.gen_range(0..=10) as f64 / 100.0,
                    tax: rng.gen_range(0..=8) as f64 / 100.0,
                    shipdate,
                    commitdate: orderdate + rng.gen_range(30..91),
                    receiptdate: shipdate + rng.gen_range(1..31),
                });
            }
        }

        Tables {
            lineitem,
            orders,
            part,
            supplier,
            partsupp,
            nation,
        }
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.lineitem.len()
            + self.orders.len()
            + self.part.len()
            + self.supplier.len()
            + self.partsupp.len()
            + self.nation.len()
    }
}

/// The database loaded into engine datasets (the "RDDs" of the queries).
#[derive(Debug, Clone)]
pub struct TpchDatasets {
    /// `lineitem` dataset.
    pub lineitem: Dataset<Lineitem>,
    /// `orders` dataset.
    pub orders: Dataset<Order>,
    /// `part` dataset.
    pub part: Dataset<Part>,
    /// `supplier` dataset.
    pub supplier: Dataset<Supplier>,
    /// `partsupp` dataset.
    pub partsupp: Dataset<PartSupp>,
    /// `nation` dataset.
    pub nation: Dataset<Nation>,
}

impl TpchDatasets {
    /// Loads the tables into `partitions`-way datasets on `ctx`.
    pub fn load(ctx: &Context, tables: &Tables, partitions: usize) -> TpchDatasets {
        TpchDatasets {
            lineitem: ctx.parallelize(tables.lineitem.clone(), partitions),
            orders: ctx.parallelize(tables.orders.clone(), partitions),
            part: ctx.parallelize(tables.part.clone(), partitions),
            supplier: ctx.parallelize(tables.supplier.clone(), partitions),
            partsupp: ctx.parallelize(tables.partsupp.clone(), partitions),
            nation: ctx.parallelize(tables.nation.clone(), partitions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tables {
        Tables::generate(&TpchConfig {
            orders: 1_000,
            seed: 42,
            supplier_skew: 1.1,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.partsupp, b.partsupp);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = Tables::generate(&TpchConfig {
            orders: 1_000,
            seed: 43,
            supplier_skew: 1.1,
        });
        assert_ne!(a.lineitem, b.lineitem);
    }

    #[test]
    fn cardinalities_follow_ratios() {
        let t = small();
        assert_eq!(t.orders.len(), 1_000);
        assert_eq!(t.nation.len(), 25);
        assert_eq!(t.partsupp.len(), t.part.len() * 4);
        // Zipf(12, 1.0) has mean ≈ 3.9; lineitem is a few times orders.
        assert!(t.lineitem.len() > t.orders.len());
        assert!(t.lineitem.len() < t.orders.len() * 12);
        assert!(t.total_rows() > t.lineitem.len());
    }

    #[test]
    fn foreign_keys_are_valid() {
        let t = small();
        let max_supp = t.supplier.len() as u64;
        let max_part = t.part.len() as u64;
        for l in &t.lineitem {
            assert!(l.orderkey >= 1 && l.orderkey <= t.orders.len() as u64);
            assert!(l.suppkey >= 1 && l.suppkey <= max_supp);
            assert!(l.partkey >= 1 && l.partkey <= max_part);
            assert!(l.receiptdate > l.shipdate);
            assert!(l.shipdate > 0);
        }
        for ps in &t.partsupp {
            assert!(ps.suppkey >= 1 && ps.suppkey <= max_supp);
            assert!(ps.partkey >= 1 && ps.partkey <= max_part);
        }
        for s in &t.supplier {
            assert!(s.nationkey < 25);
        }
    }

    #[test]
    fn supplier_keys_are_skewed() {
        let t = small();
        let mut counts = vec![0usize; t.supplier.len() + 1];
        for l in &t.lineitem {
            counts[l.suppkey as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let avg = t.lineitem.len() / t.supplier.len();
        assert!(
            max > avg * 3,
            "expected heavy-tailed supplier fan-in (max {max}, avg {avg})"
        );
    }

    #[test]
    fn datasets_load_with_requested_partitioning() {
        let t = small();
        let ctx = Context::with_threads(2);
        let ds = TpchDatasets::load(&ctx, &t, 4);
        assert_eq!(ds.lineitem.len(), t.lineitem.len());
        assert_eq!(ds.orders.num_partitions(), 4);
        assert_eq!(ds.nation.len(), 25);
    }
}
