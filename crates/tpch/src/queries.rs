//! The seven TPC-H queries of the UPA evaluation (Table II).
//!
//! Every query comes in the three forms the experiments need:
//!
//! * **plain** — the vanilla dataflow job (the "vanilla Spark" baseline of
//!   Figure 2(b)). Join-shaped queries (Q4, Q13) use the engine's
//!   shuffle join; queries whose non-protected tables are broadcastable
//!   use map-side joins, exactly as a Spark programmer would write them;
//! * **Map/Reduce decomposition** — a [`MapReduceQuery`] over the
//!   *protected table's* records (the iDP unit), with other tables folded
//!   in through broadcast lookup maps. UPA and the brute-force ground
//!   truth both consume this form;
//! * **FLEX plan** — the relational plan (operator composition only) that
//!   the static baseline analyses.
//!
//! Predicates are simplified to the generated columns but keep each
//! query's *operator structure* — how many joins and filters, and which
//! table's records carry the privacy unit:
//!
//! | Query | Protected table | Shape |
//! |-------|-----------------|-------|
//! | Q1    | lineitem        | plain COUNT, no filter/join (FLEX exact)  |
//! | Q4    | orders          | 1 join + 2 filters, COUNT                 |
//! | Q6    | lineitem        | 3 filters, SUM (arithmetic — FLEX: no)    |
//! | Q11   | partsupp        | 2 joins + 1 filter, SUM (FLEX: no)        |
//! | Q13   | orders          | 1 join + 1 filter, COUNT                  |
//! | Q16   | partsupp        | 2 joins + 3 filters, COUNT                |
//! | Q21   | supplier        | 3 joins + 3 filters, COUNT (skew outliers)|

use crate::gen::{Tables, TpchDatasets};
use crate::rows::*;
use dataflow::PairOps;
use std::collections::HashMap;
use std::sync::Arc;
use upa_core::join::JoinAggregate;
use upa_core::query::MapReduceQuery;
use upa_flex::plan::AggregateKind;
use upa_flex::Plan;

/// The keyed join inputs of Q4/Q13: `(orders by orderkey, lineitem by
/// orderkey)`.
pub type OrderLineitemJoin = (
    dataflow::Dataset<(u64, Order)>,
    dataflow::Dataset<(u64, Lineitem)>,
);

/// Whether a query is a COUNT, an arithmetic aggregate, or ML (Table II's
/// "Query Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// COUNT query (FLEX-supported shape).
    Count,
    /// Arithmetic aggregate (SUM of expressions).
    Arithmetic,
}

/// Static description of one benchmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryInfo {
    /// Query name as the paper prints it.
    pub name: &'static str,
    /// COUNT vs arithmetic.
    pub kind: QueryKind,
    /// The table whose records iDP protects.
    pub protected: &'static str,
    /// Whether FLEX can analyse it (Table II's last column).
    pub flex_supported: bool,
}

/// The Table II rows for the seven SQL queries.
pub fn catalog() -> Vec<QueryInfo> {
    vec![
        QueryInfo {
            name: "TPCH1",
            kind: QueryKind::Count,
            protected: "lineitem",
            flex_supported: true,
        },
        QueryInfo {
            name: "TPCH4",
            kind: QueryKind::Count,
            protected: "orders",
            flex_supported: true,
        },
        QueryInfo {
            name: "TPCH6",
            kind: QueryKind::Arithmetic,
            protected: "lineitem",
            flex_supported: false,
        },
        QueryInfo {
            name: "TPCH11",
            kind: QueryKind::Arithmetic,
            protected: "partsupp",
            flex_supported: false,
        },
        QueryInfo {
            name: "TPCH13",
            kind: QueryKind::Count,
            protected: "orders",
            flex_supported: true,
        },
        QueryInfo {
            name: "TPCH16",
            kind: QueryKind::Count,
            protected: "partsupp",
            flex_supported: true,
        },
        QueryInfo {
            name: "TPCH21",
            kind: QueryKind::Count,
            protected: "supplier",
            flex_supported: true,
        },
    ]
}

fn lineitems_by_orderkey(tables: &Tables) -> Arc<HashMap<u64, Vec<Lineitem>>> {
    let mut m: HashMap<u64, Vec<Lineitem>> = HashMap::new();
    for l in &tables.lineitem {
        m.entry(l.orderkey).or_default().push(*l);
    }
    Arc::new(m)
}

fn lineitems_by_suppkey(tables: &Tables) -> Arc<HashMap<u64, Vec<Lineitem>>> {
    let mut m: HashMap<u64, Vec<Lineitem>> = HashMap::new();
    for l in &tables.lineitem {
        m.entry(l.suppkey).or_default().push(*l);
    }
    Arc::new(m)
}

fn orders_by_key(tables: &Tables) -> Arc<HashMap<u64, Order>> {
    Arc::new(tables.orders.iter().map(|o| (o.orderkey, *o)).collect())
}

fn parts_by_key(tables: &Tables) -> Arc<HashMap<u64, Part>> {
    Arc::new(tables.part.iter().map(|p| (p.partkey, *p)).collect())
}

fn suppliers_by_key(tables: &Tables) -> Arc<HashMap<u64, Supplier>> {
    Arc::new(tables.supplier.iter().map(|s| (s.suppkey, *s)).collect())
}

/// Stable half key for lineitem rows (content-defined; see
/// [`MapReduceQuery::with_half_key`]).
fn lineitem_half_key(l: &Lineitem) -> u64 {
    l.orderkey.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (l.suppkey << 17)
        ^ ((l.partkey) << 3)
        ^ l.shipdate as u64
}

/// Stable half key for partsupp rows.
fn partsupp_half_key(ps: &PartSupp) -> u64 {
    ps.partkey.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ps.suppkey
}

/// Stable half key for orders rows.
fn order_half_key(o: &Order) -> u64 {
    o.orderkey
}

// ---------------------------------------------------------------------------
// TPCH1 — plain COUNT of lineitem (no filter, no join): the query FLEX
// gets exactly right (sensitivity 1).
// ---------------------------------------------------------------------------

/// TPCH Query 1 (simplified to the COUNT the paper evaluates).
#[derive(Debug, Clone)]
pub struct Q1 {
    query: MapReduceQuery<Lineitem, f64, f64>,
}

impl Q1 {
    /// Builds the query (no broadcast state needed).
    pub fn new(_tables: &Tables) -> Q1 {
        Q1 {
            query: MapReduceQuery::scalar_sum("TPCH1", |_l: &Lineitem| 1.0)
                .with_half_key(lineitem_half_key),
        }
    }

    /// The Map/Reduce decomposition over the protected `lineitem` rows.
    pub fn query(&self) -> &MapReduceQuery<Lineitem, f64, f64> {
        &self.query
    }

    /// Vanilla dataflow execution.
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        data.lineitem.count() as f64
    }

    /// The relational plan FLEX analyses.
    pub fn flex_plan() -> Plan {
        Plan::count(Plan::table("lineitem"))
    }
}

// ---------------------------------------------------------------------------
// TPCH4 — orders ⋈ lineitem with a date-window filter on orders and the
// commit/receipt filter on lineitem; COUNT of qualifying joined pairs.
// Protected: orders (removing an order removes all its joined pairs).
// ---------------------------------------------------------------------------

/// Start of Q4's quarter-long order-date window.
pub const Q4_DATE_LO: u32 = 2 * DAYS_PER_YEAR;
/// End (exclusive) of Q4's window.
pub const Q4_DATE_HI: u32 = Q4_DATE_LO + 90;

/// Q4's join predicate (public so harnesses can rebuild the aggregate
/// with a different output shape).
pub fn q4_qualifies(o: &Order, l: &Lineitem) -> bool {
    o.orderdate >= Q4_DATE_LO && o.orderdate < Q4_DATE_HI && l.commitdate < l.receiptdate
}

/// TPCH Query 4 (simplified).
#[derive(Debug, Clone)]
pub struct Q4 {
    query: MapReduceQuery<Order, f64, f64>,
    agg: JoinAggregate<u64, Order, Lineitem, f64, f64>,
}

impl Q4 {
    /// Builds broadcast state and both query forms.
    pub fn new(tables: &Tables) -> Q4 {
        let by_order = lineitems_by_orderkey(tables);
        let query = MapReduceQuery::scalar_sum("TPCH4", move |o: &Order| {
            by_order
                .get(&o.orderkey)
                .map(|ls| ls.iter().filter(|l| q4_qualifies(o, l)).count() as f64)
                .unwrap_or(0.0)
        })
        .with_half_key(order_half_key);
        let agg = JoinAggregate::count("TPCH4", |_k: &u64, o: &Order, l: &Lineitem| {
            q4_qualifies(o, l)
        });
        Q4 { query, agg }
    }

    /// The Map/Reduce decomposition over the protected `orders` rows
    /// (map-side join form; used for ground truth).
    pub fn query(&self) -> &MapReduceQuery<Order, f64, f64> {
        &self.query
    }

    /// The join aggregate for [`upa_core::pipeline::Upa::run_join`]
    /// (shuffle-join form; the UPA execution path).
    pub fn join_aggregate(&self) -> &JoinAggregate<u64, Order, Lineitem, f64, f64> {
        &self.agg
    }

    /// The two keyed inputs of the join.
    pub fn keyed(data: &TpchDatasets) -> OrderLineitemJoin {
        (
            data.orders.key_by(|o| o.orderkey),
            data.lineitem.key_by(|l| l.orderkey),
        )
    }

    /// Vanilla dataflow execution: shuffle join, filter, count.
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        let (orders, lineitem) = Q4::keyed(data);
        orders
            .join(&lineitem)
            .filter(|(_, (o, l))| q4_qualifies(o, l))
            .count() as f64
    }

    /// The relational plan FLEX analyses.
    pub fn flex_plan() -> Plan {
        Plan::count(Plan::filter(
            Plan::join(
                Plan::table("orders"),
                Plan::table("lineitem"),
                ("orders", "orderkey"),
                ("lineitem", "orderkey"),
            ),
            "o_orderdate in window AND l_commitdate < l_receiptdate",
        ))
    }
}

// ---------------------------------------------------------------------------
// TPCH6 — SUM(extendedprice · discount) under three filters; arithmetic,
// so FLEX cannot analyse it. Protected: lineitem.
// ---------------------------------------------------------------------------

/// Start of Q6's one-year ship-date window.
pub const Q6_DATE_LO: u32 = 4 * DAYS_PER_YEAR;
/// End (exclusive) of Q6's window.
pub const Q6_DATE_HI: u32 = 5 * DAYS_PER_YEAR;

/// TPCH Query 6 (simplified).
#[derive(Debug, Clone)]
pub struct Q6 {
    query: MapReduceQuery<Lineitem, f64, f64>,
}

impl Q6 {
    /// Builds the query.
    pub fn new(_tables: &Tables) -> Q6 {
        Q6 {
            query: MapReduceQuery::scalar_sum("TPCH6", |l: &Lineitem| {
                if l.shipdate >= Q6_DATE_LO
                    && l.shipdate < Q6_DATE_HI
                    && (0.05..=0.07).contains(&l.discount)
                    && l.quantity < 24.0
                {
                    l.extendedprice * l.discount
                } else {
                    0.0
                }
            })
            .with_half_key(lineitem_half_key),
        }
    }

    /// The Map/Reduce decomposition over the protected `lineitem` rows.
    pub fn query(&self) -> &MapReduceQuery<Lineitem, f64, f64> {
        &self.query
    }

    /// Vanilla dataflow execution.
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        let m = self.query.mapper();
        data.lineitem
            .map(move |l| m(l))
            .reduce(|a, b| a + b)
            .unwrap_or(0.0)
    }

    /// The relational plan (FLEX rejects the SUM aggregate).
    pub fn flex_plan() -> Plan {
        Plan::aggregate(
            AggregateKind::Sum,
            Plan::filter(
                Plan::table("lineitem"),
                "shipdate window, discount, quantity",
            ),
        )
    }
}

// ---------------------------------------------------------------------------
// TPCH11 — SUM(supplycost · availqty) for partsupp of suppliers in one
// nation: partsupp ⋈ supplier ⋈ nation + filter; arithmetic (FLEX: no).
// Protected: partsupp.
// ---------------------------------------------------------------------------

/// Nations Q11 restricts to (nationkey below this bound; see
/// [`Q21_NATION_BOUND`] for why a nation group replaces TPC-H's single
/// nation at this scale).
pub const Q11_NATION_BOUND: u8 = 8;

/// TPCH Query 11 (simplified).
#[derive(Debug, Clone)]
pub struct Q11 {
    query: MapReduceQuery<PartSupp, f64, f64>,
}

impl Q11 {
    /// Builds broadcast state and the query.
    pub fn new(tables: &Tables) -> Q11 {
        let suppliers = suppliers_by_key(tables);
        Q11 {
            query: MapReduceQuery::scalar_sum("TPCH11", move |ps: &PartSupp| {
                match suppliers.get(&ps.suppkey) {
                    Some(s) if s.nationkey < Q11_NATION_BOUND => ps.supplycost * ps.availqty as f64,
                    _ => 0.0,
                }
            })
            .with_half_key(partsupp_half_key),
        }
    }

    /// The Map/Reduce decomposition over the protected `partsupp` rows.
    pub fn query(&self) -> &MapReduceQuery<PartSupp, f64, f64> {
        &self.query
    }

    /// Vanilla dataflow execution (map-side join with the small supplier
    /// table, as Spark would broadcast it).
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        let m = self.query.mapper();
        data.partsupp
            .map(move |ps| m(ps))
            .reduce(|a, b| a + b)
            .unwrap_or(0.0)
    }

    /// The relational plan (FLEX rejects the SUM aggregate).
    pub fn flex_plan() -> Plan {
        Plan::aggregate(
            AggregateKind::Sum,
            Plan::filter(
                Plan::join(
                    Plan::join(
                        Plan::table("partsupp"),
                        Plan::table("supplier"),
                        ("partsupp", "suppkey"),
                        ("supplier", "suppkey"),
                    ),
                    Plan::table("nation"),
                    ("supplier", "nationkey"),
                    ("nation", "nationkey"),
                ),
                "n_nationkey in nation group",
            ),
        )
    }
}

// ---------------------------------------------------------------------------
// TPCH13 — orders ⋈ lineitem, COUNT of pairs for non-urgent orders.
// Protected: orders.
// ---------------------------------------------------------------------------

/// Q13's join predicate.
pub fn q13_qualifies(o: &Order, _l: &Lineitem) -> bool {
    o.orderpriority >= 2
}

/// TPCH Query 13 (simplified).
#[derive(Debug, Clone)]
pub struct Q13 {
    query: MapReduceQuery<Order, f64, f64>,
    agg: JoinAggregate<u64, Order, Lineitem, f64, f64>,
}

impl Q13 {
    /// Builds broadcast state and both query forms.
    pub fn new(tables: &Tables) -> Q13 {
        let by_order = lineitems_by_orderkey(tables);
        let query = MapReduceQuery::scalar_sum("TPCH13", move |o: &Order| {
            by_order
                .get(&o.orderkey)
                .map(|ls| ls.iter().filter(|l| q13_qualifies(o, l)).count() as f64)
                .unwrap_or(0.0)
        })
        .with_half_key(order_half_key);
        let agg = JoinAggregate::count("TPCH13", |_k: &u64, o: &Order, l: &Lineitem| {
            q13_qualifies(o, l)
        });
        Q13 { query, agg }
    }

    /// The Map/Reduce decomposition over the protected `orders` rows.
    pub fn query(&self) -> &MapReduceQuery<Order, f64, f64> {
        &self.query
    }

    /// The join aggregate for the UPA execution path.
    pub fn join_aggregate(&self) -> &JoinAggregate<u64, Order, Lineitem, f64, f64> {
        &self.agg
    }

    /// The two keyed inputs of the join.
    pub fn keyed(data: &TpchDatasets) -> OrderLineitemJoin {
        Q4::keyed(data)
    }

    /// Vanilla dataflow execution: shuffle join, filter, count.
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        let (orders, lineitem) = Q13::keyed(data);
        orders
            .join(&lineitem)
            .filter(|(_, (o, l))| q13_qualifies(o, l))
            .count() as f64
    }

    /// The relational plan FLEX analyses.
    pub fn flex_plan() -> Plan {
        Plan::count(Plan::filter(
            Plan::join(
                Plan::table("orders"),
                Plan::table("lineitem"),
                ("orders", "orderkey"),
                ("lineitem", "orderkey"),
            ),
            "o_orderpriority >= 2",
        ))
    }
}

// ---------------------------------------------------------------------------
// TPCH16 — partsupp ⋈ part ⋈ supplier with three filters; COUNT.
// Protected: partsupp. Filters eliminate most rows, which is why UPA's
// overhead on Q16 is low (paper §VI-D) and FLEX's estimate is wildly
// conservative (it cannot see the filters).
// ---------------------------------------------------------------------------

/// Sizes Q16 keeps (TPC-H's eight-value IN list).
pub const Q16_SIZES: [u8; 8] = [1, 4, 9, 14, 19, 23, 36, 49];
/// Brand Q16 excludes.
pub const Q16_BRAND: u8 = 12;

/// TPCH Query 16 (simplified).
#[derive(Debug, Clone)]
pub struct Q16 {
    query: MapReduceQuery<PartSupp, f64, f64>,
}

impl Q16 {
    /// Builds broadcast state and the query.
    pub fn new(tables: &Tables) -> Q16 {
        let parts = parts_by_key(tables);
        let suppliers = suppliers_by_key(tables);
        Q16 {
            query: MapReduceQuery::scalar_sum("TPCH16", move |ps: &PartSupp| {
                let part_ok = parts.get(&ps.partkey).is_some_and(|p| {
                    p.brand != Q16_BRAND && p.typ % 5 != 0 && Q16_SIZES.contains(&p.size)
                });
                let supp_ok = suppliers.get(&ps.suppkey).is_some_and(|s| !s.complaint);
                if part_ok && supp_ok {
                    1.0
                } else {
                    0.0
                }
            })
            .with_half_key(partsupp_half_key),
        }
    }

    /// The Map/Reduce decomposition over the protected `partsupp` rows.
    pub fn query(&self) -> &MapReduceQuery<PartSupp, f64, f64> {
        &self.query
    }

    /// Vanilla dataflow execution (broadcast joins with the small `part`
    /// and `supplier` tables).
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        let m = self.query.mapper();
        data.partsupp
            .map(move |ps| m(ps))
            .reduce(|a, b| a + b)
            .unwrap_or(0.0)
    }

    /// The relational plan FLEX analyses: two joins whose max frequencies
    /// multiply.
    pub fn flex_plan() -> Plan {
        Plan::count(Plan::filter(
            Plan::join(
                Plan::join(
                    Plan::table("partsupp"),
                    Plan::table("part"),
                    ("partsupp", "partkey"),
                    ("part", "partkey"),
                ),
                Plan::table("supplier"),
                ("partsupp", "suppkey"),
                ("supplier", "suppkey"),
            ),
            "brand/type/size list AND no complaint",
        ))
    }
}

// ---------------------------------------------------------------------------
// TPCH21 — supplier ⋈ lineitem ⋈ orders ⋈ nation with three filters;
// COUNT of late lineitems of suppliers in one nation whose order is
// finished. Protected: supplier — the Zipf fan-in makes a few suppliers
// own thousands of lineitems, producing the outlier sensitivities of
// Figure 3.
// ---------------------------------------------------------------------------

/// Nations Q21 restricts to (nationkey below this bound). TPC-H restricts
/// to a single nation of 25; at this reproduction's much smaller supplier
/// cardinality a single nation would often select zero suppliers, so the
/// filter keeps the same ~1/3 selectivity by accepting a nation group.
pub const Q21_NATION_BOUND: u8 = 8;

/// TPCH Query 21 (simplified).
#[derive(Debug, Clone)]
pub struct Q21 {
    query: MapReduceQuery<Supplier, f64, f64>,
}

impl Q21 {
    /// Builds broadcast state and the query.
    pub fn new(tables: &Tables) -> Q21 {
        let by_supp = lineitems_by_suppkey(tables);
        let orders = orders_by_key(tables);
        Q21 {
            query: MapReduceQuery::scalar_sum("TPCH21", move |s: &Supplier| {
                if s.nationkey >= Q21_NATION_BOUND {
                    return 0.0;
                }
                by_supp
                    .get(&s.suppkey)
                    .map(|ls| {
                        ls.iter()
                            .filter(|l| {
                                l.receiptdate > l.commitdate
                                    && orders
                                        .get(&l.orderkey)
                                        .is_some_and(|o| o.orderstatus == STATUS_F)
                            })
                            .count() as f64
                    })
                    .unwrap_or(0.0)
            })
            .with_half_key(|s: &Supplier| s.suppkey),
        }
    }

    /// The Map/Reduce decomposition over the protected `supplier` rows.
    pub fn query(&self) -> &MapReduceQuery<Supplier, f64, f64> {
        &self.query
    }

    /// Vanilla dataflow execution.
    pub fn plain(&self, data: &TpchDatasets) -> f64 {
        let m = self.query.mapper();
        data.supplier
            .map(move |s| m(s))
            .reduce(|a, b| a + b)
            .unwrap_or(0.0)
    }

    /// The relational plan FLEX analyses: three chained joins, whose max
    /// frequencies multiply into a huge over-estimate.
    pub fn flex_plan() -> Plan {
        Plan::count(Plan::filter(
            Plan::join(
                Plan::join(
                    Plan::join(
                        Plan::table("supplier"),
                        Plan::table("lineitem"),
                        ("supplier", "suppkey"),
                        ("lineitem", "suppkey"),
                    ),
                    Plan::table("orders"),
                    ("lineitem", "orderkey"),
                    ("orders", "orderkey"),
                ),
                Plan::table("nation"),
                ("supplier", "nationkey"),
                ("nation", "nationkey"),
            ),
            "receipt > commit AND status = F AND nation",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TpchConfig;
    use dataflow::Context;

    fn setup() -> (Tables, TpchDatasets, Context) {
        let tables = Tables::generate(&TpchConfig {
            orders: 800,
            ..TpchConfig::default()
        });
        let ctx = Context::with_threads(4);
        let data = TpchDatasets::load(&ctx, &tables, 8);
        (tables, data, ctx)
    }

    #[test]
    fn catalog_lists_seven_queries() {
        let c = catalog();
        assert_eq!(c.len(), 7);
        assert_eq!(c.iter().filter(|q| q.flex_supported).count(), 5);
        assert_eq!(
            c.iter().filter(|q| q.kind == QueryKind::Arithmetic).count(),
            2
        );
    }

    #[test]
    fn q1_counts_lineitems() {
        let (tables, data, _ctx) = setup();
        let q = Q1::new(&tables);
        assert_eq!(q.plain(&data), tables.lineitem.len() as f64);
        assert_eq!(
            q.query().evaluate_slice(&tables.lineitem),
            tables.lineitem.len() as f64
        );
    }

    #[test]
    fn q4_broadcast_form_matches_shuffle_join() {
        let (tables, data, _ctx) = setup();
        let q = Q4::new(&tables);
        let plain = q.plain(&data);
        let decomposed = q.query().evaluate_slice(&tables.orders);
        assert_eq!(plain, decomposed);
        assert!(plain > 0.0, "the date window must select something");
        assert!(
            plain < tables.lineitem.len() as f64,
            "filters must drop something"
        );
    }

    #[test]
    fn q13_broadcast_form_matches_shuffle_join() {
        let (tables, data, _ctx) = setup();
        let q = Q13::new(&tables);
        assert_eq!(q.plain(&data), q.query().evaluate_slice(&tables.orders));
    }

    #[test]
    fn q6_matches_sequential_reference() {
        let (tables, data, _ctx) = setup();
        let q = Q6::new(&tables);
        let reference: f64 = tables
            .lineitem
            .iter()
            .filter(|l| {
                l.shipdate >= Q6_DATE_LO
                    && l.shipdate < Q6_DATE_HI
                    && (0.05..=0.07).contains(&l.discount)
                    && l.quantity < 24.0
            })
            .map(|l| l.extendedprice * l.discount)
            .sum();
        assert!((q.plain(&data) - reference).abs() < 1e-6);
        assert!(reference > 0.0);
    }

    #[test]
    fn q11_restricts_to_one_nation() {
        let (tables, data, _ctx) = setup();
        let q = Q11::new(&tables);
        let reference: f64 = tables
            .partsupp
            .iter()
            .filter(|ps| {
                tables
                    .supplier
                    .iter()
                    .find(|s| s.suppkey == ps.suppkey)
                    .map(|s| s.nationkey < Q11_NATION_BOUND)
                    .unwrap_or(false)
            })
            .map(|ps| ps.supplycost * ps.availqty as f64)
            .sum();
        assert!((q.plain(&data) - reference).abs() < 1e-6);
    }

    #[test]
    fn q16_filters_most_rows() {
        let (tables, data, _ctx) = setup();
        let q = Q16::new(&tables);
        let count = q.plain(&data);
        assert!(count > 0.0);
        // Eight sizes of fifty and 4/5 of the types survive, so the
        // surviving fraction is well under a quarter.
        assert!(count < tables.partsupp.len() as f64 / 4.0);
        assert_eq!(count, q.query().evaluate_slice(&tables.partsupp));
    }

    #[test]
    fn q21_has_skewed_per_supplier_influence() {
        let (tables, data, _ctx) = setup();
        let q = Q21::new(&tables);
        let total = q.plain(&data);
        assert!(total > 0.0);
        // Per-supplier contributions (the removal influences) must be
        // heavy-tailed: the max dominates the mean.
        let contributions: Vec<f64> = tables.supplier.iter().map(|s| q.query().map(s)).collect();
        let max = contributions.iter().copied().fold(0.0, f64::max);
        let mean = contributions.iter().sum::<f64>() / contributions.len() as f64;
        assert!(
            max > 4.0 * mean.max(0.5),
            "expected outlier suppliers (max {max}, mean {mean})"
        );
    }

    #[test]
    fn flex_plans_have_expected_shapes() {
        assert_eq!(Q1::flex_plan().join_count(), 0);
        assert_eq!(Q4::flex_plan().join_count(), 1);
        assert_eq!(Q13::flex_plan().join_count(), 1);
        assert_eq!(Q16::flex_plan().join_count(), 2);
        assert_eq!(Q21::flex_plan().join_count(), 3);
        assert_eq!(Q21::flex_plan().filter_count(), 1);
    }

    #[test]
    fn flex_supports_exactly_the_count_queries() {
        let (tables, _data, _ctx) = setup();
        let meta = crate::meta::build_metadata(&tables);
        assert!(upa_flex::analyze(&Q1::flex_plan(), &meta).is_ok());
        assert!(upa_flex::analyze(&Q4::flex_plan(), &meta).is_ok());
        assert!(upa_flex::analyze(&Q13::flex_plan(), &meta).is_ok());
        assert!(upa_flex::analyze(&Q16::flex_plan(), &meta).is_ok());
        assert!(upa_flex::analyze(&Q21::flex_plan(), &meta).is_ok());
        assert!(upa_flex::analyze(&Q6::flex_plan(), &meta).is_err());
        assert!(upa_flex::analyze(&Q11::flex_plan(), &meta).is_err());
    }

    #[test]
    fn flex_overestimates_join_queries() {
        let (tables, _data, _ctx) = setup();
        let meta = crate::meta::build_metadata(&tables);
        let q1 = upa_flex::analyze(&Q1::flex_plan(), &meta).unwrap();
        let q4 = upa_flex::analyze(&Q4::flex_plan(), &meta).unwrap();
        let q21 = upa_flex::analyze(&Q21::flex_plan(), &meta).unwrap();
        assert_eq!(q1, 1.0, "FLEX is exact on the plain count");
        assert!(q4 > 1.0);
        assert!(
            q21 > q4,
            "more joins must mean a larger FLEX bound ({q21} vs {q4})"
        );
    }
}
