//! TPC-H table row types.
//!
//! Columns are restricted to the ones the seven evaluated queries touch.
//! Dates are stored as day numbers counted from 1992-01-01 (the TPC-H
//! epoch); see [`DAYS_PER_YEAR`] for range helpers.

/// Days per (TPC-H, simplified) year; dates span seven years from the
/// epoch, as in the official generator.
pub const DAYS_PER_YEAR: u32 = 365;

/// Total span of generated dates (1992-01-01 .. 1998-12-31).
pub const DATE_RANGE: u32 = 7 * DAYS_PER_YEAR;

/// One `lineitem` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lineitem {
    /// Key of the owning order.
    pub orderkey: u64,
    /// Key of the part shipped.
    pub partkey: u64,
    /// Key of the supplier shipping it.
    pub suppkey: u64,
    /// Quantity shipped.
    pub quantity: f64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount in `[0, 0.10]`.
    pub discount: f64,
    /// Tax in `[0, 0.08]`.
    pub tax: f64,
    /// Ship date (days since epoch).
    pub shipdate: u32,
    /// Commit date (days since epoch).
    pub commitdate: u32,
    /// Receipt date (days since epoch).
    pub receiptdate: u32,
}

/// One `orders` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Order {
    /// Order key.
    pub orderkey: u64,
    /// Customer key.
    pub custkey: u64,
    /// Status: `'F'` (finished), `'O'` (open) or `'P'` (pending).
    pub orderstatus: u8,
    /// Total price.
    pub totalprice: f64,
    /// Order date (days since epoch).
    pub orderdate: u32,
    /// Priority 1 (urgent) .. 5 (low).
    pub orderpriority: u8,
}

/// One `part` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Part {
    /// Part key.
    pub partkey: u64,
    /// Brand id (1..=25).
    pub brand: u8,
    /// Type id (1..=150).
    pub typ: u8,
    /// Size (1..=50).
    pub size: u8,
}

/// One `supplier` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Supplier {
    /// Supplier key.
    pub suppkey: u64,
    /// Nation key (0..25).
    pub nationkey: u8,
    /// Account balance.
    pub acctbal: f64,
    /// Whether the supplier's comment flags customer complaints
    /// (Q16 excludes such suppliers).
    pub complaint: bool,
}

/// One `partsupp` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartSupp {
    /// Part key.
    pub partkey: u64,
    /// Supplier key.
    pub suppkey: u64,
    /// Available quantity.
    pub availqty: u32,
    /// Supply cost per unit.
    pub supplycost: f64,
}

/// One `nation` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nation {
    /// Nation key (0..25).
    pub nationkey: u8,
    /// Region key (0..5).
    pub regionkey: u8,
}

/// `orderstatus` value for finished orders (Q21 filters on it).
pub const STATUS_F: u8 = b'F';
/// `orderstatus` value for open orders.
pub const STATUS_O: u8 = b'O';
/// `orderstatus` value for pending orders.
pub const STATUS_P: u8 = b'P';

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_copy_and_comparable() {
        let l = Lineitem {
            orderkey: 1,
            partkey: 2,
            suppkey: 3,
            quantity: 4.0,
            extendedprice: 5.0,
            discount: 0.05,
            tax: 0.02,
            shipdate: 10,
            commitdate: 20,
            receiptdate: 30,
        };
        let l2 = l; // Copy
        assert_eq!(l, l2);
        let n = Nation {
            nationkey: 1,
            regionkey: 0,
        };
        assert_eq!(n, n);
    }

    #[test]
    fn date_constants_are_consistent() {
        assert_eq!(DATE_RANGE, 2555);
        let statuses = [STATUS_F, STATUS_O, STATUS_P];
        let distinct: std::collections::HashSet<_> = statuses.into_iter().collect();
        assert_eq!(distinct.len(), statuses.len());
    }
}
