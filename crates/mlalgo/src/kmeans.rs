//! KMeans (Lloyd's algorithm), as a Map/Reduce query.
//!
//! One Lloyd iteration is one UPA query: the mapper assigns a point to
//! its nearest centroid and emits that cluster's partial sum; the reducer
//! adds partial sums; `finalize` divides to produce the updated centroid
//! matrix — the released output.

use dataflow::Dataset;
use upa_core::query::MapReduceQuery;

/// A point is a feature vector.
pub type Point = Vec<f64>;

/// Accumulator of one iteration: per-cluster coordinate sums (flattened
/// `k × d`) and per-cluster counts.
pub type KmAcc = (Vec<f64>, Vec<f64>);

/// KMeans model: `k` centroids of dimension `d`.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Point>,
}

impl KMeans {
    /// Creates a model from initial centroids.
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or dimensions are inconsistent.
    pub fn new(centroids: Vec<Point>) -> Self {
        assert!(!centroids.is_empty(), "need at least one centroid");
        let d = centroids[0].len();
        assert!(d > 0, "centroids must have positive dimension");
        assert!(
            centroids.iter().all(|c| c.len() == d),
            "inconsistent centroid dimensions"
        );
        KMeans { centroids }
    }

    /// Deterministic initialisation: centroid `i` is the `i`-th distinct
    /// point of the input (adequate for well-separated synthetic data).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` points are provided.
    pub fn init_from_points(points: &[Point], k: usize) -> Self {
        assert!(points.len() >= k, "need at least k points");
        let stride = points.len() / k;
        KMeans::new((0..k).map(|i| points[i * stride].clone()).collect())
    }

    /// The current centroids.
    pub fn centroids(&self) -> &[Point] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.centroids[0].len()
    }

    /// Replaces the centroids with a flattened `k × d` matrix (e.g. a
    /// noisy update from UPA).
    ///
    /// # Panics
    ///
    /// Panics if the flattened length is not `k × d`.
    pub fn set_flat_centroids(&mut self, flat: &[f64]) {
        let (k, d) = (self.k(), self.dims());
        assert_eq!(flat.len(), k * d, "expected k*d components");
        self.centroids = flat.chunks(d).map(|c| c.to_vec()).collect();
    }

    /// Index of the centroid nearest to `p`.
    pub fn assign(&self, p: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d: f64 = c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Sum of squared distances of points to their assigned centroids.
    pub fn inertia(&self, points: &[Point]) -> f64 {
        points
            .iter()
            .map(|p| {
                let c = &self.centroids[self.assign(p)];
                c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
            })
            .sum()
    }

    /// One Lloyd iteration as a Map/Reduce query. The output is the
    /// updated centroid matrix, flattened to `k × d` components (clusters
    /// that receive no points keep their current centroid).
    pub fn step_query(&self, name: impl Into<String>) -> MapReduceQuery<Point, KmAcc, Vec<f64>> {
        let model = self.clone();
        let old = self.centroids.clone();
        let (k, d) = (self.k(), self.dims());
        MapReduceQuery::new(
            name,
            move |p: &Point| {
                let c = model.assign(p);
                let mut sums = vec![0.0; k * d];
                let mut counts = vec![0.0; k];
                sums[c * d..(c + 1) * d].copy_from_slice(&p[..d]);
                counts[c] = 1.0;
                (sums, counts)
            },
            |a: &KmAcc, b: &KmAcc| {
                (
                    a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect(),
                    a.1.iter().zip(&b.1).map(|(x, y)| x + y).collect(),
                )
            },
            move |acc: Option<&KmAcc>| {
                let mut flat = Vec::with_capacity(k * d);
                match acc {
                    Some((sums, counts)) => {
                        for c in 0..k {
                            for j in 0..d {
                                if counts[c] > 0.0 {
                                    flat.push(sums[c * d + j] / counts[c]);
                                } else {
                                    flat.push(old[c][j]);
                                }
                            }
                        }
                    }
                    None => {
                        for c in &old {
                            flat.extend_from_slice(c);
                        }
                    }
                }
                flat
            },
        )
        .with_half_key(|p: &Point| crate::data::point_key(p))
    }

    /// One non-private iteration over a dataset; returns the flattened
    /// updated centroids without mutating `self`.
    pub fn step_plain(&self, data: &Dataset<Point>) -> Vec<f64> {
        let q = self.step_query("kmeans_iter");
        let m = q.mapper();
        let mapped = data.map(move |p| m(p));
        let acc = mapped.reduce(|a, b| {
            (
                a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect(),
                a.1.iter().zip(&b.1).map(|(x, y)| x + y).collect(),
            )
        });
        q.finalize(acc.as_ref())
    }

    /// Runs `iters` non-private Lloyd iterations.
    pub fn fit(&mut self, data: &Dataset<Point>, iters: usize) {
        for _ in 0..iters {
            let flat = self.step_plain(data);
            self.set_flat_centroids(&flat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_points, LifeScienceConfig};
    use dataflow::Context;

    fn clustered_points() -> Vec<Point> {
        generate_points(&LifeScienceConfig {
            records: 3_000,
            dims: 2,
            clusters: 3,
            outlier_fraction: 0.0,
            ..LifeScienceConfig::default()
        })
    }

    #[test]
    fn kmeans_finds_the_mixture_centres() {
        let points = clustered_points();
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(points.clone(), 4);
        let mut model = KMeans::new(vec![vec![1.0, 1.0], vec![9.0, 9.0], vec![21.0, 21.0]]);
        model.fit(&ds, 15);
        // Centres are near (0,0), (10,10), (20,20).
        let mut found = [false; 3];
        for c in model.centroids() {
            for (i, target) in [0.0, 10.0, 20.0].iter().enumerate() {
                if (c[0] - target).abs() < 1.0 && (c[1] - target).abs() < 1.0 {
                    found[i] = true;
                }
            }
        }
        assert_eq!(found, [true; 3], "centroids {:?}", model.centroids());
    }

    #[test]
    fn fit_reduces_inertia() {
        let points = clustered_points();
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(points.clone(), 4);
        let mut model = KMeans::init_from_points(&points, 3);
        let before = model.inertia(&points);
        model.fit(&ds, 10);
        assert!(model.inertia(&points) <= before);
    }

    #[test]
    fn step_query_matches_plain_step() {
        let points = clustered_points();
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(points.clone(), 4);
        let model = KMeans::init_from_points(&points, 3);
        let plain = model.step_plain(&ds);
        let slice = model.step_query("iter").evaluate_slice(&points);
        for (a, b) in plain.iter().zip(&slice) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(plain.len(), 3 * 2);
    }

    #[test]
    fn empty_cluster_keeps_old_centroid() {
        let model = KMeans::new(vec![vec![0.0, 0.0], vec![100.0, 100.0]]);
        // All points near the first centroid.
        let points = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let flat = model.step_query("iter").evaluate_slice(&points);
        assert_eq!(&flat[2..4], &[100.0, 100.0], "empty cluster unchanged");
        assert!((flat[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_keeps_all_centroids() {
        let model = KMeans::new(vec![vec![1.0], vec![2.0]]);
        let flat = model.step_query("iter").evaluate_slice(&[]);
        assert_eq!(flat, vec![1.0, 2.0]);
    }

    #[test]
    fn assign_picks_nearest() {
        let model = KMeans::new(vec![vec![0.0], vec![10.0]]);
        assert_eq!(model.assign(&[2.0]), 0);
        assert_eq!(model.assign(&[8.0]), 1);
    }

    #[test]
    #[should_panic(expected = "at least one centroid")]
    fn empty_model_rejected() {
        let _ = KMeans::new(Vec::new());
    }
}
