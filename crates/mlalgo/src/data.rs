//! Synthetic life-science dataset.
//!
//! The paper trains on `ds1.10 Life Science Data` (121 GB), which is not
//! redistributable. The substitution (DESIGN.md) generates a Gaussian
//! mixture with a small heavy-tailed outlier fraction: most records have
//! small influence on the trained model, a few have large influence —
//! the exact property the paper relies on when it argues local
//! sensitivity follows a normal distribution with rare outliers (§IV-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled record for linear regression: features plus target.
#[derive(Debug, Clone, PartialEq)]
pub struct LrRecord {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Regression target.
    pub target: f64,
}

/// Configuration for the synthetic life-science data.
#[derive(Debug, Clone, PartialEq)]
pub struct LifeScienceConfig {
    /// Number of records.
    pub records: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Number of mixture components (KMeans ground-truth clusters).
    pub clusters: usize,
    /// Fraction of records drawn from the heavy-tailed outlier component.
    pub outlier_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LifeScienceConfig {
    fn default() -> Self {
        LifeScienceConfig {
            records: 10_000,
            dims: 4,
            clusters: 3,
            outlier_fraction: 0.01,
            seed: 0xD5_110,
        }
    }
}

/// Stable content key for a feature vector: a deterministic hash of the
/// coordinate bit patterns. Used as the half key of the ML queries (see
/// `MapReduceQuery::with_half_key` in `upa-core`).
pub fn point_key(features: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for x in features {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates clustered feature vectors for KMeans.
///
/// Cluster `c` is centred at `(10c, 10c, …)` with unit variance; outliers
/// are scaled by a factor drawn from `[4, 9]` — heavy-tailed but not so
/// extreme that a 1000-record sample cannot see the tail (the regime the
/// paper's §IV-A normality assumption needs).
pub fn generate_points(config: &LifeScienceConfig) -> Vec<Vec<f64>> {
    assert!(config.clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.records)
        .map(|_| {
            let c = rng.gen_range(0..config.clusters) as f64;
            let outlier = rng.gen_bool(config.outlier_fraction);
            let scale = if outlier {
                rng.gen_range(4.0..9.0)
            } else {
                1.0
            };
            (0..config.dims)
                .map(|_| (10.0 * c + gaussian(&mut rng)) * scale)
                .collect()
        })
        .collect()
}

/// Generates labelled records for linear regression.
///
/// Targets follow `y = w*·x + b* + noise` for a hidden model `w*`;
/// outliers have their features scaled, giving them out-sized gradients.
/// Returns `(records, true_weights)` where the last weight is the bias.
pub fn generate_regression(config: &LifeScienceConfig) -> (Vec<LrRecord>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let true_w: Vec<f64> = (0..=config.dims)
        .map(|_| rng.gen_range(-2.0..2.0))
        .collect();
    let records = (0..config.records)
        .map(|_| {
            let outlier = rng.gen_bool(config.outlier_fraction);
            let scale = if outlier {
                rng.gen_range(4.0..9.0)
            } else {
                1.0
            };
            let features: Vec<f64> = (0..config.dims)
                .map(|_| gaussian(&mut rng) * scale)
                .collect();
            let target = features
                .iter()
                .zip(&true_w)
                .map(|(x, w)| x * w)
                .sum::<f64>()
                + true_w[config.dims]
                + gaussian(&mut rng) * 0.1;
            LrRecord { features, target }
        })
        .collect();
    (records, true_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_deterministic_and_shaped() {
        let c = LifeScienceConfig {
            records: 500,
            ..LifeScienceConfig::default()
        };
        let a = generate_points(&c);
        let b = generate_points(&c);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|p| p.len() == c.dims));
    }

    #[test]
    fn points_form_separated_clusters() {
        let c = LifeScienceConfig {
            records: 3_000,
            outlier_fraction: 0.0,
            ..LifeScienceConfig::default()
        };
        let pts = generate_points(&c);
        // Without outliers every coordinate is within a few sigma of a
        // cluster centre 0, 10 or 20.
        for p in &pts {
            let near = [0.0, 10.0, 20.0].iter().any(|c| (p[0] - c).abs() < 5.0);
            assert!(near, "point {p:?} belongs to no cluster");
        }
    }

    #[test]
    fn outliers_have_large_norms() {
        let c = LifeScienceConfig {
            records: 5_000,
            outlier_fraction: 0.05,
            ..LifeScienceConfig::default()
        };
        let pts = generate_points(&c);
        let max_norm = pts
            .iter()
            .map(|p| p.iter().map(|x| x * x).sum::<f64>().sqrt())
            .fold(0.0, f64::max);
        // Cluster centres cap at ~20·sqrt(d) ≈ 40 without outliers.
        assert!(
            max_norm > 100.0,
            "expected heavy-tailed outliers, max {max_norm}"
        );
    }

    #[test]
    fn regression_targets_follow_hidden_model() {
        let c = LifeScienceConfig {
            records: 2_000,
            outlier_fraction: 0.0,
            ..LifeScienceConfig::default()
        };
        let (records, w) = generate_regression(&c);
        assert_eq!(w.len(), c.dims + 1);
        // Residuals w.r.t. the hidden model are the 0.1-sigma noise.
        for r in records.iter().take(100) {
            let pred: f64 =
                r.features.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>() + w[c.dims];
            assert!((pred - r.target).abs() < 1.0);
        }
    }
}
