//! Machine-learning workloads for the UPA evaluation.
//!
//! The paper's Table II evaluates two Spark user-defined queries on a
//! life-science dataset: **KMeans** and **Linear Regression** trained with
//! stochastic gradient descent. Neither is expressible in SQL, which is
//! why FLEX cannot support them and UPA can (UPA only needs the
//! commutative/associative Map/Reduce decomposition of one training
//! step).
//!
//! * [`data`] — a synthetic "life-science" generator: a Gaussian mixture
//!   with a heavy-tailed outlier fraction, standing in for the paper's
//!   proprietary `ds1.10` dataset (see DESIGN.md's substitution table);
//! * [`kmeans`] — Lloyd iterations as Map/Reduce: the mapper assigns a
//!   point to its nearest centroid and emits per-cluster sums, the
//!   reducer adds them, `finalize` produces the updated centroids (the
//!   query output UPA perturbs);
//! * [`linreg`] — one SGD epoch as Map/Reduce: the mapper emits the
//!   per-record gradient, the reducer sums, `finalize` applies the model
//!   update (the paper's §III walk-through example).

pub mod data;
pub mod kmeans;
pub mod linreg;
pub mod logreg;

pub use data::{LifeScienceConfig, LrRecord};
pub use kmeans::KMeans;
pub use linreg::LinearRegression;
pub use logreg::LogisticRegression;

/// The FLEX plan for either ML query: a machine-learning aggregate, which
/// the static analysis rejects (Table II's unsupported rows).
pub fn ml_flex_plan(table: &str) -> upa_flex::Plan {
    upa_flex::Plan::aggregate(
        upa_flex::plan::AggregateKind::MachineLearning,
        upa_flex::Plan::table(table),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ml_plans_are_flex_unsupported() {
        let meta = upa_flex::Metadata::new();
        assert!(upa_flex::analyze(&super::ml_flex_plan("ds1"), &meta).is_err());
    }
}
