//! Linear Regression by gradient descent, as a Map/Reduce query.
//!
//! This is the paper's §III walk-through: the mapper computes an SGD
//! gradient per record, the reducer sums gradients, and the final model
//! update is the query output that UPA perturbs. One epoch = one UPA
//! query; training under DP splits the ε budget across epochs.

use crate::data::LrRecord;
use dataflow::Dataset;
use upa_core::query::MapReduceQuery;

/// A linear model (last weight is the bias) and its training step.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    weights: Vec<f64>,
    learning_rate: f64,
}

/// Accumulator of one epoch: gradient sum plus record count.
pub type LrAcc = (Vec<f64>, u64);

impl LinearRegression {
    /// Creates a model with zero weights for `dims` features.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not a positive finite number.
    pub fn new(dims: usize, learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        LinearRegression {
            weights: vec![0.0; dims + 1],
            learning_rate,
        }
    }

    /// The current weights (bias last).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Overwrites the weights (e.g. with a noisy update from UPA).
    ///
    /// # Panics
    ///
    /// Panics if the dimension changes.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.weights.len(), "dimension mismatch");
        self.weights = weights;
    }

    /// Prediction for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        features
            .iter()
            .zip(&self.weights)
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.weights[self.weights.len() - 1]
    }

    /// Mean squared error over a slice.
    pub fn mse(&self, records: &[LrRecord]) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        records
            .iter()
            .map(|r| {
                let e = self.predict(&r.features) - r.target;
                e * e
            })
            .sum::<f64>()
            / records.len() as f64
    }

    /// One full-batch gradient epoch as a Map/Reduce query: the output is
    /// the **updated weight vector** `w − lr · ∇/n` — the value a data
    /// analyst receives, and therefore the value UPA protects.
    pub fn step_query(&self, name: impl Into<String>) -> MapReduceQuery<LrRecord, LrAcc, Vec<f64>> {
        let w = self.weights.clone();
        let w_fin = self.weights.clone();
        let lr = self.learning_rate;
        let dims = self.weights.len();
        MapReduceQuery::new(
            name,
            move |r: &LrRecord| {
                // Gradient of squared error: (pred − y) · [x, 1].
                let err = r.features.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>()
                    + w[dims - 1]
                    - r.target;
                let mut g: Vec<f64> = r.features.iter().map(|x| err * x).collect();
                g.push(err); // bias gradient
                (g, 1u64)
            },
            |a: &LrAcc, b: &LrAcc| {
                (
                    a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect(),
                    a.1 + b.1,
                )
            },
            move |acc: Option<&LrAcc>| match acc {
                Some((grad, n)) if *n > 0 => w_fin
                    .iter()
                    .zip(grad)
                    .map(|(wi, g)| wi - lr * g / *n as f64)
                    .collect(),
                _ => w_fin.clone(),
            },
        )
        .with_half_key(|r: &LrRecord| crate::data::point_key(&r.features) ^ r.target.to_bits())
    }

    /// One non-private epoch over a dataset (the vanilla Spark baseline);
    /// returns the updated weights without mutating `self`.
    pub fn step_plain(&self, data: &Dataset<LrRecord>) -> Vec<f64> {
        let q = self.step_query("linreg_epoch");
        let m = q.mapper();
        let mapped = data.map(move |r| m(r));
        let acc = mapped.reduce(|a, b| {
            (
                a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect(),
                a.1 + b.1,
            )
        });
        q.finalize(acc.as_ref())
    }

    /// Trains for `epochs` non-private epochs (reference/testing helper).
    pub fn fit(&mut self, data: &Dataset<LrRecord>, epochs: usize) {
        for _ in 0..epochs {
            let w = self.step_plain(data);
            self.set_weights(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_regression, LifeScienceConfig};
    use dataflow::Context;

    fn small_data() -> (Vec<LrRecord>, Vec<f64>) {
        generate_regression(&LifeScienceConfig {
            records: 2_000,
            dims: 3,
            outlier_fraction: 0.0,
            ..LifeScienceConfig::default()
        })
    }

    #[test]
    fn training_reduces_mse() {
        let (records, _w) = small_data();
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(records.clone(), 4);
        let mut model = LinearRegression::new(3, 0.05);
        let before = model.mse(&records);
        model.fit(&ds, 50);
        let after = model.mse(&records);
        assert!(
            after < before / 10.0,
            "training must reduce MSE ({before} -> {after})"
        );
    }

    #[test]
    fn training_recovers_hidden_model() {
        let (records, true_w) = small_data();
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(records, 4);
        let mut model = LinearRegression::new(3, 0.1);
        model.fit(&ds, 200);
        for (wi, ti) in model.weights().iter().zip(&true_w) {
            assert!(
                (wi - ti).abs() < 0.2,
                "weights {:?} vs true {:?}",
                model.weights(),
                true_w
            );
        }
    }

    #[test]
    fn step_query_matches_plain_step() {
        let (records, _w) = small_data();
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(records.clone(), 4);
        let model = LinearRegression::new(3, 0.05);
        let plain = model.step_plain(&ds);
        let slice = model.step_query("epoch").evaluate_slice(&records);
        for (a, b) in plain.iter().zip(&slice) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_epoch_keeps_weights() {
        let model = LinearRegression::new(2, 0.1);
        let q = model.step_query("epoch");
        assert_eq!(q.evaluate_slice(&[]), model.weights());
    }

    #[test]
    fn neighbouring_datasets_change_the_model() {
        // The motivation for enforcing iDP on LR (§III): the updated model
        // differs between neighbouring datasets.
        let (records, _w) = small_data();
        let model = LinearRegression::new(3, 0.05);
        let q = model.step_query("epoch");
        let full = q.evaluate_slice(&records);
        let without_last = q.evaluate_slice(&records[..records.len() - 1]);
        assert_ne!(full, without_last);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn set_weights_rejects_wrong_dims() {
        let mut m = LinearRegression::new(3, 0.1);
        m.set_weights(vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_learning_rate_rejected() {
        let _ = LinearRegression::new(3, 0.0);
    }
}
