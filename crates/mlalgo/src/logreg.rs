//! Logistic regression by gradient descent, as a Map/Reduce query.
//!
//! Not part of the paper's nine-query evaluation — included because it is
//! the natural third member of the SGD family and demonstrates that UPA
//! extends to any model whose training step is a commutative/associative
//! gradient aggregation. A useful property for DP: the logistic gradient
//! per record is bounded by `‖x‖` (the sigmoid error is in `(−1, 1)`),
//! so per-record influence is intrinsically clipped.

use crate::data::LrRecord;
use dataflow::Dataset;
use upa_core::query::MapReduceQuery;

/// Accumulator of one epoch: gradient sum plus record count.
pub type LogAcc = (Vec<f64>, u64);

/// A logistic model (last weight is the bias). Targets are interpreted as
/// classes: positive target ⇒ label 1, otherwise 0.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    learning_rate: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Creates a model with zero weights for `dims` features.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not a positive finite number.
    pub fn new(dims: usize, learning_rate: f64) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        LogisticRegression {
            weights: vec![0.0; dims + 1],
            learning_rate,
        }
    }

    /// The current weights (bias last).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Overwrites the weights (e.g. with a noisy update from UPA).
    ///
    /// # Panics
    ///
    /// Panics if the dimension changes.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.weights.len(), "dimension mismatch");
        self.weights = weights;
    }

    /// Predicted probability of class 1.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let z = features
            .iter()
            .zip(&self.weights)
            .map(|(x, w)| x * w)
            .sum::<f64>()
            + self.weights[self.weights.len() - 1];
        sigmoid(z)
    }

    /// Classification accuracy against thresholded targets.
    pub fn accuracy(&self, records: &[LrRecord]) -> f64 {
        if records.is_empty() {
            return 0.0;
        }
        let correct = records
            .iter()
            .filter(|r| {
                let label = r.target > 0.0;
                (self.predict_proba(&r.features) > 0.5) == label
            })
            .count();
        correct as f64 / records.len() as f64
    }

    /// One full-batch epoch as a Map/Reduce query; the output is the
    /// updated weight vector.
    pub fn step_query(
        &self,
        name: impl Into<String>,
    ) -> MapReduceQuery<LrRecord, LogAcc, Vec<f64>> {
        let w = self.weights.clone();
        let w_fin = self.weights.clone();
        let lr = self.learning_rate;
        let dims = self.weights.len();
        MapReduceQuery::new(
            name,
            move |r: &LrRecord| {
                let label = if r.target > 0.0 { 1.0 } else { 0.0 };
                let z = r.features.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>() + w[dims - 1];
                let err = sigmoid(z) - label; // in (−1, 1): bounded influence
                let mut g: Vec<f64> = r.features.iter().map(|x| err * x).collect();
                g.push(err);
                (g, 1u64)
            },
            |a: &LogAcc, b: &LogAcc| {
                (
                    a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect(),
                    a.1 + b.1,
                )
            },
            move |acc: Option<&LogAcc>| match acc {
                Some((grad, n)) if *n > 0 => w_fin
                    .iter()
                    .zip(grad)
                    .map(|(wi, g)| wi - lr * g / *n as f64)
                    .collect(),
                _ => w_fin.clone(),
            },
        )
        .with_half_key(|r: &LrRecord| crate::data::point_key(&r.features) ^ r.target.to_bits())
    }

    /// One non-private epoch; returns updated weights without mutating
    /// `self`.
    pub fn step_plain(&self, data: &Dataset<LrRecord>) -> Vec<f64> {
        let q = self.step_query("logreg_epoch");
        let m = q.mapper();
        let mapped = data.map(move |r| m(r));
        let acc = mapped.reduce(|a, b| {
            (
                a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect(),
                a.1 + b.1,
            )
        });
        q.finalize(acc.as_ref())
    }

    /// Trains for `epochs` non-private epochs.
    pub fn fit(&mut self, data: &Dataset<LrRecord>, epochs: usize) {
        for _ in 0..epochs {
            let w = self.step_plain(data);
            self.set_weights(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::Context;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Linearly separable binary data: label = sign(x₀ − x₁).
    fn separable(n: usize) -> Vec<LrRecord> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(-3.0..3.0);
                let b: f64 = rng.gen_range(-3.0..3.0);
                LrRecord {
                    features: vec![a, b],
                    target: if a - b > 0.0 { 1.0 } else { -1.0 },
                }
            })
            .collect()
    }

    #[test]
    fn training_separates_the_classes() {
        let records = separable(2_000);
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(records.clone(), 4);
        let mut model = LogisticRegression::new(2, 1.0);
        assert!(model.accuracy(&records) < 0.7, "untrained baseline");
        model.fit(&ds, 100);
        assert!(
            model.accuracy(&records) > 0.95,
            "accuracy {}",
            model.accuracy(&records)
        );
        // The learned boundary has w0 > 0 > w1.
        assert!(model.weights()[0] > 0.0 && model.weights()[1] < 0.0);
    }

    #[test]
    fn step_query_matches_plain_step() {
        let records = separable(500);
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(records.clone(), 4);
        let model = LogisticRegression::new(2, 0.5);
        let plain = model.step_plain(&ds);
        let direct = model.step_query("epoch").evaluate_slice(&records);
        for (a, b) in plain.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_influence_is_bounded() {
        // |err| < 1, so each record's gradient magnitude is below ‖x‖ + 1.
        let model = LogisticRegression::new(2, 0.1);
        let q = model.step_query("epoch");
        let r = LrRecord {
            features: vec![2.0, -3.0],
            target: 1.0,
        };
        let (g, n) = q.map(&r);
        assert_eq!(n, 1);
        assert!(g[0].abs() <= 2.0 && g[1].abs() <= 3.0 && g[2].abs() <= 1.0);
    }

    #[test]
    fn empty_epoch_keeps_weights() {
        let model = LogisticRegression::new(3, 0.1);
        let q = model.step_query("epoch");
        assert_eq!(q.evaluate_slice(&[]), model.weights());
    }

    #[test]
    fn private_training_still_learns() {
        use upa_core::domain::EmpiricalSampler;
        use upa_core::{Upa, UpaConfig};
        let records = separable(4_000);
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize(records.clone(), 4);
        let domain = EmpiricalSampler::new(records.clone());
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 100,
                epsilon: 1.0,
                ..UpaConfig::default()
            },
        );
        let mut model = LogisticRegression::new(2, 1.0);
        for i in 0..30 {
            let q = model.step_query(format!("logreg_{i}"));
            let result = upa.run(&ds, &q, &domain).expect("query runs");
            model.set_weights(result.released);
        }
        assert!(
            model.accuracy(&records) > 0.9,
            "private accuracy {}",
            model.accuracy(&records)
        );
    }
}
