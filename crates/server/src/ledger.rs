//! The crash-safe budget ledger.
//!
//! Differential privacy's guarantee is only as durable as its budget
//! accounting: if a crash forgets a spend, the same budget can be charged
//! twice and the ε bound silently breaks. The ledger makes spends
//! *crash-safe* by writing an append-only log of
//! `(dataset, query_id, epsilon)` records — one JSON object per line,
//! each carrying an FNV-1a checksum — and fsyncing **before** any noisy
//! output leaves the process.
//!
//! The recovery invariant (asserted by the server's fault-injection and
//! SIGKILL tests):
//!
//! > **Every delivered release has a durable ledger record.** The
//! > converse may not hold: a crash between the fsync and the reply can
//! > leave a spend whose result was never delivered. That wastes budget
//! > but never leaks it — the fail-closed side of the tradeoff, chosen
//! > deliberately.
//!
//! On startup [`Ledger::open`] replays the log and the server restores
//! each dataset's [`upa_core::budget::BudgetAccountant`] via
//! [`upa_core::budget::BudgetAccountant::restore`]. The checksum lets
//! replay tell the two failure shapes apart:
//!
//! * a **torn tail** — the final line is incomplete because the crash
//!   happened mid-append; the spend never became durable, so the tail is
//!   truncated away and serving continues;
//! * **corruption** — a complete line that fails to parse or whose
//!   checksum mismatches is not a crash artefact but real damage
//!   (bit rot, truncation in the middle, a concurrent writer); the
//!   ledger refuses to open, because guessing risks under-counting
//!   spends.
//!
//! # Group commit
//!
//! A single release's durability costs one `fsync` (hundreds of µs to
//! milliseconds). Under concurrency that cost is shared:
//! [`GroupCommitLedger`] owns the file on a dedicated committer thread;
//! concurrent releases enqueue their records and block on a ticket while
//! the committer drains the queue, writes the whole batch with one
//! `write_all`, and fsyncs **once**. Every ticket resolves only after
//! the shared fsync, so the durability invariant above is unchanged —
//! the batch is either durable for everyone or an error for everyone. A
//! lone writer (no other submitter mid-enqueue) commits immediately; a
//! configurable commit window lets the committer linger briefly for
//! stragglers when the queue is hot.

use crate::obs::{Counter, Histogram};
use crate::wire::{self, Json};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One budget spend: dataset, query identity and the ε charged.
#[derive(Debug, Clone, PartialEq)]
pub struct SpendRecord {
    /// The dataset whose budget was charged.
    pub dataset: String,
    /// Identity of the released query (e.g. `data/mean/age`).
    pub query_id: String,
    /// The ε charged.
    pub epsilon: f64,
}

/// FNV-1a (32-bit) over the record's identity: dataset, query id, and
/// the exact bit pattern of ε. 32 bits so the checksum survives a JSON
/// round-trip through `f64` losslessly.
fn record_crc(dataset: &str, query_id: &str, epsilon: f64) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u32::from(*b);
            h = h.wrapping_mul(0x0100_0193);
        }
    };
    eat(dataset.as_bytes());
    eat(&[0]);
    eat(query_id.as_bytes());
    eat(&[0]);
    eat(&epsilon.to_bits().to_le_bytes());
    h
}

impl SpendRecord {
    /// Serialises the record as its ledger line (no trailing newline),
    /// checksum included.
    pub fn to_line(&self) -> String {
        format!(
            "{{\"dataset\":{},\"query_id\":{},\"epsilon\":{},\"crc\":{}}}",
            wire::json_str(&self.dataset),
            wire::json_str(&self.query_id),
            wire::json_num(self.epsilon),
            record_crc(&self.dataset, &self.query_id, self.epsilon)
        )
    }

    /// Parses a ledger line (the checksum, if present, is *not* verified
    /// here — see [`SpendRecord::crc_matches`]).
    pub fn from_json(v: &Json) -> Option<SpendRecord> {
        let epsilon = v.num_of("epsilon")?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return None;
        }
        Some(SpendRecord {
            dataset: v.str_of("dataset")?.to_string(),
            query_id: v.str_of("query_id")?.to_string(),
            epsilon,
        })
    }

    /// Whether the parsed line's checksum matches the record. Lines
    /// without a `crc` field (written before checksums existed) are
    /// accepted as matching — legacy ledgers keep replaying.
    pub fn crc_matches(&self, v: &Json) -> bool {
        match v.num_of("crc") {
            None => true,
            Some(crc) => crc == f64::from(record_crc(&self.dataset, &self.query_id, self.epsilon)),
        }
    }
}

/// The append-only spend log.
#[derive(Debug)]
pub struct Ledger {
    file: File,
    path: PathBuf,
}

impl Ledger {
    /// Opens (creating if absent) the ledger at `path` and replays every
    /// durable spend.
    ///
    /// A torn final append (no terminating newline, fails to parse) is
    /// **truncated away** — the spend never became durable, and leaving
    /// the torn bytes in place would corrupt the next append. A complete
    /// line that fails to parse or whose checksum mismatches is a hard
    /// error: that is damage, not a crash artefact.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` for a corrupt line.
    pub fn open(path: &Path) -> io::Result<(Ledger, Vec<SpendRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;
        let (records, durable_len) = Self::replay_durable(&contents)?;
        if durable_len < contents.len() {
            // Drop the torn tail so the next append starts on a clean
            // line boundary instead of gluing onto half a record.
            file.set_len(durable_len as u64)?;
            file.sync_data()?;
        }
        Ok((
            Ledger {
                file,
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Parses ledger contents into spend records (see [`Ledger::open`]
    /// for the torn-line rule).
    ///
    /// # Errors
    ///
    /// `InvalidData` naming the first corrupt line.
    pub fn replay(contents: &str) -> io::Result<Vec<SpendRecord>> {
        Self::replay_durable(contents).map(|(records, _)| records)
    }

    /// [`Ledger::replay`] plus the byte length of the durable prefix —
    /// everything past it is a torn tail the caller should truncate.
    ///
    /// # Errors
    ///
    /// `InvalidData` naming the first corrupt line.
    pub fn replay_durable(contents: &str) -> io::Result<(Vec<SpendRecord>, usize)> {
        let mut records = Vec::new();
        let mut durable_len = 0usize;
        let complete = contents.ends_with('\n');
        let lines: Vec<&str> = contents.split('\n').filter(|l| !l.is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let parsed = wire::parse(line)
                .ok()
                .map(|v| (SpendRecord::from_json(&v), v));
            match parsed {
                Some((Some(rec), v)) => {
                    if !rec.crc_matches(&v) {
                        // A complete record whose checksum disagrees is
                        // damage even at the tail: the writer only ever
                        // emits matching checksums, torn or not.
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("ledger line {} fails its checksum: {line:?}", i + 1),
                        ));
                    }
                    records.push(rec);
                    durable_len = offset_after(contents, line, complete || !last);
                }
                _ if last && !complete => {
                    // Torn final append: the crash happened mid-write, so
                    // the spend never became durable. The caller truncates.
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt ledger line {}: {line:?}", i + 1),
                    ));
                }
            }
        }
        Ok((records, durable_len))
    }

    /// Appends one spend and fsyncs it to disk. Only after this returns
    /// may the corresponding noisy output be released.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; the caller must treat any error
    /// as "the spend is not durable" and refuse to release.
    pub fn append(&mut self, record: &SpendRecord) -> io::Result<()> {
        let mut line = record.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// The ledger's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The byte offset just past `line` within `contents` (+1 for its
/// newline when `with_newline`). `line` is a slice of `contents`, so
/// pointer arithmetic gives the exact position.
fn offset_after(contents: &str, line: &str, with_newline: bool) -> usize {
    let base = line.as_ptr() as usize - contents.as_ptr() as usize;
    base + line.len() + usize::from(with_newline)
}

/// Sums replayed spends per dataset, the shape
/// [`upa_core::budget::BudgetAccountant::restore`] consumes. Summation
/// follows ledger order, so the reconstructed total is bit-identical to
/// a serial accountant the spends were charged against (concurrent
/// charges may differ in the last ulps — commit order and charge order
/// need not agree).
pub fn spent_by_dataset(records: &[SpendRecord]) -> std::collections::HashMap<String, f64> {
    let mut spent: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for rec in records {
        *spent.entry(rec.dataset.clone()).or_insert(0.0) += rec.epsilon;
    }
    spent
}

// ---- group commit -------------------------------------------------------

/// Observability hooks for the committer (all optional — the ledger
/// works headless in tests and tools).
#[derive(Debug, Clone)]
pub struct LedgerObs {
    /// Total fsync calls — under group commit this grows strictly slower
    /// than the release count whenever batching happens.
    pub fsyncs: Arc<Counter>,
    /// Records per committed batch.
    pub batch_size: Arc<Histogram>,
    /// Time a submitter spent blocked on its ticket (enqueue → durable).
    pub commit_wait: Arc<Histogram>,
}

/// One submitter's rendezvous with the shared fsync.
#[derive(Debug)]
struct Ticket {
    state: Mutex<Option<Result<(), String>>>,
    done: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, result: Result<(), String>) {
        *self.state.lock().expect("ticket poisoned") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<(), String> {
        let mut state = self.state.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.done.wait(state).expect("ticket poisoned");
        }
    }
}

#[derive(Debug)]
struct Pending {
    line: String,
    ticket: Arc<Ticket>,
}

#[derive(Debug)]
struct GroupShared {
    queue: Mutex<Vec<Pending>>,
    arrived: Condvar,
    /// Submitters past the entry gate but not yet enqueued — the
    /// committer's signal that lingering for the commit window will pay.
    submitters: AtomicUsize,
    window: Duration,
    shutdown: AtomicBool,
    obs: Option<LedgerObs>,
}

/// The group-committing front of a [`Ledger`]: many threads submit,
/// one committer thread batches writes and shares fsyncs.
#[derive(Debug)]
pub struct GroupCommitLedger {
    shared: Arc<GroupShared>,
    committer: Option<std::thread::JoinHandle<()>>,
    path: PathBuf,
}

impl GroupCommitLedger {
    /// Takes ownership of an opened ledger and spawns the committer.
    /// `window` bounds how long the committer lingers for stragglers
    /// once it has work; zero means "commit the instant the queue is
    /// non-empty" (batching then comes only from arrivals during the
    /// previous fsync).
    pub fn spawn(ledger: Ledger, window: Duration, obs: Option<LedgerObs>) -> GroupCommitLedger {
        let path = ledger.path.clone();
        let shared = Arc::new(GroupShared {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            submitters: AtomicUsize::new(0),
            window,
            shutdown: AtomicBool::new(false),
            obs,
        });
        let thread_shared = Arc::clone(&shared);
        let committer = std::thread::Builder::new()
            .name("upa-ledger-commit".into())
            .spawn(move || committer_loop(thread_shared, ledger.file))
            .expect("spawn ledger committer");
        GroupCommitLedger {
            shared,
            committer: Some(committer),
            path,
        }
    }

    /// Submits one spend and blocks until it is durable (or the batch's
    /// shared fsync failed). On `Ok`, the record — and every record
    /// committed with it — is on disk.
    ///
    /// # Errors
    ///
    /// The committed batch's write/fsync failure, stringified (one
    /// `io::Error` cannot fan out to many waiters).
    pub fn submit(&self, record: &SpendRecord) -> Result<(), String> {
        let start = Instant::now();
        self.shared.submitters.fetch_add(1, Ordering::SeqCst);
        let mut line = record.to_line();
        line.push('\n');
        let ticket = Arc::new(Ticket::new());
        {
            let mut queue = self.shared.queue.lock().expect("ledger queue poisoned");
            queue.push(Pending {
                line,
                ticket: Arc::clone(&ticket),
            });
            self.shared.submitters.fetch_sub(1, Ordering::SeqCst);
            self.shared.arrived.notify_all();
        }
        let result = ticket.wait();
        if let Some(obs) = &self.shared.obs {
            obs.commit_wait.record_duration(start.elapsed());
        }
        result
    }

    /// The ledger's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for GroupCommitLedger {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.arrived.notify_all();
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
        // A submitter that raced the shutdown may have enqueued after the
        // committer's last drain; fail its ticket rather than strand it.
        let leftovers = std::mem::take(&mut *self.shared.queue.lock().expect("ledger queue"));
        for pending in leftovers {
            pending
                .ticket
                .resolve(Err("ledger shut down before commit".into()));
        }
    }
}

fn committer_loop(shared: Arc<GroupShared>, mut file: File) {
    let mut queue = shared.queue.lock().expect("ledger queue poisoned");
    loop {
        while queue.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            queue = shared.arrived.wait(queue).expect("ledger queue poisoned");
        }
        // Linger for stragglers up to the commit window — but only while
        // some submitter is demonstrably mid-enqueue. A lone writer pays
        // zero added latency.
        if !shared.window.is_zero() {
            let deadline = Instant::now() + shared.window;
            while shared.submitters.load(Ordering::SeqCst) > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .arrived
                    .wait_timeout(queue, deadline - now)
                    .expect("ledger queue poisoned");
                queue = guard;
            }
        }
        let batch = std::mem::take(&mut *queue);
        drop(queue);

        let result = commit_batch(&mut file, &batch).map_err(|e| e.to_string());
        if let Some(obs) = &shared.obs {
            obs.fsyncs.inc();
            obs.batch_size.record(batch.len() as u64);
        }
        for pending in batch {
            pending.ticket.resolve(result.clone());
        }
        queue = shared.queue.lock().expect("ledger queue poisoned");
    }
}

/// One `write_all` of the whole batch, one `sync_data` — the shared
/// fsync every ticket in the batch waits on.
fn commit_batch(file: &mut File, batch: &[Pending]) -> io::Result<()> {
    let total: usize = batch.iter().map(|p| p.line.len()).sum();
    let mut buf = String::with_capacity(total);
    for pending in batch {
        buf.push_str(&pending.line);
    }
    file.write_all(buf.as_bytes())?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("upa_ledger_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(format!("{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_then_reopen_replays_spends() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut ledger, initial) = Ledger::open(&path).unwrap();
        assert!(initial.is_empty());
        let recs = [
            SpendRecord {
                dataset: "data".into(),
                query_id: "data/sum/age".into(),
                epsilon: 0.4,
            },
            SpendRecord {
                dataset: "other \"x\"".into(),
                query_id: "other/count/".into(),
                epsilon: 0.1,
            },
        ];
        for r in &recs {
            ledger.append(r).unwrap();
        }
        drop(ledger);
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed, recs);
        let spent = spent_by_dataset(&replayed);
        assert_eq!(spent["data"], 0.4);
        assert_eq!(spent["other \"x\""], 0.1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_discarded_and_truncated() {
        let path = temp_path("torn");
        let durable = "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n";
        std::fs::write(
            &path,
            format!("{durable}{{\"dataset\":\"d\",\"query_id\":\"q\",\"eps"),
        )
        .unwrap();
        let (mut ledger, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "torn tail ignored, durable spend kept");
        // The torn bytes are gone, so the next append lands on a clean
        // line boundary…
        assert_eq!(std::fs::read_to_string(&path).unwrap(), durable);
        ledger
            .append(&SpendRecord {
                dataset: "d".into(),
                query_id: "q2".into(),
                epsilon: 0.2,
            })
            .unwrap();
        drop(ledger);
        // …and a second replay sees both spends instead of a corrupt
        // splice.
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].query_id, "q2");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let path = temp_path("corrupt");
        std::fs::write(
            &path,
            "not json at all\n{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n",
        )
        .unwrap();
        let err = Ledger::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_positive_epsilon_is_rejected_as_corrupt() {
        let path = temp_path("negeps");
        std::fs::write(
            &path,
            "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":-0.5}\n{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n",
        )
        .unwrap();
        assert!(Ledger::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn complete_final_line_without_newline_is_kept() {
        let path = temp_path("nonl");
        std::fs::write(
            &path,
            "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.25}",
        )
        .unwrap();
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].epsilon, 0.25);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checksum_round_trips_and_legacy_lines_still_replay() {
        let rec = SpendRecord {
            dataset: "d".into(),
            query_id: "d/mean/v".into(),
            epsilon: 0.125,
        };
        let line = rec.to_line();
        assert!(line.contains("\"crc\":"), "{line}");
        let v = wire::parse(&line).unwrap();
        let parsed = SpendRecord::from_json(&v).unwrap();
        assert_eq!(parsed, rec);
        assert!(parsed.crc_matches(&v));
        // Pre-checksum ledgers (no crc field) keep replaying.
        let legacy = "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n";
        let (records, len) = Ledger::replay_durable(legacy).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(len, legacy.len());
    }

    #[test]
    fn checksum_mismatch_is_corruption_even_at_the_tail() {
        let path = temp_path("crc_bad");
        let good = SpendRecord {
            dataset: "d".into(),
            query_id: "q".into(),
            epsilon: 0.1,
        }
        .to_line();
        // Flip the spend amount but keep the old checksum: a complete,
        // parseable line whose bytes were altered.
        let tampered = good.replace("\"epsilon\":0.1", "\"epsilon\":0.9");
        assert_ne!(good, tampered);
        std::fs::write(&path, format!("{tampered}\n")).unwrap();
        let err = Ledger::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        // Without a trailing newline the verdict is the same — a wrong
        // checksum is damage, never a torn append.
        std::fs::write(&path, &tampered).unwrap();
        assert!(Ledger::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_makes_every_submitted_spend_durable() {
        let path = temp_path("group");
        let _ = std::fs::remove_file(&path);
        let (ledger, _) = Ledger::open(&path).unwrap();
        let registry = crate::obs::Registry::new();
        let obs = LedgerObs {
            fsyncs: registry.counter("fsyncs"),
            batch_size: registry.histogram("batch"),
            commit_wait: registry.histogram("wait"),
        };
        let group = Arc::new(GroupCommitLedger::spawn(
            ledger,
            Duration::from_micros(200),
            Some(obs.clone()),
        ));
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5;
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let group = Arc::clone(&group);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    group
                        .submit(&SpendRecord {
                            dataset: "d".into(),
                            query_id: format!("d/sum/{t}-{i}"),
                            epsilon: 0.01,
                        })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let submitted = THREADS * PER_THREAD;
        assert!(obs.fsyncs.get() >= 1);
        assert!(
            obs.fsyncs.get() <= submitted as u64,
            "at most one fsync per record"
        );
        assert_eq!(obs.commit_wait.count(), submitted as u64);
        drop(group);
        // Every ticket resolved Ok, so every record is durable — and the
        // checksummed lines replay cleanly.
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), submitted);
        let spent = spent_by_dataset(&replayed);
        assert!((spent["d"] - 0.01 * submitted as f64).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lone_writer_commits_without_waiting_out_the_window() {
        let path = temp_path("lone");
        let _ = std::fs::remove_file(&path);
        let (ledger, _) = Ledger::open(&path).unwrap();
        // A long window must not delay a lone writer: the committer only
        // lingers while another submitter is mid-enqueue.
        let group = GroupCommitLedger::spawn(ledger, Duration::from_secs(5), None);
        let start = Instant::now();
        group
            .submit(&SpendRecord {
                dataset: "d".into(),
                query_id: "q".into(),
                epsilon: 0.1,
            })
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "lone writer waited out the window: {:?}",
            start.elapsed()
        );
        drop(group);
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
