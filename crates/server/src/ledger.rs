//! The crash-safe budget ledger.
//!
//! Differential privacy's guarantee is only as durable as its budget
//! accounting: if a crash forgets a spend, the same budget can be charged
//! twice and the ε bound silently breaks. The ledger makes spends
//! *crash-safe* by writing an append-only log of
//! `(dataset, query_id, epsilon)` records — one JSON object per line —
//! and fsyncing **before** any noisy output leaves the process.
//!
//! The recovery invariant (asserted by the server's fault-injection and
//! SIGKILL tests):
//!
//! > **Every delivered release has a durable ledger record.** The
//! > converse may not hold: a crash between the fsync and the reply can
//! > leave a spend whose result was never delivered. That wastes budget
//! > but never leaks it — the fail-closed side of the tradeoff, chosen
//! > deliberately.
//!
//! On startup [`Ledger::open`] replays the log, and the server restores
//! each dataset's [`upa_core::budget::BudgetAccountant`] via
//! [`upa_core::budget::BudgetAccountant::restore`]. A torn final line
//! (crash mid-append) is ignored; a corrupt line elsewhere is an error —
//! that is not a crash artefact but real damage, and refusing to serve
//! beats under-counting spends.

use crate::wire::{self, Json};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// One budget spend: dataset, query identity and the ε charged.
#[derive(Debug, Clone, PartialEq)]
pub struct SpendRecord {
    /// The dataset whose budget was charged.
    pub dataset: String,
    /// Identity of the released query (e.g. `data/mean/age`).
    pub query_id: String,
    /// The ε charged.
    pub epsilon: f64,
}

impl SpendRecord {
    /// Serialises the record as its ledger line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"dataset\":{},\"query_id\":{},\"epsilon\":{}}}",
            wire::json_str(&self.dataset),
            wire::json_str(&self.query_id),
            wire::json_num(self.epsilon)
        )
    }

    /// Parses a ledger line.
    pub fn from_json(v: &Json) -> Option<SpendRecord> {
        let epsilon = v.num_of("epsilon")?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return None;
        }
        Some(SpendRecord {
            dataset: v.str_of("dataset")?.to_string(),
            query_id: v.str_of("query_id")?.to_string(),
            epsilon,
        })
    }
}

/// The append-only spend log.
#[derive(Debug)]
pub struct Ledger {
    file: File,
    path: PathBuf,
}

impl Ledger {
    /// Opens (creating if absent) the ledger at `path` and replays every
    /// durable spend.
    ///
    /// A final line without its terminating newline that fails to parse
    /// is treated as a torn append and discarded. Any other unparsable
    /// line is a hard error.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` for a corrupt non-final line.
    pub fn open(path: &Path) -> io::Result<(Ledger, Vec<SpendRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;
        let records = Self::replay(&contents)?;
        Ok((
            Ledger {
                file,
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Parses ledger contents into spend records (see [`Ledger::open`]
    /// for the torn-line rule).
    ///
    /// # Errors
    ///
    /// `InvalidData` naming the first corrupt non-final line.
    pub fn replay(contents: &str) -> io::Result<Vec<SpendRecord>> {
        let mut records = Vec::new();
        let complete = contents.ends_with('\n');
        let lines: Vec<&str> = contents.split('\n').filter(|l| !l.is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            let parsed = wire::parse(line)
                .ok()
                .and_then(|v| SpendRecord::from_json(&v));
            match parsed {
                Some(rec) => records.push(rec),
                None if i + 1 == lines.len() && !complete => {
                    // Torn final append: the crash happened mid-write, so
                    // the spend never became durable. Discard it.
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt ledger line {}: {line:?}", i + 1),
                    ));
                }
            }
        }
        Ok(records)
    }

    /// Appends one spend and fsyncs it to disk. Only after this returns
    /// may the corresponding noisy output be released.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; the caller must treat any error
    /// as "the spend is not durable" and refuse to release.
    pub fn append(&mut self, record: &SpendRecord) -> io::Result<()> {
        let mut line = record.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// The ledger's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Sums replayed spends per dataset, the shape
/// [`upa_core::budget::BudgetAccountant::restore`] consumes. Summation
/// follows ledger order, so the reconstructed total is bit-identical to
/// the accountant the spends were originally charged against.
pub fn spent_by_dataset(records: &[SpendRecord]) -> std::collections::HashMap<String, f64> {
    let mut spent: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for rec in records {
        *spent.entry(rec.dataset.clone()).or_insert(0.0) += rec.epsilon;
    }
    spent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("upa_ledger_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(format!("{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_then_reopen_replays_spends() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut ledger, initial) = Ledger::open(&path).unwrap();
        assert!(initial.is_empty());
        let recs = [
            SpendRecord {
                dataset: "data".into(),
                query_id: "data/sum/age".into(),
                epsilon: 0.4,
            },
            SpendRecord {
                dataset: "other \"x\"".into(),
                query_id: "other/count/".into(),
                epsilon: 0.1,
            },
        ];
        for r in &recs {
            ledger.append(r).unwrap();
        }
        drop(ledger);
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed, recs);
        let spent = spent_by_dataset(&replayed);
        assert_eq!(spent["data"], 0.4);
        assert_eq!(spent["other \"x\""], 0.1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_discarded() {
        let path = temp_path("torn");
        std::fs::write(
            &path,
            "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n{\"dataset\":\"d\",\"query_id\":\"q\",\"eps",
        )
        .unwrap();
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "torn tail ignored, durable spend kept");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let path = temp_path("corrupt");
        std::fs::write(
            &path,
            "not json at all\n{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n",
        )
        .unwrap();
        let err = Ledger::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_positive_epsilon_is_rejected_as_corrupt() {
        let path = temp_path("negeps");
        std::fs::write(
            &path,
            "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":-0.5}\n{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.1}\n",
        )
        .unwrap();
        assert!(Ledger::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn complete_final_line_without_newline_is_kept() {
        let path = temp_path("nonl");
        std::fs::write(
            &path,
            "{\"dataset\":\"d\",\"query_id\":\"q\",\"epsilon\":0.25}",
        )
        .unwrap();
        let (_, replayed) = Ledger::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].epsilon, 0.25);
        let _ = std::fs::remove_file(&path);
    }
}
