//! Protocol client: one TCP connection, line-delimited JSON requests,
//! typed replies.
//!
//! The client reconstructs [`QueryAudit`] values from the server's JSON
//! so remote audits render through the exact same
//! [`QueryAudit::render`] path as local ones — `upa-cli --stats` output
//! is byte-identical whether the query ran in-process or over the wire.

use crate::wire::{self, Json};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use upa_core::QueryAudit;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// The server refused the request.
    Server {
        /// The stable error code (see `ServeError::code`).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server's error code, when the failure came from the server.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A successful `release` reply.
#[derive(Debug)]
pub struct ReleaseReply {
    /// Query identity (`dataset/kind/column`).
    pub query_id: String,
    /// The noisy value.
    pub released: f64,
    /// The ε charged.
    pub epsilon: f64,
    /// Laplace noise scale.
    pub noise_scale: f64,
    /// Effective sample size.
    pub sample_size: usize,
    /// Budget remaining (`None` when the server is unmetered).
    pub budget_remaining: Option<f64>,
    /// The release's audit, when requested.
    pub audit: Option<QueryAudit>,
}

/// A successful `prepare` reply.
#[derive(Debug)]
pub struct PrepareReply {
    /// Query identity.
    pub query_id: String,
    /// Effective sample size of the prepared state.
    pub sample_size: usize,
    /// Whether the server answered from its shared prepared cache.
    pub cached: bool,
}

/// A dataset's budget as reported by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetReply {
    /// Total ε budget.
    pub total: f64,
    /// ε spent so far.
    pub spent: f64,
    /// ε remaining.
    pub remaining: f64,
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line and parses the reply. Server-side errors
    /// (`"ok":false`) become [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors.
    pub fn call(&mut self, request: &str) -> Result<Json, ClientError> {
        // A refused connection (admission control) gets its error line
        // written at accept time and is then closed — writing this
        // request can hit a broken pipe while a perfectly good refusal
        // sits in the receive buffer. Try the read even if the write
        // failed and prefer whatever the server managed to say.
        let written = self
            .writer
            .write_all(request.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            read_outcome => {
                written?;
                read_outcome?;
                return Err(ClientError::Protocol(
                    "server closed the connection without replying".into(),
                ));
            }
        }
        let reply = wire::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparsable reply: {e}")))?;
        match reply.bool_of("ok") {
            Some(true) => Ok(reply),
            Some(false) => Err(ClientError::Server {
                code: reply.str_of("code").unwrap_or("unknown").to_string(),
                message: reply.str_of("error").unwrap_or("").to_string(),
            }),
            None => Err(ClientError::Protocol("reply missing 'ok'".into())),
        }
    }

    /// Health check.
    ///
    /// # Errors
    ///
    /// Transport or server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call("{\"op\":\"ping\"}").map(|_| ())
    }

    /// The server's dataset names.
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors.
    pub fn datasets(&mut self) -> Result<Vec<String>, ClientError> {
        let reply = self.call("{\"op\":\"datasets\"}")?;
        let arr = reply
            .get("datasets")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("reply missing 'datasets'".into()))?;
        Ok(arr
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect())
    }

    fn query_request(op: &str, dataset: &str, query: &str, column: &str) -> String {
        format!(
            "{{\"op\":{},\"dataset\":{},\"query\":{},\"column\":{}}}",
            wire::json_str(op),
            wire::json_str(dataset),
            wire::json_str(query),
            wire::json_str(column)
        )
    }

    /// Runs phases 1–3 server-side (or hits the shared cache).
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors.
    pub fn prepare(
        &mut self,
        dataset: &str,
        query: &str,
        column: &str,
    ) -> Result<PrepareReply, ClientError> {
        let reply = self.call(&Self::query_request("prepare", dataset, query, column))?;
        Ok(PrepareReply {
            query_id: reply
                .str_of("query_id")
                .ok_or_else(|| ClientError::Protocol("reply missing 'query_id'".into()))?
                .to_string(),
            sample_size: reply.get("sample_size").and_then(Json::as_u64).unwrap_or(0) as usize,
            cached: reply.bool_of("cached").unwrap_or(false),
        })
    }

    /// Releases one differentially private answer.
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors (including `budget` refusals).
    pub fn release(
        &mut self,
        dataset: &str,
        query: &str,
        column: &str,
        epsilon: Option<f64>,
        want_audit: bool,
    ) -> Result<ReleaseReply, ClientError> {
        let mut request = format!(
            "{{\"op\":\"release\",\"dataset\":{},\"query\":{},\"column\":{}",
            wire::json_str(dataset),
            wire::json_str(query),
            wire::json_str(column)
        );
        if let Some(eps) = epsilon {
            request.push_str(&format!(",\"epsilon\":{}", wire::json_num(eps)));
        }
        if want_audit {
            request.push_str(",\"audit\":true");
        }
        request.push('}');
        let reply = self.call(&request)?;
        let field = |name: &str| {
            reply
                .num_of(name)
                .ok_or_else(|| ClientError::Protocol(format!("reply missing '{name}'")))
        };
        Ok(ReleaseReply {
            query_id: reply.str_of("query_id").unwrap_or("").to_string(),
            released: field("released")?,
            epsilon: field("epsilon")?,
            noise_scale: field("noise_scale")?,
            sample_size: reply.get("sample_size").and_then(Json::as_u64).unwrap_or(0) as usize,
            budget_remaining: reply.num_of("budget_remaining"),
            audit: reply.get("audit").and_then(audit_from_json),
        })
    }

    /// The dataset's budget (`None` when the server is unmetered).
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors.
    pub fn budget(&mut self, dataset: &str) -> Result<Option<BudgetReply>, ClientError> {
        let reply = self.call(&format!(
            "{{\"op\":\"budget\",\"dataset\":{}}}",
            wire::json_str(dataset)
        ))?;
        match (
            reply.num_of("total"),
            reply.num_of("spent"),
            reply.num_of("remaining"),
        ) {
            (Some(total), Some(spent), Some(remaining)) => Ok(Some(BudgetReply {
                total,
                spent,
                remaining,
            })),
            _ => Ok(None),
        }
    }

    /// The most recent `last` audits of the dataset, oldest first.
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors.
    pub fn audits(
        &mut self,
        dataset: &str,
        last: Option<usize>,
    ) -> Result<Vec<QueryAudit>, ClientError> {
        let mut request = format!("{{\"op\":\"audit\",\"dataset\":{}", wire::json_str(dataset));
        if let Some(n) = last {
            request.push_str(&format!(",\"last\":{n}"));
        }
        request.push('}');
        let reply = self.call(&request)?;
        let arr = reply
            .get("audits")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("reply missing 'audits'".into()))?;
        arr.iter()
            .map(|v| {
                audit_from_json(v)
                    .ok_or_else(|| ClientError::Protocol("malformed audit in reply".into()))
            })
            .collect()
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Transport, parse, or server errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call("{\"op\":\"shutdown\"}").map(|_| ())
    }
}

/// Reconstructs a [`QueryAudit`] from its [`QueryAudit::to_json`] form.
/// Returns `None` when required fields are missing, so a truncated or
/// foreign object never silently becomes a zeroed audit.
pub fn audit_from_json(v: &Json) -> Option<QueryAudit> {
    use dataflow::{MetricsSnapshot, StageSpan};
    let engine = v.get("engine")?;
    let counter = |name: &str| engine.get(name).and_then(Json::as_u64).unwrap_or(0);
    // `json_num` writes non-finite floats as null; map them back to NaN
    // rather than inventing a finite value.
    let num_or_nan = |field: &Json| field.as_f64().unwrap_or(f64::NAN);
    Some(QueryAudit {
        query: v.str_of("query")?.to_string(),
        epsilon: v.num_of("epsilon")?,
        budget_remaining: v.num_of("budget_remaining"),
        sensitivity: v
            .get("sensitivity")?
            .as_arr()?
            .iter()
            .map(num_or_nan)
            .collect(),
        range: v
            .get("range")?
            .as_arr()?
            .iter()
            .filter_map(|pair| {
                let pair = pair.as_arr()?;
                Some((num_or_nan(pair.first()?), num_or_nan(pair.get(1)?)))
            })
            .collect(),
        clamped: v.bool_of("clamped")?,
        attack_detected: v.bool_of("attack_detected")?,
        removed_records: v.get("removed_records").and_then(Json::as_u64)? as usize,
        sample_size: v.get("sample_size").and_then(Json::as_u64)? as usize,
        group_size: v.get("group_size").and_then(Json::as_u64)? as usize,
        spans: v
            .get("spans")?
            .as_arr()?
            .iter()
            .filter_map(|sp| {
                Some(StageSpan {
                    name: sp.str_of("name")?.to_string(),
                    path: sp.str_of("path")?.to_string(),
                    depth: sp.get("depth").and_then(Json::as_u64)? as usize,
                    nanos: sp.get("nanos").and_then(Json::as_u64)?,
                    records: sp.get("records").and_then(Json::as_u64)?,
                    calls: sp.get("calls").and_then(Json::as_u64)?,
                })
            })
            .collect(),
        engine: MetricsSnapshot {
            stages: counter("stages"),
            tasks: counter("tasks"),
            task_retries: counter("task_retries"),
            shuffles: counter("shuffles"),
            shuffle_records: counter("shuffle_records"),
            shuffle_bytes: counter("shuffle_bytes"),
            records_processed: counter("records_processed"),
        },
        total_nanos: v.get("total_nanos").and_then(Json::as_u64)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{MetricsSnapshot, StageSpan};

    fn sample_audit() -> QueryAudit {
        QueryAudit {
            query: "mean".to_string(),
            epsilon: 0.25,
            budget_remaining: Some(0.5),
            sensitivity: vec![1.5, 2.0],
            range: vec![(0.0, 10.0), (-1.0, 1.0)],
            clamped: true,
            attack_detected: false,
            removed_records: 3,
            sample_size: 200,
            group_size: 1,
            spans: vec![
                StageSpan {
                    name: "prepare".into(),
                    path: "prepare".into(),
                    depth: 0,
                    nanos: 12_345,
                    records: 200,
                    calls: 1,
                },
                StageSpan {
                    name: "sample".into(),
                    path: "prepare/sample".into(),
                    depth: 1,
                    nanos: 2_345,
                    records: 200,
                    calls: 2,
                },
            ],
            engine: MetricsSnapshot {
                stages: 4,
                tasks: 16,
                task_retries: 1,
                shuffles: 2,
                shuffle_records: 800,
                shuffle_bytes: 6_400,
                records_processed: 1_600,
            },
            total_nanos: 12_345,
        }
    }

    #[test]
    fn audit_round_trips_through_json() {
        let original = sample_audit();
        let parsed = wire::parse(&original.to_json()).expect("to_json parses");
        let rebuilt = audit_from_json(&parsed).expect("audit reconstructs");
        // The shared renderer is the contract: remote audits must render
        // identically to local ones.
        assert_eq!(rebuilt.render(), original.render());
        assert_eq!(rebuilt.query, original.query);
        assert_eq!(rebuilt.epsilon, original.epsilon);
        assert_eq!(rebuilt.budget_remaining, original.budget_remaining);
        assert_eq!(rebuilt.sensitivity, original.sensitivity);
        assert_eq!(rebuilt.range, original.range);
        assert_eq!(rebuilt.spans.len(), original.spans.len());
        assert_eq!(rebuilt.engine.shuffle_bytes, original.engine.shuffle_bytes);
        assert_eq!(rebuilt.total_nanos, original.total_nanos);
    }

    #[test]
    fn truncated_audit_is_rejected_not_zeroed() {
        let parsed = wire::parse(r#"{"query":"count","epsilon":0.1}"#).unwrap();
        assert!(audit_from_json(&parsed).is_none());
    }
}
