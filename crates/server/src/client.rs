//! Protocol client: one TCP connection, typed [`Request`]/[`Response`]
//! lines from [`crate::proto`].
//!
//! [`Client::connect`] gives the plain v1 behaviour; [`Client::builder`]
//! adds connect/read timeouts and bounded jittered-backoff retry on
//! `busy` refusals (the server sheds load by refusing, so a polite
//! client backs off instead of hammering the accept queue).
//!
//! The client reconstructs [`QueryAudit`] values from the server's JSON
//! so remote audits render through the exact same
//! [`QueryAudit::render`] path as local ones — `upa-cli --stats` output
//! is byte-identical whether the query ran in-process or over the wire.

use crate::obs::TraceRecord;
use crate::proto::{DatasetsReply, ErrorCode, MetricsReply, Request, Response, StatsReply};
use crate::state::AggKind;
use crate::state::AttachOutcome;
use crate::wire;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use upa_core::QueryAudit;

pub use crate::proto::audit_from_json;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// The server refused the request.
    Server {
        /// The stable error code (shared with the server through
        /// [`ErrorCode`]).
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server's error code, when the failure came from the server.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A successful `release` reply.
#[derive(Debug)]
pub struct ReleaseReply {
    /// Query identity (`dataset/kind/column`).
    pub query_id: String,
    /// The noisy value.
    pub released: f64,
    /// The ε charged.
    pub epsilon: f64,
    /// Laplace noise scale.
    pub noise_scale: f64,
    /// Effective sample size.
    pub sample_size: usize,
    /// Budget remaining (`None` when the server is unmetered).
    pub budget_remaining: Option<f64>,
    /// Whether the release was served from cached prepared state
    /// (`cache: hit`) or paid a cold prepare (`cache: miss`).
    pub cached: bool,
    /// Microseconds of the cold prepare (`None` on a cache hit).
    pub prepare_us: Option<u64>,
    /// The release's audit, when requested.
    pub audit: Option<QueryAudit>,
}

/// A successful `prepare` reply.
#[derive(Debug)]
pub struct PrepareReply {
    /// Query identity.
    pub query_id: String,
    /// Effective sample size of the prepared state.
    pub sample_size: usize,
    /// Whether the server answered from shared prepared state (cache or
    /// a coalesced in-flight prepare) instead of running the engine.
    pub cached: bool,
}

/// A dataset's budget as reported by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetReply {
    /// Total ε budget.
    pub total: f64,
    /// ε spent so far.
    pub spent: f64,
    /// ε remaining.
    pub remaining: f64,
}

/// Configures and opens a [`Client`]. Obtained from [`Client::builder`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    retry_busy: u32,
    retry_base: Duration,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            connect_timeout: None,
            read_timeout: None,
            retry_busy: 0,
            retry_base: Duration::from_millis(50),
        }
    }
}

impl ClientBuilder {
    /// Bounds each TCP connect attempt.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Bounds each reply read (an expired timeout surfaces as
    /// [`ClientError::Io`]).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Retries a request up to `attempts` extra times when the server
    /// answers `busy`, sleeping an exponentially growing, jittered
    /// backoff (starting from [`ClientBuilder::retry_base_delay`]) and
    /// reconnecting before each retry — admission-control refusals close
    /// the connection server-side.
    pub fn retry_busy(mut self, attempts: u32) -> Self {
        self.retry_busy = attempts;
        self
    }

    /// The first retry's backoff delay (default 50 ms); attempt `k`
    /// waits up to `2^k` times this.
    pub fn retry_base_delay(mut self, base: Duration) -> Self {
        self.retry_base = base;
        self
    }

    /// Opens the connection.
    ///
    /// # Errors
    ///
    /// Resolution or connection failures.
    pub fn connect(self, addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        // Seed the retry jitter from the wall clock — decorrelates the
        // backoff of clients started together.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9E37_79B9);
        let (reader, writer) = open_stream(&addrs, &self)?;
        Ok(Client {
            reader,
            writer,
            addrs,
            builder: self,
            jitter_state: seed,
        })
    }
}

fn open_stream(
    addrs: &[SocketAddr],
    builder: &ClientBuilder,
) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
    let mut last_err: Option<io::Error> = None;
    for addr in addrs {
        let attempt = match builder.connect_timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_read_timeout(builder.read_timeout)?;
                // Request/reply over one connection: Nagle would hold
                // each small request until the previous segment's
                // (delayed) ACK, stalling every exchange ~40ms.
                stream.set_nodelay(true)?;
                let reader = BufReader::new(stream.try_clone()?);
                return Ok((reader, stream));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(ClientError::Io(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")
    })))
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addrs: Vec<SocketAddr>,
    builder: ClientBuilder,
    jitter_state: u64,
}

impl Client {
    /// A builder for timeouts and `busy` retry policy.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects with default settings (no timeouts, no retries) — the
    /// v1 constructor, kept as a thin shim over [`Client::builder`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::builder().connect(addr)
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = open_stream(&self.addrs, &self.builder)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// splitmix64 step for backoff jitter.
    fn next_jitter(&mut self) -> f64 {
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sends one typed request and decodes the typed reply, applying the
    /// builder's `busy` retry policy (full-jitter exponential backoff,
    /// reconnecting before each retry).
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors ([`Response::Error`] replies
    /// surface as [`ClientError::Server`]).
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.request_once(request) {
                Err(ClientError::Server {
                    code: ErrorCode::Busy,
                    ..
                }) if attempt < self.builder.retry_busy => {
                    attempt += 1;
                    let ceiling =
                        self.builder.retry_base.as_secs_f64() * f64::from(1u32 << attempt.min(16));
                    let delay = Duration::from_secs_f64(ceiling * self.next_jitter());
                    std::thread::sleep(delay);
                    self.reconnect()?;
                }
                outcome => return outcome,
            }
        }
    }

    fn request_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        // A refused connection (admission control) gets its error line
        // written at accept time and is then closed — writing this
        // request can hit a broken pipe while a perfectly good refusal
        // sits in the receive buffer. Try the read even if the write
        // failed and prefer whatever the server managed to say.
        // One write syscall per request (line + terminator together): a
        // split write means a second tiny TCP segment that Nagle holds
        // back until the first is ACKed.
        let mut line = request.to_line();
        line.push('\n');
        let written = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush());
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            read_outcome => {
                written?;
                read_outcome?;
                return Err(ClientError::Protocol(
                    "server closed the connection without replying".into(),
                ));
            }
        }
        let reply = wire::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparsable reply: {e}")))?;
        match Response::from_json(&reply).map_err(ClientError::Protocol)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    fn unexpected(what: &str, response: &Response) -> ClientError {
        ClientError::Protocol(format!("expected a {what} reply, got {response:?}"))
    }

    fn parse_kind(query: &str) -> Result<AggKind, ClientError> {
        query.parse().map_err(ClientError::Protocol)
    }

    /// Health check.
    ///
    /// # Errors
    ///
    /// Transport or server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// The server's dataset names.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn datasets(&mut self) -> Result<Vec<String>, ClientError> {
        self.datasets_info().map(|reply| reply.names)
    }

    /// The full catalog view: served dataset names, per-dataset detail,
    /// and on-disk datasets available to attach.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn datasets_info(&mut self) -> Result<DatasetsReply, ClientError> {
        match self.request(&Request::Datasets)? {
            Response::Datasets(reply) => Ok(reply),
            other => Err(Self::unexpected("datasets", &other)),
        }
    }

    /// Attaches (or hot-reloads) a store dataset into serving. Admin op:
    /// the server must run with `--allow-admin`.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors (including `admin` when the
    /// server has admin ops disabled and `store` for catalog failures).
    pub fn attach(&mut self, dataset: &str) -> Result<AttachOutcome, ClientError> {
        let request = Request::Attach {
            dataset: dataset.to_string(),
        };
        match self.request(&request)? {
            Response::Attached(outcome) => Ok(outcome),
            other => Err(Self::unexpected("attach", &other)),
        }
    }

    /// Detaches a served dataset (its spent budget is retained for
    /// re-attach). Admin op: the server must run with `--allow-admin`.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn detach(&mut self, dataset: &str) -> Result<(), ClientError> {
        let request = Request::Detach {
            dataset: dataset.to_string(),
        };
        match self.request(&request)? {
            Response::Detached { .. } => Ok(()),
            other => Err(Self::unexpected("detach", &other)),
        }
    }

    /// Asks the server to ingest a CSV file from its local filesystem
    /// into the store. Admin op: the server must run with
    /// `--allow-admin`. Returns `(dataset, rows)`.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn ingest(
        &mut self,
        path: &str,
        dataset: Option<&str>,
    ) -> Result<(String, u64), ClientError> {
        let request = Request::Ingest {
            path: path.to_string(),
            dataset: dataset.map(str::to_string),
        };
        match self.request(&request)? {
            Response::Ingested { dataset, rows, .. } => Ok((dataset, rows)),
            other => Err(Self::unexpected("ingest", &other)),
        }
    }

    /// Runs phases 1–3 server-side (or coalesces onto shared state).
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn prepare(
        &mut self,
        dataset: &str,
        query: &str,
        column: &str,
    ) -> Result<PrepareReply, ClientError> {
        let request = Request::Prepare {
            dataset: dataset.to_string(),
            query: Self::parse_kind(query)?,
            column: column.to_string(),
        };
        match self.request(&request)? {
            Response::Prepared(info) => Ok(PrepareReply {
                query_id: info.query_id,
                sample_size: info.sample_size,
                cached: info.cached,
            }),
            other => Err(Self::unexpected("prepare", &other)),
        }
    }

    /// Releases one differentially private answer.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors (including `budget`
    /// refusals).
    pub fn release(
        &mut self,
        dataset: &str,
        query: &str,
        column: &str,
        epsilon: Option<f64>,
        want_audit: bool,
    ) -> Result<ReleaseReply, ClientError> {
        self.release_with_deadline(dataset, query, column, epsilon, want_audit, None)
    }

    /// Like [`Client::release`], but asks the server to shed the request
    /// with a `deadline` error if it cannot be served within
    /// `deadline_ms` of arrival (a shed request charges no budget).
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors (including `deadline`).
    pub fn release_with_deadline(
        &mut self,
        dataset: &str,
        query: &str,
        column: &str,
        epsilon: Option<f64>,
        want_audit: bool,
        deadline_ms: Option<u64>,
    ) -> Result<ReleaseReply, ClientError> {
        let request = Request::Release {
            dataset: dataset.to_string(),
            query: Self::parse_kind(query)?,
            column: column.to_string(),
            epsilon,
            audit: want_audit,
            deadline_ms,
        };
        match self.request(&request)? {
            Response::Released(outcome) => Ok(ReleaseReply {
                query_id: outcome.query_id,
                released: outcome.released,
                epsilon: outcome.epsilon,
                noise_scale: outcome.noise_scale,
                sample_size: outcome.sample_size,
                budget_remaining: outcome.budget_remaining,
                cached: outcome.cached,
                prepare_us: outcome.prepare_us,
                audit: outcome.audit,
            }),
            other => Err(Self::unexpected("release", &other)),
        }
    }

    /// The dataset's budget (`None` when the server is unmetered).
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn budget(&mut self, dataset: &str) -> Result<Option<BudgetReply>, ClientError> {
        let request = Request::Budget {
            dataset: dataset.to_string(),
        };
        match self.request(&request)? {
            Response::Budget { budget, .. } => {
                Ok(budget.map(|(total, spent, remaining)| BudgetReply {
                    total,
                    spent,
                    remaining,
                }))
            }
            other => Err(Self::unexpected("budget", &other)),
        }
    }

    /// The most recent `last` audits of the dataset, oldest first.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn audits(
        &mut self,
        dataset: &str,
        last: Option<usize>,
    ) -> Result<Vec<QueryAudit>, ClientError> {
        let request = Request::Audit {
            dataset: dataset.to_string(),
            last: last.map(|n| n as u64),
        };
        match self.request(&request)? {
            Response::Audits { audits, .. } => Ok(audits),
            other => Err(Self::unexpected("audit", &other)),
        }
    }

    /// The server's scheduler counters, uptime, and snapshot sequence.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::unexpected("stats", &other)),
        }
    }

    /// The server's metrics scrape: Prometheus-style text exposition
    /// plus the structured snapshot it was rendered from.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn metrics(&mut self) -> Result<MetricsReply, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(reply) => Ok(reply),
            other => Err(Self::unexpected("metrics", &other)),
        }
    }

    /// Finished request traces: the one with `id`, or the most recent
    /// `last` (default 1), oldest first.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn traces(
        &mut self,
        id: Option<&str>,
        last: Option<u64>,
    ) -> Result<Vec<TraceRecord>, ClientError> {
        let request = Request::Trace {
            id: id.map(str::to_string),
            last,
        };
        match self.request(&request)? {
            Response::Traces(traces) => Ok(traces),
            other => Err(Self::unexpected("trace", &other)),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Transport, decode, or server errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{MetricsSnapshot, StageSpan};

    fn sample_audit() -> QueryAudit {
        QueryAudit {
            query: "mean".to_string(),
            epsilon: 0.25,
            budget_remaining: Some(0.5),
            sensitivity: vec![1.5, 2.0],
            range: vec![(0.0, 10.0), (-1.0, 1.0)],
            clamped: true,
            attack_detected: false,
            removed_records: 3,
            sample_size: 200,
            group_size: 1,
            spans: vec![
                StageSpan {
                    name: "prepare".into(),
                    path: "prepare".into(),
                    depth: 0,
                    nanos: 12_345,
                    records: 200,
                    calls: 1,
                },
                StageSpan {
                    name: "sample".into(),
                    path: "prepare/sample".into(),
                    depth: 1,
                    nanos: 2_345,
                    records: 200,
                    calls: 2,
                },
            ],
            engine: MetricsSnapshot {
                stages: 4,
                tasks: 16,
                task_retries: 1,
                shuffles: 2,
                shuffle_records: 800,
                shuffle_bytes: 6_400,
                records_processed: 1_600,
            },
            total_nanos: 12_345,
        }
    }

    #[test]
    fn audit_round_trips_through_json() {
        let original = sample_audit();
        let parsed = wire::parse(&original.to_json()).expect("to_json parses");
        let rebuilt = audit_from_json(&parsed).expect("audit reconstructs");
        // The shared renderer is the contract: remote audits must render
        // identically to local ones.
        assert_eq!(rebuilt.render(), original.render());
        assert_eq!(rebuilt.query, original.query);
        assert_eq!(rebuilt.epsilon, original.epsilon);
        assert_eq!(rebuilt.budget_remaining, original.budget_remaining);
        assert_eq!(rebuilt.sensitivity, original.sensitivity);
        assert_eq!(rebuilt.range, original.range);
        assert_eq!(rebuilt.spans.len(), original.spans.len());
        assert_eq!(rebuilt.engine.shuffle_bytes, original.engine.shuffle_bytes);
        assert_eq!(rebuilt.total_nanos, original.total_nanos);
    }

    #[test]
    fn truncated_audit_is_rejected_not_zeroed() {
        let parsed = wire::parse(r#"{"query":"count","epsilon":0.1}"#).unwrap();
        assert!(audit_from_json(&parsed).is_none());
    }

    #[test]
    fn builder_defaults_match_the_v1_shim() {
        let b = Client::builder();
        assert_eq!(b.retry_busy, 0);
        assert!(b.connect_timeout.is_none());
        assert!(b.read_timeout.is_none());
    }
}
