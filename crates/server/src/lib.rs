//! `upa-server` — a concurrent query-serving daemon for the UPA
//! pipeline with a crash-safe privacy-budget ledger.
//!
//! The library turns the single-process [`upa_core::Upa`] engine into a
//! long-running service, std-only (no async runtime, no serde — the
//! protocol is hand-rolled line-delimited JSON over `std::net` TCP):
//!
//! * [`server::Server`] — accept loop, thread-per-connection workers,
//!   graceful draining shutdown;
//! * [`state::ServerState`] — the shared serving state: per-dataset
//!   engines, a cross-connection prepared-query cache (repeat releases
//!   are zero-stage), per-dataset budget accountants, and admission
//!   control for connections and in-flight prepares;
//! * [`ledger::Ledger`] — the append-only, fsync-before-release spend
//!   log that makes budget accounting survive `SIGKILL`;
//! * [`client::Client`] — the typed protocol client, including
//!   [`client::audit_from_json`] so remote audits render through the
//!   same [`upa_core::QueryAudit::render`] as local ones;
//! * [`wire`] — the minimal JSON parser/printer behind both ends.
//!
//! The crate ships one binary, `upa-serverd`, used by the integration
//! tests (SIGKILL crash-recovery) and wrapped by `upa-cli serve`.

pub mod client;
pub mod ledger;
pub mod server;
pub mod state;
pub mod wire;

pub use client::{audit_from_json, BudgetReply, Client, ClientError, PrepareReply, ReleaseReply};
pub use ledger::{Ledger, SpendRecord};
pub use server::{Server, ShutdownHandle};
pub use state::{AggKind, DatasetSpec, ReleaseFault, ServeError, ServerConfig, ServerState};
