//! `upa-server` — a concurrent query-serving daemon for the UPA
//! pipeline with a crash-safe privacy-budget ledger.
//!
//! The library turns the single-process [`upa_core::Upa`] engine into a
//! long-running service, std-only (no async runtime, no serde — the
//! protocol is hand-rolled line-delimited JSON over `std::net` TCP):
//!
//! * [`server::Server`] — accept loop, thread-per-connection workers,
//!   graceful draining shutdown;
//! * [`sched::Scheduler`] — the scheduling layer between connections
//!   and the serving state: per-dataset bounded queues drained
//!   round-robin by a worker pool, single-flight request coalescing
//!   (concurrent identical queries share one prepare while each draws
//!   its own noisy release), and `deadline_ms` shedding;
//! * [`state::ServerState`] — the shared serving state: per-dataset
//!   engines, a cross-connection LRU prepared-query cache (repeat
//!   releases are zero-stage and skip the scheduler entirely — the
//!   zero-queue fast path), and lock-free sharded budget accounting
//!   ([`state::AtomicBudget`]);
//! * [`ledger::Ledger`] — the append-only, checksummed,
//!   fsync-before-release spend log that makes budget accounting
//!   survive `SIGKILL`, fronted by the group-committing
//!   [`ledger::GroupCommitLedger`] so concurrent releases share one
//!   fsync;
//! * [`proto`] — the typed wire protocol: [`proto::Request`],
//!   [`proto::Response`], and the closed [`proto::ErrorCode`] set
//!   shared by both sides;
//! * [`obs`] — server-wide observability: the metrics registry
//!   (counters, gauges, log-linear latency histograms), per-request
//!   traces with engine-span grafting, and the structured JSON event
//!   log behind the `metrics`/`trace` wire ops;
//! * [`client::Client`] — the protocol client, with
//!   [`client::Client::builder`] for timeouts and jittered retry on
//!   `busy`;
//! * [`wire`] — the minimal JSON parser/printer behind both ends.
//!
//! The crate ships one binary, `upa-serverd`, used by the integration
//! tests (SIGKILL crash-recovery, saturation) and wrapped by
//! `upa-cli serve`.

pub mod client;
pub mod ledger;
pub mod obs;
pub mod proto;
pub mod sched;
pub mod server;
pub mod state;
pub mod wire;

pub use client::{BudgetReply, Client, ClientBuilder, ClientError, PrepareReply, ReleaseReply};
pub use ledger::{GroupCommitLedger, Ledger, LedgerObs, SpendRecord};
pub use obs::{HistogramSnapshot, Obs, RegistrySnapshot, Trace, TraceRecord, TraceStore};
pub use proto::{
    audit_from_json, DatasetsReply, ErrorCode, MetricsReply, PreparedInfo, Request, Response,
    StatsReply,
};
pub use sched::{JobOp, JobOutput, SchedStats, Scheduler, SchedulerHandle};
pub use server::{Server, ShutdownHandle};
pub use state::{
    AggKind, AtomicBudget, AttachOutcome, DatasetInfo, DatasetSpec, ReleaseFault, ServeError,
    ServerConfig, ServerState,
};
