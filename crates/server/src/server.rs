//! The TCP daemon: accept loop, per-connection workers, protocol
//! dispatch and graceful shutdown.
//!
//! # Threading model
//!
//! One acceptor thread (the caller of [`Server::run`]) and one worker
//! thread per admitted connection, all sharing an
//! `Arc<`[`ServerState`]`>`. A connection handles any number of
//! requests, one line-delimited JSON object each (see [`crate::wire`]).
//!
//! # Shutdown
//!
//! The `shutdown` op (or [`Server::shutdown_handle`]) flags the state as
//! draining and wakes the acceptor with a loopback connection. The
//! acceptor stops admitting, then joins every worker — in-flight
//! releases run to completion, so a drained shutdown never strands a
//! ledgered spend that could still be delivered.

use crate::state::{AggKind, ReleaseOutcome, ServeError, ServerConfig, ServerState};
use crate::wire::{self, Json};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// builds the shared state — including the ledger replay, so a
    /// bind against an existing ledger restores every durable spend
    /// before the first connection is admitted.
    ///
    /// # Errors
    ///
    /// Bind or ledger I/O failures.
    pub fn bind(config: ServerConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(config)?);
        Ok(Server {
            listener,
            state,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and in-process embedding).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// Serves until shutdown, then drains in-flight connections.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failures (individual connection errors are
    /// contained in their workers).
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.is_shutting_down() {
                // The waking connection (or any late arrival) is dropped
                // unanswered; admitted connections keep draining below.
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            workers.retain(|w| !w.is_finished());
            let guard = match self.state.admit_connection() {
                Ok(guard) => guard,
                Err(err) => {
                    // Over the cap (or draining): answer with the error
                    // and close — the bounded-backlog half of admission
                    // control.
                    let mut s = stream;
                    let _ = s.write_all(error_line(&err).as_bytes());
                    continue;
                }
            };
            let state = Arc::clone(&self.state);
            let addr = self.addr;
            workers.push(std::thread::spawn(move || {
                let _guard = guard;
                if let Err(e) = serve_connection(stream, &state, addr) {
                    // Client went away mid-request; nothing to clean up —
                    // budget durability was settled before any reply.
                    let _ = e;
                }
            }));
        }
        // Drain: every admitted connection finishes its in-flight work.
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Requests shutdown of a running [`Server`] from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flags the server as draining and wakes its acceptor.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
        // Wake the blocking accept; the connection itself is discarded.
        let _ = TcpStream::connect(self.addr);
    }
}

fn error_line(err: &ServeError) -> String {
    format!(
        "{{\"ok\":false,\"code\":{},\"error\":{}}}\n",
        wire::json_str(err.code()),
        wire::json_str(&err.to_string())
    )
}

/// Serves one connection until EOF or `shutdown`.
fn serve_connection(
    stream: TcpStream,
    state: &Arc<ServerState>,
    self_addr: SocketAddr,
) -> io::Result<()> {
    // Idle connections wake periodically so a draining shutdown is not
    // held hostage by a client that keeps its socket open silently;
    // in-flight requests (which are past `read_line`) still complete.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // On timeout `line` keeps any partial bytes already received —
        // the next pass resumes the same line.
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.is_shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        let (reply, is_shutdown) = respond(trimmed, state);
        line.clear();
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            state.begin_shutdown();
            let _ = TcpStream::connect(self_addr); // wake the acceptor
            return Ok(());
        }
    }
}

/// Dispatches one request line; returns the reply line and whether the
/// request was a shutdown.
fn respond(line: &str, state: &Arc<ServerState>) -> (String, bool) {
    let request = match wire::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_line(&ServeError::BadRequest(e.to_string())), false),
    };
    let op = request.str_of("op").unwrap_or("");
    if state.is_shutting_down() && op != "ping" {
        return (error_line(&ServeError::ShuttingDown), false);
    }
    match op {
        "ping" => ("{\"ok\":true}\n".to_string(), false),
        "datasets" => {
            let names = state
                .dataset_names()
                .iter()
                .map(|n| wire::json_str(n))
                .collect::<Vec<_>>()
                .join(",");
            (format!("{{\"ok\":true,\"datasets\":[{names}]}}\n"), false)
        }
        "prepare" => (
            handle_prepare(&request, state).unwrap_or_else(|e| error_line(&e)),
            false,
        ),
        "release" => (
            handle_release(&request, state).unwrap_or_else(|e| error_line(&e)),
            false,
        ),
        "budget" => (
            handle_budget(&request, state).unwrap_or_else(|e| error_line(&e)),
            false,
        ),
        "audit" => (
            handle_audit(&request, state).unwrap_or_else(|e| error_line(&e)),
            false,
        ),
        "shutdown" => ("{\"ok\":true,\"draining\":true}\n".to_string(), true),
        other => (
            error_line(&ServeError::BadRequest(format!(
                "unknown op '{other}' (ping|datasets|prepare|release|budget|audit|shutdown)"
            ))),
            false,
        ),
    }
}

fn query_fields(request: &Json) -> Result<(String, AggKind, String), ServeError> {
    let dataset = request.str_of("dataset").unwrap_or("data").to_string();
    let kind: AggKind = request
        .str_of("query")
        .ok_or_else(|| ServeError::BadRequest("missing 'query'".into()))?
        .parse()
        .map_err(ServeError::BadRequest)?;
    let column = request.str_of("column").unwrap_or("").to_string();
    if kind != AggKind::Count && column.is_empty() {
        return Err(ServeError::BadRequest(
            "'column' is required for sum/mean".into(),
        ));
    }
    Ok((dataset, kind, column))
}

fn handle_prepare(request: &Json, state: &Arc<ServerState>) -> Result<String, ServeError> {
    let (dataset, kind, column) = query_fields(request)?;
    let (prepared, query_id, cached) = state.prepare(&dataset, kind, &column)?;
    Ok(format!(
        "{{\"ok\":true,\"query_id\":{},\"sample_size\":{},\"cached\":{}}}\n",
        wire::json_str(&query_id),
        prepared.sample_size(),
        cached
    ))
}

fn handle_release(request: &Json, state: &Arc<ServerState>) -> Result<String, ServeError> {
    let (dataset, kind, column) = query_fields(request)?;
    let epsilon = request.num_of("epsilon");
    let want_audit = request.bool_of("audit").unwrap_or(false);
    let outcome = state.release(&dataset, kind, &column, epsilon, want_audit)?;
    Ok(release_line(&outcome))
}

fn release_line(outcome: &ReleaseOutcome) -> String {
    let mut s = format!(
        "{{\"ok\":true,\"query_id\":{},\"released\":{},\"epsilon\":{},\"noise_scale\":{},\"sample_size\":{}",
        wire::json_str(&outcome.query_id),
        wire::json_num(outcome.released),
        wire::json_num(outcome.epsilon),
        wire::json_num(outcome.noise_scale),
        outcome.sample_size
    );
    match outcome.budget_remaining {
        Some(rem) => s.push_str(&format!(",\"budget_remaining\":{}", wire::json_num(rem))),
        None => s.push_str(",\"budget_remaining\":null"),
    }
    if let Some(audit) = &outcome.audit {
        s.push_str(",\"audit\":");
        s.push_str(&audit.to_json());
    }
    s.push_str("}\n");
    s
}

fn handle_budget(request: &Json, state: &Arc<ServerState>) -> Result<String, ServeError> {
    let dataset = request.str_of("dataset").unwrap_or("data");
    let budget = state.budget_of(dataset)?;
    Ok(match budget {
        Some((total, spent, remaining)) => format!(
            "{{\"ok\":true,\"dataset\":{},\"total\":{},\"spent\":{},\"remaining\":{}}}\n",
            wire::json_str(dataset),
            wire::json_num(total),
            wire::json_num(spent),
            wire::json_num(remaining)
        ),
        None => format!(
            "{{\"ok\":true,\"dataset\":{},\"total\":null,\"spent\":null,\"remaining\":null}}\n",
            wire::json_str(dataset)
        ),
    })
}

fn handle_audit(request: &Json, state: &Arc<ServerState>) -> Result<String, ServeError> {
    let dataset = request.str_of("dataset").unwrap_or("data");
    let last = request
        .get("last")
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX) as usize;
    let audits = state.audits_json(dataset, last)?;
    Ok(format!(
        "{{\"ok\":true,\"dataset\":{},\"audits\":[{}]}}\n",
        wire::json_str(dataset),
        audits.join(",")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DatasetSpec;

    fn respond_str(line: &str, state: &Arc<ServerState>) -> Json {
        let (reply, _) = respond(line, state);
        wire::parse(reply.trim()).expect("reply is valid JSON")
    }

    fn test_state() -> Arc<ServerState> {
        Arc::new(
            ServerState::new(ServerConfig {
                datasets: vec![DatasetSpec::synthetic("data", 1_500, 7)],
                budget: Some(1.0),
                epsilon: 0.2,
                sample_size: 30,
                threads: 2,
                ..ServerConfig::default()
            })
            .unwrap(),
        )
    }

    #[test]
    fn dispatch_covers_the_protocol_surface() {
        let state = test_state();
        assert_eq!(
            respond_str(r#"{"op":"ping"}"#, &state).bool_of("ok"),
            Some(true)
        );
        let ds = respond_str(r#"{"op":"datasets"}"#, &state);
        assert_eq!(ds.get("datasets").unwrap().as_arr().unwrap().len(), 1);

        let p = respond_str(
            r#"{"op":"prepare","dataset":"data","query":"sum","column":"v"}"#,
            &state,
        );
        assert_eq!(p.str_of("query_id"), Some("data/sum/v"));
        assert_eq!(p.bool_of("cached"), Some(false));
        assert_eq!(p.num_of("sample_size"), Some(30.0));

        let r = respond_str(
            r#"{"op":"release","dataset":"data","query":"sum","column":"v","audit":true}"#,
            &state,
        );
        assert_eq!(r.bool_of("ok"), Some(true));
        assert!(r.num_of("released").is_some());
        assert!((r.num_of("budget_remaining").unwrap() - 0.8).abs() < 1e-9);
        assert_eq!(r.get("audit").unwrap().str_of("query"), Some("sum"));

        let b = respond_str(r#"{"op":"budget","dataset":"data"}"#, &state);
        assert!((b.num_of("spent").unwrap() - 0.2).abs() < 1e-9);

        let a = respond_str(r#"{"op":"audit","dataset":"data"}"#, &state);
        assert_eq!(a.get("audits").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn dispatch_rejects_malformed_requests() {
        let state = test_state();
        for (line, code) in [
            ("not json", "bad_request"),
            (r#"{"op":"mystery"}"#, "bad_request"),
            (r#"{"op":"release"}"#, "bad_request"),
            (r#"{"op":"release","query":"sum"}"#, "bad_request"),
            (
                r#"{"op":"release","dataset":"x","query":"count"}"#,
                "unknown_dataset",
            ),
            (r#"{"op":"budget","dataset":"x"}"#, "unknown_dataset"),
        ] {
            let reply = respond_str(line, &state);
            assert_eq!(reply.bool_of("ok"), Some(false), "{line}");
            assert_eq!(reply.str_of("code"), Some(code), "{line}");
        }
    }

    #[test]
    fn shutdown_op_flags_and_refuses_new_work() {
        let state = test_state();
        let (reply, is_shutdown) = respond(r#"{"op":"shutdown"}"#, &state);
        assert!(reply.contains("\"draining\":true"));
        assert!(is_shutdown);
        state.begin_shutdown();
        let refused = respond_str(r#"{"op":"release","query":"count"}"#, &state);
        assert_eq!(refused.str_of("code"), Some("shutting_down"));
        // Health checks still answer while draining.
        assert_eq!(
            respond_str(r#"{"op":"ping"}"#, &state).bool_of("ok"),
            Some(true)
        );
    }
}
