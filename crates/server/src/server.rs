//! The TCP daemon: accept loop, per-connection workers, protocol
//! dispatch and graceful shutdown.
//!
//! # Threading model
//!
//! One acceptor thread (the caller of [`Server::run`]) and one worker
//! thread per admitted connection, all sharing an
//! `Arc<`[`ServerState`]`>`. A connection handles any number of
//! requests, one line-delimited JSON object each (see [`crate::wire`]).
//!
//! # The zero-queue fast path
//!
//! A release whose `(dataset, aggregate, column)` prepare is already
//! cached skips the scheduler entirely: the connection thread reserves
//! budget against the dataset's lock-free shard, submits its spend to
//! the group-commit ledger, draws the Laplace sample and replies —
//! microseconds of server work plus one *shared* fsync. Only cache-miss
//! prepares (and requests carrying a `deadline_ms`, which opt into
//! queue-aware shedding) are submitted to the [`Scheduler`]'s
//! per-dataset queues and served by its worker pool, which coalesces
//! identical queries and sheds expired deadlines (see [`crate::sched`]).
//!
//! # Shutdown
//!
//! The `shutdown` op (or [`Server::shutdown_handle`]) flags the state as
//! draining and wakes the acceptor with a loopback connection. The
//! acceptor stops admitting, joins every connection worker — in-flight
//! releases run to completion, so a drained shutdown never strands a
//! ledgered spend that could still be delivered — and only then drains
//! the scheduler pool.

use crate::obs::{Level, RegistrySnapshot, Trace, Value};
use crate::proto::{
    DatasetsReply, ErrorCode, MetricsReply, PreparedInfo, Request, Response, StatsReply,
};
use crate::sched::{JobOp, JobOutput, Scheduler, SchedulerHandle};
use crate::state::{ServeError, ServerConfig, ServerState};
use crate::wire;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    sched: SchedulerHandle,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// builds the shared state — including the ledger replay, so a
    /// bind against an existing ledger restores every durable spend
    /// before the first connection is admitted — plus the scheduler
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Bind or ledger I/O failures.
    pub fn bind(config: ServerConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(config)?);
        let sched = Scheduler::start(Arc::clone(&state));
        Ok(Server {
            listener,
            state,
            sched,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and in-process embedding).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// The scheduling core (tests and in-process embedding).
    pub fn scheduler(&self) -> Arc<Scheduler> {
        self.sched.scheduler()
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// Serves until shutdown, then drains in-flight connections and the
    /// scheduler pool.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failures (individual connection errors are
    /// contained in their workers).
    pub fn run(mut self) -> io::Result<()> {
        let sched = self.sched.scheduler();
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.is_shutting_down() {
                // The waking connection (or any late arrival) is dropped
                // unanswered; admitted connections keep draining below.
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            workers.retain(|w| !w.is_finished());
            let guard = match self.state.admit_connection() {
                Ok(guard) => guard,
                Err(err) => {
                    // Over the cap (or draining): answer with the error
                    // and close — the bounded-backlog half of admission
                    // control.
                    let mut s = stream;
                    let _ = s.write_all(error_line(&err).as_bytes());
                    continue;
                }
            };
            let state = Arc::clone(&self.state);
            let sched = Arc::clone(&sched);
            let addr = self.addr;
            workers.push(std::thread::spawn(move || {
                let _guard = guard;
                if let Err(e) = serve_connection(stream, &state, &sched, addr) {
                    // Client went away mid-request; nothing to clean up —
                    // budget durability was settled before any reply.
                    let _ = e;
                }
            }));
        }
        // Drain: every admitted connection finishes its in-flight work
        // (the scheduler must still be running for their submits to
        // complete), then the scheduler pool itself winds down.
        for w in workers {
            let _ = w.join();
        }
        self.sched.drain();
        Ok(())
    }
}

/// Requests shutdown of a running [`Server`] from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flags the server as draining and wakes its acceptor.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
        // Wake the blocking accept; the connection itself is discarded.
        let _ = TcpStream::connect(self.addr);
    }
}

fn error_line(err: &ServeError) -> String {
    Response::from(err).to_line()
}

/// Serves one connection until EOF or `shutdown`.
fn serve_connection(
    stream: TcpStream,
    state: &Arc<ServerState>,
    sched: &Arc<Scheduler>,
    self_addr: SocketAddr,
) -> io::Result<()> {
    // Idle connections wake periodically so a draining shutdown is not
    // held hostage by a client that keeps its socket open silently;
    // in-flight requests (which are past `read_line`) still complete.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    // Replies are small and latency-bound; never let Nagle hold one back
    // for a delayed ACK. (Each reply is a single buffered write anyway.)
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    // One reply buffer for the connection's lifetime: replies serialize
    // into it in place, so the steady-state release path allocates
    // nothing on the reply side.
    let mut reply = String::new();
    loop {
        // On timeout `line` keeps any partial bytes already received —
        // the next pass resumes the same line.
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.is_shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        reply.clear();
        let is_shutdown = respond(trimmed, state, sched, &mut reply);
        line.clear();
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            state.begin_shutdown();
            let _ = TcpStream::connect(self_addr); // wake the acceptor
            return Ok(());
        }
    }
}

/// The `upa_requests_total` label for a decoded request.
fn op_name(r: &Request) -> &'static str {
    match r {
        Request::Ping => "ping",
        Request::Datasets => "datasets",
        Request::Prepare { .. } => "prepare",
        Request::Release { .. } => "release",
        Request::Budget { .. } => "budget",
        Request::Audit { .. } => "audit",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Trace { .. } => "trace",
        Request::Ingest { .. } => "ingest",
        Request::Attach { .. } => "attach",
        Request::Detach { .. } => "detach",
        Request::Shutdown => "shutdown",
    }
}

/// Composes the `metrics` scrape: the registry's live snapshot plus
/// values computed at scrape time — scheduler counters
/// (`upa_sched_*`), per-dataset budget gauges
/// (`upa_budget_epsilon_{total,spent,remaining}{dataset="…"}`), uptime,
/// and connection/cache occupancy.
fn scrape(state: &Arc<ServerState>, sched: &Arc<Scheduler>) -> RegistrySnapshot {
    let obs = state.obs();
    let mut snap = obs.registry().snapshot();
    let s = sched.stats();
    for (name, v) in [
        ("upa_sched_submitted_total", s.submitted),
        ("upa_sched_completed_total", s.completed),
        ("upa_sched_prepares_total", s.prepares),
        ("upa_sched_coalesced_total", s.coalesced),
        ("upa_sched_shed_deadline_total", s.shed_deadline),
        ("upa_sched_busy_rejected_total", s.busy_rejected),
        ("upa_sched_batches_total", s.batches),
    ] {
        snap.counters.insert(name.to_string(), v);
    }
    for (name, v) in [
        ("upa_sched_queued", s.queued as f64),
        ("upa_sched_peak_queued", s.peak_queued as f64),
        ("upa_sched_peak_batch", s.peak_batch as f64),
        ("upa_uptime_seconds", obs.uptime_seconds()),
        ("upa_connections_active", state.active_connections() as f64),
        ("upa_prepared_cache_entries", state.prepared_len() as f64),
    ] {
        snap.gauges.insert(name.to_string(), v);
    }
    for (dataset, total, spent, remaining) in state.budgets() {
        for (what, v) in [("total", total), ("spent", spent), ("remaining", remaining)] {
            snap.gauges.insert(
                format!("upa_budget_epsilon_{what}{{dataset=\"{dataset}\"}}"),
                v,
            );
        }
    }
    if let Some(catalog) = state.catalog() {
        snap.gauges.insert(
            "upa_store_datasets".to_string(),
            catalog.attached_count() as f64,
        );
        snap.gauges.insert(
            "upa_store_resident_bytes".to_string(),
            catalog.resident_bytes() as f64,
        );
    }
    snap
}

/// Dispatches one request line, appending the reply line to `reply`;
/// returns whether the request was a shutdown.
fn respond(
    line: &str,
    state: &Arc<ServerState>,
    sched: &Arc<Scheduler>,
    reply: &mut String,
) -> bool {
    let obs = Arc::clone(state.obs());
    let parsed = match wire::parse(line) {
        Ok(v) => v,
        Err(e) => {
            obs.m.count_request("invalid");
            obs.m.count_error(ErrorCode::BadRequest);
            Response::from(&ServeError::BadRequest(e.to_string())).write_line(reply);
            return false;
        }
    };
    let request = match Request::from_json(&parsed) {
        Ok(r) => r,
        Err(msg) => {
            obs.m.count_request("invalid");
            obs.m.count_error(ErrorCode::BadRequest);
            Response::from(&ServeError::BadRequest(msg)).write_line(reply);
            return false;
        }
    };
    let op = op_name(&request);
    obs.m.count_request(op);
    // Health checks and observability still answer while draining;
    // everything else is refused.
    if state.is_shutting_down()
        && !matches!(
            request,
            Request::Ping | Request::Stats | Request::Metrics | Request::Trace { .. }
        )
    {
        obs.m.count_error(ErrorCode::ShuttingDown);
        Response::from(&ServeError::ShuttingDown).write_line(reply);
        return false;
    }
    // Prepare/release — the requests that move through the scheduler —
    // get a request ID and a trace; the scheduler and release path
    // record their spans into it.
    let trace = match &request {
        Request::Prepare { dataset, .. } | Request::Release { dataset, .. } => {
            Some(Trace::new(obs.next_request_id(), op, dataset.clone()))
        }
        _ => None,
    };
    let response = match request {
        Request::Ping => Response::Ok,
        Request::Datasets => Response::Datasets(DatasetsReply {
            names: state.dataset_names(),
            info: state.dataset_infos(),
            available: state.available_datasets(),
        }),
        Request::Prepare {
            dataset,
            query,
            column,
        } => match sched.submit(
            &dataset,
            query,
            &column,
            JobOp::Prepare,
            None,
            trace.clone(),
        ) {
            Ok(JobOutput::Prepared {
                query_id,
                sample_size,
                cached,
            }) => Response::Prepared(PreparedInfo {
                query_id,
                sample_size,
                cached,
            }),
            Ok(other) => Response::from(&ServeError::Pipeline(format!(
                "scheduler returned {other:?} for a prepare"
            ))),
            Err(e) => Response::from(&e),
        },
        Request::Release {
            dataset,
            query,
            column,
            epsilon,
            audit,
            deadline_ms,
        } => {
            // Zero-queue fast path: a cached prepare means phases 1–3
            // are paid for, so the release is served right here on the
            // connection thread — lock-free budget reserve, group-commit
            // fsync, one Laplace draw. Requests carrying a deadline opt
            // into queue-aware shedding and take the scheduler instead.
            let cached = if deadline_ms.is_none() {
                let hit = state.cached_prepared(&dataset, query, &column);
                if hit.is_some() {
                    obs.m.cache_hits.inc();
                } else {
                    obs.m.cache_misses.inc();
                }
                hit
            } else {
                None
            };
            match cached {
                Some(prepared) => {
                    obs.m.fastpath_hits.inc();
                    let query_id = ServerState::query_id(&dataset, query, &column);
                    match state.release_prepared_traced(
                        &dataset,
                        &query_id,
                        &prepared,
                        epsilon,
                        audit,
                        trace.as_ref(),
                    ) {
                        Ok(outcome) => Response::Released(Box::new(outcome)),
                        Err(e) => Response::from(&e),
                    }
                }
                None => match sched.submit(
                    &dataset,
                    query,
                    &column,
                    JobOp::Release {
                        epsilon,
                        want_audit: audit,
                    },
                    deadline_ms,
                    trace.clone(),
                ) {
                    Ok(JobOutput::Released(outcome)) => Response::Released(outcome),
                    Ok(other) => Response::from(&ServeError::Pipeline(format!(
                        "scheduler returned {other:?} for a release"
                    ))),
                    Err(e) => Response::from(&e),
                },
            }
        }
        Request::Budget { dataset } => match state.budget_of(&dataset) {
            Ok(budget) => Response::Budget { dataset, budget },
            Err(e) => Response::from(&e),
        },
        Request::Audit { dataset, last } => {
            match state.audits_of(&dataset, last.unwrap_or(u64::MAX) as usize) {
                Ok(audits) => Response::Audits { dataset, audits },
                Err(e) => Response::from(&e),
            }
        }
        Request::Stats => Response::Stats(StatsReply {
            sched: sched.stats(),
            uptime_seconds: obs.uptime_seconds(),
            seq: obs.next_stats_seq(),
        }),
        Request::Metrics => Response::Metrics(MetricsReply::new(scrape(state, sched))),
        Request::Trace { id, last } => {
            let traces = match id {
                Some(id) => obs.traces().find(&id).into_iter().collect(),
                None => obs.traces().recent(last.unwrap_or(1) as usize),
            };
            Response::Traces(traces)
        }
        Request::Ingest { path, dataset } => {
            if !state.config().allow_admin {
                Response::from(&ServeError::AdminDisabled)
            } else {
                let start = Instant::now();
                match state.ingest_csv_file(Path::new(&path), dataset.as_deref()) {
                    Ok(report) => {
                        obs.m.store_ingest.record_duration(start.elapsed());
                        Response::Ingested {
                            dataset: report.dataset,
                            rows: report.rows,
                            columns: report.columns,
                            chunks: report.chunks as u64,
                            bytes: report.bytes,
                        }
                    }
                    Err(e) => Response::from(&e),
                }
            }
        }
        Request::Attach { dataset } => {
            if !state.config().allow_admin {
                Response::from(&ServeError::AdminDisabled)
            } else {
                let start = Instant::now();
                match state.attach_dataset(&dataset) {
                    Ok(outcome) => {
                        obs.m.store_attach.record_duration(start.elapsed());
                        Response::Attached(outcome)
                    }
                    Err(e) => Response::from(&e),
                }
            }
        }
        Request::Detach { dataset } => {
            if !state.config().allow_admin {
                Response::from(&ServeError::AdminDisabled)
            } else {
                match state.detach_dataset(&dataset) {
                    Ok(()) => Response::Detached { dataset },
                    Err(e) => Response::from(&e),
                }
            }
        }
        Request::Shutdown => {
            Response::Draining.write_line(reply);
            return true;
        }
    };
    if let Response::Error { code, .. } = &response {
        obs.m.count_error(*code);
    }
    if let Some(t) = trace {
        let outcome = match &response {
            Response::Error { code, .. } => code.as_str().to_string(),
            _ => "ok".to_string(),
        };
        let record = t.finish(&outcome);
        if op == "release" {
            obs.m.release_latency.record(record.total_us);
        }
        let slow = obs
            .slow_query_us()
            .is_some_and(|threshold| record.total_us >= threshold);
        if slow {
            obs.m.slow_queries.inc();
            // A slow offender's log line carries its whole trace.
            obs.log().emit(
                Level::Warn,
                "slow_query",
                Some(&record.request_id),
                &[
                    ("op", Value::S(op.to_string())),
                    ("dataset", Value::S(record.dataset.clone())),
                    ("outcome", Value::S(outcome)),
                    ("total_us", Value::U(record.total_us)),
                    ("trace", Value::Raw(record.to_json())),
                ],
            );
        } else {
            obs.log().emit(
                Level::Info,
                "request_complete",
                Some(&record.request_id),
                &[
                    ("op", Value::S(op.to_string())),
                    ("dataset", Value::S(record.dataset.clone())),
                    ("outcome", Value::S(outcome)),
                    ("total_us", Value::U(record.total_us)),
                ],
            );
        }
        obs.traces().push(record);
    }
    response.write_line(reply);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DatasetSpec;
    use crate::wire::Json;

    struct Fixture {
        state: Arc<ServerState>,
        sched: Arc<Scheduler>,
        // Keeps the worker pool alive for the test's duration.
        _handle: SchedulerHandle,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture::with_config(ServerConfig {
                datasets: vec![DatasetSpec::synthetic("data", 1_500, 7)],
                budget: Some(1.0),
                epsilon: 0.2,
                sample_size: 30,
                threads: 2,
                ..ServerConfig::default()
            })
        }

        fn with_config(config: ServerConfig) -> Fixture {
            let state = Arc::new(ServerState::new(config).unwrap());
            let handle = Scheduler::start(Arc::clone(&state));
            Fixture {
                state,
                sched: handle.scheduler(),
                _handle: handle,
            }
        }

        fn respond_str(&self, line: &str) -> Json {
            let mut reply = String::new();
            respond(line, &self.state, &self.sched, &mut reply);
            wire::parse(reply.trim()).expect("reply is valid JSON")
        }
    }

    #[test]
    fn dispatch_covers_the_protocol_surface() {
        let fx = Fixture::new();
        assert_eq!(fx.respond_str(r#"{"op":"ping"}"#).bool_of("ok"), Some(true));
        let ds = fx.respond_str(r#"{"op":"datasets"}"#);
        assert_eq!(ds.get("datasets").unwrap().as_arr().unwrap().len(), 1);

        let p = fx.respond_str(r#"{"op":"prepare","dataset":"data","query":"sum","column":"v"}"#);
        assert_eq!(p.str_of("query_id"), Some("data/sum/v"));
        assert_eq!(p.bool_of("cached"), Some(false));
        assert_eq!(p.num_of("sample_size"), Some(30.0));

        let r = fx.respond_str(
            r#"{"op":"release","dataset":"data","query":"sum","column":"v","audit":true}"#,
        );
        assert_eq!(r.bool_of("ok"), Some(true));
        assert!(r.num_of("released").is_some());
        assert!((r.num_of("budget_remaining").unwrap() - 0.8).abs() < 1e-9);
        assert_eq!(r.get("audit").unwrap().str_of("query"), Some("sum"));

        let b = fx.respond_str(r#"{"op":"budget","dataset":"data"}"#);
        assert!((b.num_of("spent").unwrap() - 0.2).abs() < 1e-9);

        let a = fx.respond_str(r#"{"op":"audit","dataset":"data"}"#);
        assert_eq!(a.get("audits").unwrap().as_arr().unwrap().len(), 1);

        let s = fx.respond_str(r#"{"op":"stats"}"#);
        let sched = s.get("sched").unwrap();
        assert_eq!(sched.get("prepares").unwrap().as_u64(), Some(1));
        // The release found the prepare's cached state at dispatch and
        // took the zero-queue fast path — it never reached the
        // scheduler, so nothing coalesced.
        assert_eq!(sched.get("coalesced").unwrap().as_u64(), Some(0));
        assert_eq!(sched.get("submitted").unwrap().as_u64(), Some(1));
        let m = &fx.state.obs().m;
        assert_eq!(m.fastpath_hits.get(), 1);
        assert_eq!(m.cache_hits.get(), 1);
        assert_eq!(m.cache_misses.get(), 0);
    }

    #[test]
    fn deadline_releases_take_the_scheduler_even_when_cached() {
        let fx = Fixture::new();
        fx.respond_str(r#"{"op":"prepare","dataset":"data","query":"sum","column":"v"}"#);
        let r = fx.respond_str(
            r#"{"op":"release","dataset":"data","query":"sum","column":"v","deadline_ms":60000}"#,
        );
        assert_eq!(r.bool_of("ok"), Some(true));
        // A deadline opts into queue-aware shedding: the release went
        // through the scheduler (coalescing onto the cached state), not
        // the fast path.
        assert_eq!(fx.state.obs().m.fastpath_hits.get(), 0);
        let s = fx.respond_str(r#"{"op":"stats"}"#);
        let sched = s.get("sched").unwrap();
        assert_eq!(sched.get("submitted").unwrap().as_u64(), Some(2));
        assert_eq!(sched.get("coalesced").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn fastpath_release_spends_and_draws_fresh_noise() {
        let fx = Fixture::new();
        fx.respond_str(r#"{"op":"prepare","dataset":"data","query":"sum","column":"v"}"#);
        let a = fx
            .respond_str(r#"{"op":"release","dataset":"data","query":"sum","column":"v"}"#)
            .num_of("released")
            .unwrap();
        let b = fx
            .respond_str(r#"{"op":"release","dataset":"data","query":"sum","column":"v"}"#)
            .num_of("released")
            .unwrap();
        assert_ne!(a, b, "independent Laplace draws on the fast path");
        assert_eq!(fx.state.obs().m.fastpath_hits.get(), 2);
        // Both fast-path releases charged budget.
        let budget = fx.respond_str(r#"{"op":"budget","dataset":"data"}"#);
        assert!((budget.num_of("spent").unwrap() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn dispatch_rejects_malformed_requests() {
        let fx = Fixture::new();
        for (line, code) in [
            ("not json", "bad_request"),
            (r#"{"op":"mystery"}"#, "bad_request"),
            (r#"{"op":"release"}"#, "bad_request"),
            (r#"{"op":"release","query":"sum"}"#, "bad_request"),
            (
                r#"{"op":"release","dataset":"x","query":"count"}"#,
                "unknown_dataset",
            ),
            (r#"{"op":"budget","dataset":"x"}"#, "unknown_dataset"),
        ] {
            let reply = fx.respond_str(line);
            assert_eq!(reply.bool_of("ok"), Some(false), "{line}");
            assert_eq!(reply.str_of("code"), Some(code), "{line}");
        }
    }

    #[test]
    fn admin_ops_are_gated_behind_allow_admin() {
        // Default config: admin ops refused with the stable `admin` code
        // even when a store is configured.
        let dir = std::env::temp_dir().join(format!("upa_server_admin_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fx = Fixture::with_config(ServerConfig {
            datasets: vec![DatasetSpec::synthetic("data", 500, 7)],
            threads: 2,
            store_path: Some(dir.clone()),
            ..ServerConfig::default()
        });
        for line in [
            r#"{"op":"attach","dataset":"x"}"#,
            r#"{"op":"detach","dataset":"x"}"#,
            r#"{"op":"ingest","path":"/tmp/x.csv"}"#,
        ] {
            let reply = fx.respond_str(line);
            assert_eq!(reply.bool_of("ok"), Some(false), "{line}");
            assert_eq!(reply.str_of("code"), Some("admin"), "{line}");
        }

        // With --allow-admin the same ops reach the store layer.
        let fx = Fixture::with_config(ServerConfig {
            datasets: vec![],
            threads: 2,
            store_path: Some(dir.clone()),
            allow_admin: true,
            ..ServerConfig::default()
        });
        let csv = dir.join("tiny.csv");
        std::fs::write(&csv, "v\n1\n2\n3\n").unwrap();
        let ingested = fx.respond_str(&format!(r#"{{"op":"ingest","path":"{}"}}"#, csv.display()));
        assert_eq!(ingested.str_of("ingested"), Some("tiny"));
        assert_eq!(ingested.num_of("rows"), Some(3.0));

        let ds = fx.respond_str(r#"{"op":"datasets"}"#);
        assert_eq!(ds.get("datasets").unwrap().as_arr().unwrap().len(), 0);
        let avail = ds.get("available").unwrap().as_arr().unwrap();
        assert_eq!(avail.len(), 1, "published but unattached");

        let attached = fx.respond_str(r#"{"op":"attach","dataset":"tiny"}"#);
        assert_eq!(attached.str_of("attached"), Some("tiny"));
        assert_eq!(attached.num_of("rows"), Some(3.0));
        let r = fx.respond_str(r#"{"op":"release","dataset":"tiny","query":"count"}"#);
        assert_eq!(r.bool_of("ok"), Some(true));

        let detached = fx.respond_str(r#"{"op":"detach","dataset":"tiny"}"#);
        assert_eq!(detached.str_of("detached"), Some("tiny"));
        let gone = fx.respond_str(r#"{"op":"release","dataset":"tiny","query":"count"}"#);
        assert_eq!(gone.str_of("code"), Some("unknown_dataset"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_op_flags_and_refuses_new_work() {
        let fx = Fixture::new();
        let mut reply = String::new();
        let is_shutdown = respond(r#"{"op":"shutdown"}"#, &fx.state, &fx.sched, &mut reply);
        assert!(reply.contains("\"draining\":true"));
        assert!(is_shutdown);
        fx.state.begin_shutdown();
        let refused = fx.respond_str(r#"{"op":"release","query":"count"}"#);
        assert_eq!(refused.str_of("code"), Some("shutting_down"));
        // Health checks and counters still answer while draining.
        assert_eq!(fx.respond_str(r#"{"op":"ping"}"#).bool_of("ok"), Some(true));
        assert!(fx.respond_str(r#"{"op":"stats"}"#).get("sched").is_some());
    }
}
