//! The scheduling layer between connection handlers and
//! [`ServerState`]: bounded per-dataset queues, request coalescing, and
//! deadline shedding.
//!
//! # Why a scheduler
//!
//! The v1 daemon ran every request inline on its connection thread,
//! bounded only by a global prepare semaphore, and refused *any*
//! over-cap work with a hard `busy`. That wastes exactly the structure
//! UPA creates: a prepare is expensive (2n neighbour evaluations) but
//! *shared* — every release of the same query can draw its noisy sample
//! from one prepared state. So instead of N identical concurrent
//! releases paying N prepares (or N−1 of them queueing on a semaphore
//! just to discover the cache), the scheduler single-flights the
//! prepare and lets the other N−1 requests coalesce onto it, exactly
//! like an inference server batching identical prompts.
//!
//! # Lifecycle of a request
//!
//! ```text
//! submit ──► per-dataset bounded queue ──► worker pops (round-robin
//!   │ full?                                 across datasets)
//!   └──► busy                                 │ deadline expired?
//!                                             ├──► shed (`deadline`)
//!                                             ▼
//!                             batch: drain same-query jobs from the queue
//!                                             │
//!                             single-flight prepare (leader runs the
//!                             engine; everyone else coalesces)
//!                                             │
//!                             per job: re-check deadline, then charge
//!                             budget + draw an independent noisy sample
//! ```
//!
//! Fairness: workers scan datasets round-robin from a moving cursor, so
//! a hot dataset saturating its own queue cannot starve the others.
//! Backpressure: each dataset's queue is bounded
//! ([`crate::state::ServerConfig::queue_capacity`]); `busy` is returned
//! only when a queue is truly full, never merely because workers are
//! occupied.
//!
//! # Panic containment
//!
//! A panic while serving a job (the fault-injection tests panic inside
//! the release path deliberately) must not kill a pool worker or strand
//! the submitting connection. Workers catch the panic, keep draining,
//! and re-raise it on the *submitter's* thread — preserving the v1
//! observable behaviour (connection drops without a reply) while the
//! pool stays healthy.

use crate::obs::Trace;
use crate::state::{AggKind, PreparedAgg, ReleaseOutcome, ServeError, ServerState};
use crate::wire::Json;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a queued job should do once prepared state is in hand.
#[derive(Debug, Clone)]
pub enum JobOp {
    /// Phases 1–3 only (warm the cache).
    Prepare,
    /// Phases 1–4: a full noisy release.
    Release {
        /// Per-release ε override.
        epsilon: Option<f64>,
        /// Ask for the release's audit record.
        want_audit: bool,
    },
}

/// A completed job's payload.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// The prepare's identity and whether it coalesced.
    Prepared {
        /// Query identity.
        query_id: String,
        /// Effective sample size of the prepared state.
        sample_size: usize,
        /// `true` when served from the cache or another caller's
        /// prepare.
        cached: bool,
    },
    /// A released noisy answer (boxed: the audit payload dwarfs the
    /// `Prepared` variant).
    Released(Box<ReleaseOutcome>),
}

/// A point-in-time snapshot of the scheduler's counters, exported over
/// the `stats` op and recorded in `BENCH_SERVE.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Requests currently queued across every dataset.
    pub queued: u64,
    /// High-water mark of `queued`.
    pub peak_queued: u64,
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests completed (served, errored, or shed).
    pub completed: u64,
    /// Engine prepares actually run.
    pub prepares: u64,
    /// Requests that obtained prepared state without running their own
    /// prepare (cache hits, batch members, in-flight waiters).
    pub coalesced: u64,
    /// Requests shed because their deadline expired in the queue.
    pub shed_deadline: u64,
    /// Requests refused because their dataset's queue was full.
    pub busy_rejected: u64,
    /// Same-query batches drained from a queue.
    pub batches: u64,
    /// Largest single batch (occupancy high-water mark).
    pub peak_batch: u64,
}

impl SchedStats {
    /// The fraction of prepared-state acquisitions that coalesced
    /// instead of running the engine (0 when nothing ran).
    pub fn coalesce_rate(&self) -> f64 {
        let total = self.prepares + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.coalesced as f64 / total as f64
        }
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queued\":{},\"peak_queued\":{},\"submitted\":{},\"completed\":{},\
             \"prepares\":{},\"coalesced\":{},\"shed_deadline\":{},\"busy_rejected\":{},\
             \"batches\":{},\"peak_batch\":{}}}",
            self.queued,
            self.peak_queued,
            self.submitted,
            self.completed,
            self.prepares,
            self.coalesced,
            self.shed_deadline,
            self.busy_rejected,
            self.batches,
            self.peak_batch
        )
    }

    /// Parses the [`SchedStats::to_json`] form.
    ///
    /// # Errors
    ///
    /// A message naming the missing counter.
    pub fn from_json(v: &Json) -> Result<SchedStats, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats reply missing '{name}'"))
        };
        Ok(SchedStats {
            queued: field("queued")?,
            peak_queued: field("peak_queued")?,
            submitted: field("submitted")?,
            completed: field("completed")?,
            prepares: field("prepares")?,
            coalesced: field("coalesced")?,
            shed_deadline: field("shed_deadline")?,
            busy_rejected: field("busy_rejected")?,
            batches: field("batches")?,
            peak_batch: field("peak_batch")?,
        })
    }
}

#[derive(Default)]
struct Counters {
    peak_queued: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    prepares: AtomicU64,
    coalesced: AtomicU64,
    shed_deadline: AtomicU64,
    busy_rejected: AtomicU64,
    batches: AtomicU64,
    peak_batch: AtomicU64,
}

enum SlotState {
    Pending,
    Done(Box<Result<JobOutput, ServeError>>),
    /// The serving worker panicked; the message re-raises on the
    /// submitter's thread.
    Panicked(String),
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<JobOutput, ServeError>) {
        *self.state.lock().expect("slot poisoned") = SlotState::Done(Box::new(result));
        self.cv.notify_all();
    }

    fn complete_panicked(&self, message: String) {
        *self.state.lock().expect("slot poisoned") = SlotState::Panicked(message);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<JobOutput, ServeError> {
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Pending => state = self.cv.wait(state).expect("slot poisoned"),
                SlotState::Done(result) => return *result,
                SlotState::Panicked(message) => {
                    drop(state);
                    panic::panic_any(message);
                }
            }
        }
    }
}

struct Job {
    dataset: String,
    kind: AggKind,
    column: String,
    op: JobOp,
    deadline: Option<Instant>,
    /// When the job entered its queue — the start of its queue-wait span.
    enqueued: Instant,
    /// The submitting request's trace, when the connection opened one.
    trace: Option<Trace>,
    slot: Arc<Slot>,
}

impl Job {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    fn same_query(&self, other: &Job) -> bool {
        self.kind == other.kind && self.column == other.column
    }
}

struct QueueSet {
    queues: HashMap<String, VecDeque<Job>>,
    /// Sorted dataset names — the round-robin scan order.
    order: Vec<String>,
    /// Next dataset index to serve (fairness cursor).
    cursor: usize,
    /// Total queued jobs across datasets.
    queued: usize,
    shutdown: bool,
}

enum InflightState {
    Running,
    Done(Result<(Arc<PreparedAgg>, String), ServeError>),
}

/// One in-flight prepare other callers can coalesce onto.
struct Inflight {
    state: Mutex<InflightState>,
    cv: Condvar,
}

/// The scheduling core. Shared (via `Arc`) by the worker pool and every
/// connection handler; owned threads live in [`SchedulerHandle`].
pub struct Scheduler {
    state: Arc<ServerState>,
    queues: Mutex<QueueSet>,
    work_cv: Condvar,
    inflight: Mutex<HashMap<(String, AggKind, String), Arc<Inflight>>>,
    counters: Counters,
    capacity: usize,
}

/// Owns the worker pool; dropping (or [`SchedulerHandle::drain`])
/// finishes queued work and joins the workers.
pub struct SchedulerHandle {
    sched: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
}

impl SchedulerHandle {
    /// The shared scheduling core.
    pub fn scheduler(&self) -> Arc<Scheduler> {
        Arc::clone(&self.sched)
    }

    /// Stops accepting new submissions, serves everything already
    /// queued, and joins the workers. Idempotent.
    pub fn drain(&mut self) {
        {
            let mut qs = self.sched.queues.lock().expect("queues poisoned");
            qs.shutdown = true;
        }
        self.sched.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SchedulerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

impl Scheduler {
    /// Builds the per-dataset queues from `state`'s registered datasets
    /// and starts the worker pool (`max_inflight_prepares` workers,
    /// `queue_capacity` slots per dataset).
    pub fn start(state: Arc<ServerState>) -> SchedulerHandle {
        let workers = state.config().max_inflight_prepares.max(1);
        let capacity = state.config().queue_capacity.max(1);
        let order = state.dataset_names();
        let queues = order
            .iter()
            .map(|name| (name.clone(), VecDeque::new()))
            .collect();
        let sched = Arc::new(Scheduler {
            state,
            queues: Mutex::new(QueueSet {
                queues,
                order,
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            capacity,
        });
        let workers = (0..workers)
            .map(|_| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.worker_loop())
            })
            .collect();
        SchedulerHandle { sched, workers }
    }

    /// Enqueues one job and blocks until it completes (the submitting
    /// connection thread has nothing else to do). Fails fast — before
    /// consuming a queue slot — on malformed ε, unknown datasets, a full
    /// queue (`busy`) or a draining scheduler.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; `deadline` when the job expired in the queue.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that killed the job's serving worker, so the
    /// connection drops exactly as if the work had run inline.
    pub fn submit(
        &self,
        dataset: &str,
        kind: AggKind,
        column: &str,
        op: JobOp,
        deadline_ms: Option<u64>,
        trace: Option<Trace>,
    ) -> Result<JobOutput, ServeError> {
        if let JobOp::Release {
            epsilon: Some(eps), ..
        } = &op
        {
            if !(eps.is_finite() && *eps > 0.0) {
                return Err(ServeError::BadRequest("epsilon must be positive".into()));
            }
        }
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let slot = Slot::new();
        {
            let mut qs = self.queues.lock().expect("queues poisoned");
            if qs.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let capacity = self.capacity;
            if !qs.queues.contains_key(dataset) {
                // A dataset attached after startup has no queue yet —
                // create one on first use. Detached datasets keep their
                // (empty) queue: harmless, and a job racing a detach
                // fails at serve time with `unknown_dataset`.
                if !self.state.has_dataset(dataset) {
                    return Err(ServeError::UnknownDataset(dataset.to_string()));
                }
                qs.queues.insert(dataset.to_string(), VecDeque::new());
                qs.order.push(dataset.to_string());
            }
            let queue = qs.queues.get_mut(dataset).expect("queue just ensured");
            if queue.len() >= capacity {
                self.counters.busy_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Busy);
            }
            queue.push_back(Job {
                dataset: dataset.to_string(),
                kind,
                column: column.to_string(),
                op,
                deadline,
                enqueued: Instant::now(),
                trace,
                slot: Arc::clone(&slot),
            });
            qs.queued += 1;
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            self.counters
                .peak_queued
                .fetch_max(qs.queued as u64, Ordering::Relaxed);
        }
        self.work_cv.notify_one();
        slot.wait()
    }

    /// A snapshot of the scheduler's counters.
    pub fn stats(&self) -> SchedStats {
        let queued = self.queues.lock().expect("queues poisoned").queued as u64;
        let c = &self.counters;
        SchedStats {
            queued,
            peak_queued: c.peak_queued.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            prepares: c.prepares.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            busy_rejected: c.busy_rejected.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            peak_batch: c.peak_batch.load(Ordering::Relaxed),
        }
    }

    // ---- worker side ----------------------------------------------------

    /// Records how long `job` sat in its queue, into the histogram and
    /// (when traced) the request's timeline. Called once per job at the
    /// moment it leaves a queue — via `next_job` or `take_batch`.
    fn note_dequeued(&self, job: &Job) {
        let now = Instant::now();
        let waited = now.checked_duration_since(job.enqueued).unwrap_or_default();
        self.state.obs().m.queue_wait.record_duration(waited);
        if let Some(t) = &job.trace {
            t.span("queue_wait", job.enqueued, now);
        }
    }

    fn worker_loop(&self) {
        while let Some(job) = self.next_job() {
            self.note_dequeued(&job);
            if job.expired() {
                self.shed(job);
                continue;
            }
            let batch = self.take_batch(job);
            self.counters.batches.fetch_add(1, Ordering::Relaxed);
            self.counters
                .peak_batch
                .fetch_max(batch.len() as u64, Ordering::Relaxed);
            self.serve_batch(batch);
        }
    }

    /// Blocks for the next job, scanning datasets round-robin from the
    /// fairness cursor. Returns `None` once draining *and* empty.
    fn next_job(&self) -> Option<Job> {
        let mut qs = self.queues.lock().expect("queues poisoned");
        loop {
            let n = qs.order.len();
            for i in 0..n {
                let idx = (qs.cursor + i) % n;
                let name = qs.order[idx].clone();
                if let Some(job) = qs.queues.get_mut(&name).and_then(VecDeque::pop_front) {
                    qs.cursor = (idx + 1) % n;
                    qs.queued -= 1;
                    return Some(job);
                }
            }
            if qs.shutdown {
                return None;
            }
            qs = self.work_cv.wait(qs).expect("queues poisoned");
        }
    }

    /// Drains every queued job for the same `(kind, column)` on
    /// `first`'s dataset into one batch — they all share one prepare.
    fn take_batch(&self, first: Job) -> Vec<Job> {
        let mut batch = vec![first];
        {
            let mut qs = self.queues.lock().expect("queues poisoned");
            if let Some(queue) = qs.queues.get_mut(&batch[0].dataset) {
                let mut rest = VecDeque::with_capacity(queue.len());
                while let Some(job) = queue.pop_front() {
                    if batch[0].same_query(&job) {
                        batch.push(job);
                    } else {
                        rest.push_back(job);
                    }
                }
                *queue = rest;
                qs.queued -= batch.len() - 1;
            }
        }
        // The first job's dequeue was noted by `worker_loop`.
        for job in &batch[1..] {
            self.note_dequeued(job);
        }
        batch
    }

    fn shed(&self, job: Job) {
        self.counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        job.slot.complete(Err(ServeError::DeadlineExceeded));
    }

    fn serve_batch(&self, batch: Vec<Job>) {
        let lead = &batch[0];
        let prep_start = Instant::now();
        let prep = panic::catch_unwind(AssertUnwindSafe(|| {
            self.prepare_shared(&lead.dataset, lead.kind, &lead.column)
        }));
        let prep_end = Instant::now();
        let prep_dur = prep_end
            .checked_duration_since(prep_start)
            .unwrap_or_default();
        match prep {
            Err(payload) => {
                let message = panic_message(payload);
                for job in batch {
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    job.slot.complete_panicked(message.clone());
                }
            }
            Ok(Err(e)) => {
                for job in batch {
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    job.slot.complete(Err(e.clone()));
                }
            }
            Ok(Ok((prepared, query_id, ran_prepare))) => {
                let m = &self.state.obs().m;
                if ran_prepare {
                    m.engine_prepare.record_duration(prep_dur);
                }
                for (i, job) in batch.into_iter().enumerate() {
                    let leader_ran = ran_prepare && i == 0;
                    if !leader_ran {
                        self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                        m.coalesce_wait.record_duration(prep_dur);
                    }
                    if let Some(t) = &job.trace {
                        t.set_query_id(&query_id);
                        let name = if leader_ran {
                            "engine_prepare"
                        } else {
                            "coalesce_wait"
                        };
                        t.span(name, prep_start, prep_end);
                    }
                    if job.expired() {
                        // The prepare is shared state, not this job's
                        // cost — but its budget charge is, so an expired
                        // job is still shed before spending.
                        self.shed(job);
                        continue;
                    }
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| match &job.op {
                        JobOp::Prepare => Ok(JobOutput::Prepared {
                            query_id: query_id.clone(),
                            sample_size: prepared.sample_size(),
                            cached: !leader_ran,
                        }),
                        JobOp::Release {
                            epsilon,
                            want_audit,
                        } => self
                            .state
                            .release_prepared_traced(
                                &job.dataset,
                                &query_id,
                                &prepared,
                                *epsilon,
                                *want_audit,
                                job.trace.as_ref(),
                            )
                            .map(|mut out| {
                                // Only the leader paid the cold prepare;
                                // coalesced followers shared its state.
                                out.cached = !leader_ran;
                                out.prepare_us = leader_ran.then_some(prep_dur.as_micros() as u64);
                                JobOutput::Released(Box::new(out))
                            }),
                    }));
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    match outcome {
                        Ok(result) => job.slot.complete(result),
                        Err(payload) => job.slot.complete_panicked(panic_message(payload)),
                    }
                }
            }
        }
    }

    /// Single-flight prepare: the first caller for a key runs the
    /// engine; concurrent callers (from other workers) wait on the
    /// in-flight entry and share its result. Returns `ran_prepare =
    /// true` only for the caller that actually ran the engine.
    fn prepare_shared(
        &self,
        dataset: &str,
        kind: AggKind,
        column: &str,
    ) -> Result<(Arc<PreparedAgg>, String, bool), ServeError> {
        let query_id = ServerState::query_id(dataset, kind, column);
        if let Some(p) = self.state.cached_prepared(dataset, kind, column) {
            return Ok((p, query_id, false));
        }
        let key = (dataset.to_string(), kind, column.to_string());
        let (entry, leader) = {
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            // Re-check under the lock: a leader that just finished has
            // already populated the cache.
            if let Some(p) = self.state.cached_prepared(dataset, kind, column) {
                return Ok((p, query_id, false));
            }
            match inflight.get(&key) {
                Some(entry) => (Arc::clone(entry), false),
                None => {
                    let entry = Arc::new(Inflight {
                        state: Mutex::new(InflightState::Running),
                        cv: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&entry));
                    (entry, true)
                }
            }
        };
        if leader {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                self.state.prepare(dataset, kind, column)
            }));
            let shared = match &result {
                Ok(Ok((p, id, _))) => Ok((Arc::clone(p), id.clone())),
                Ok(Err(e)) => Err(e.clone()),
                Err(_) => Err(ServeError::Pipeline("prepare panicked".into())),
            };
            *entry.state.lock().expect("inflight poisoned") = InflightState::Done(shared);
            entry.cv.notify_all();
            // Remove *after* publishing: late arrivals now hit the cache
            // (on success) or start a fresh attempt (on failure).
            self.inflight
                .lock()
                .expect("inflight poisoned")
                .remove(&key);
            match result {
                Ok(Ok((p, id, cached))) => {
                    if !cached {
                        self.counters.prepares.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((p, id, !cached))
                }
                Ok(Err(e)) => Err(e),
                Err(payload) => panic::resume_unwind(payload),
            }
        } else {
            let mut state = entry.state.lock().expect("inflight poisoned");
            loop {
                match &*state {
                    InflightState::Running => {
                        state = entry.cv.wait(state).expect("inflight poisoned");
                    }
                    InflightState::Done(result) => {
                        return result.clone().map(|(p, id)| (p, id, false));
                    }
                }
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "scheduler worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{DatasetSpec, ServerConfig};

    fn sched_with(config: ServerConfig) -> (Arc<ServerState>, SchedulerHandle) {
        let state = Arc::new(ServerState::new(config).unwrap());
        let handle = Scheduler::start(Arc::clone(&state));
        (state, handle)
    }

    fn two_dataset_config() -> ServerConfig {
        ServerConfig {
            datasets: vec![
                DatasetSpec::synthetic("alpha", 1_500, 7),
                DatasetSpec::synthetic("beta", 1_500, 7),
            ],
            sample_size: 30,
            threads: 2,
            max_inflight_prepares: 2,
            queue_capacity: 4,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn submit_serves_prepare_and_release() {
        let (_state, handle) = sched_with(two_dataset_config());
        let sched = handle.scheduler();
        match sched
            .submit("alpha", AggKind::Sum, "v", JobOp::Prepare, None, None)
            .unwrap()
        {
            JobOutput::Prepared {
                query_id, cached, ..
            } => {
                assert_eq!(query_id, "alpha/sum/v");
                assert!(!cached, "first prepare runs the engine");
            }
            other => panic!("expected Prepared, got {other:?}"),
        }
        match sched
            .submit(
                "alpha",
                AggKind::Sum,
                "v",
                JobOp::Release {
                    epsilon: None,
                    want_audit: false,
                },
                None,
                None,
            )
            .unwrap()
        {
            JobOutput::Released(out) => assert_eq!(out.query_id, "alpha/sum/v"),
            other => panic!("expected Released, got {other:?}"),
        }
        let stats = sched.stats();
        assert_eq!(stats.prepares, 1);
        assert_eq!(stats.coalesced, 1, "the release coalesced onto the cache");
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn unknown_dataset_and_bad_epsilon_fail_before_queueing() {
        let (_state, handle) = sched_with(two_dataset_config());
        let sched = handle.scheduler();
        assert_eq!(
            sched
                .submit("nope", AggKind::Count, "", JobOp::Prepare, None, None)
                .unwrap_err()
                .code()
                .as_str(),
            "unknown_dataset"
        );
        assert_eq!(
            sched
                .submit(
                    "alpha",
                    AggKind::Count,
                    "",
                    JobOp::Release {
                        epsilon: Some(-2.0),
                        want_audit: false
                    },
                    None,
                    None,
                )
                .unwrap_err()
                .code()
                .as_str(),
            "bad_request"
        );
        assert_eq!(sched.stats().submitted, 0);
    }

    #[test]
    fn expired_deadline_is_shed_with_deadline_code() {
        let (_state, handle) = sched_with(two_dataset_config());
        let sched = handle.scheduler();
        // A zero deadline expires the moment a worker looks at it.
        let err = sched
            .submit(
                "alpha",
                AggKind::Sum,
                "v",
                JobOp::Release {
                    epsilon: None,
                    want_audit: false,
                },
                Some(0),
                None,
            )
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(err.code().as_str(), "deadline");
        let stats = sched.stats();
        assert_eq!(stats.shed_deadline, 1);
        // The shed request charged nothing and ran nothing.
        assert_eq!(stats.prepares, 0);
    }

    #[test]
    fn drain_completes_queued_work_then_refuses() {
        let (_state, mut handle) = sched_with(two_dataset_config());
        let sched = handle.scheduler();
        sched
            .submit("beta", AggKind::Mean, "v", JobOp::Prepare, None, None)
            .unwrap();
        handle.drain();
        assert_eq!(
            sched
                .submit("beta", AggKind::Mean, "v", JobOp::Prepare, None, None)
                .unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn round_robin_cursor_covers_all_datasets() {
        let (_state, handle) = sched_with(two_dataset_config());
        let sched = handle.scheduler();
        let mut threads = Vec::new();
        for name in ["alpha", "beta", "alpha", "beta"] {
            let sched = Arc::clone(&sched);
            threads.push(std::thread::spawn(move || {
                sched.submit(name, AggKind::Count, "", JobOp::Prepare, None, None)
            }));
        }
        for t in threads {
            t.join().unwrap().unwrap();
        }
        let stats = sched.stats();
        assert_eq!(stats.completed, 4);
        // One engine prepare per dataset, the duplicates coalesced.
        assert_eq!(stats.prepares, 2);
        assert_eq!(stats.coalesced, 2);
    }
}
