//! The typed wire protocol: every request and reply the daemon speaks,
//! as closed enums with `to_line`/`from_json` codecs.
//!
//! Both ends share this module — the server parses [`Request`] and
//! prints [`Response`], the client prints [`Request`] and parses
//! [`Response`] — so a protocol change is a change to exactly one file,
//! and the error-code vocabulary ([`ErrorCode`]) cannot drift between
//! sides. The line format itself is unchanged from the stringly v1
//! protocol (one JSON object per `\n`-terminated line, `"ok"`
//! discriminating success), so old clients interoperate.

use crate::obs::{RegistrySnapshot, TraceRecord};
use crate::sched::SchedStats;
use crate::state::{AggKind, AttachOutcome, DatasetInfo, ReleaseOutcome, ServeError};
use crate::wire::{self, Json};
use upa_core::QueryAudit;

/// The closed set of machine-readable error codes. The server derives
/// them from [`ServeError::code`]; the client parses them back, so both
/// sides agree on the vocabulary by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// No dataset of that name is registered.
    UnknownDataset,
    /// The dataset has no such numeric column.
    UnknownColumn,
    /// The request was malformed.
    BadRequest,
    /// A capacity bound was hit (connection cap or a full queue).
    Busy,
    /// The request's deadline expired while it queued.
    Deadline,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The dataset's budget cannot cover the requested ε.
    Budget,
    /// The ledger could not make the spend durable.
    Ledger,
    /// The pipeline failed.
    Pipeline,
    /// An admin op arrived on a server without `--allow-admin`.
    Admin,
    /// A dataset-store operation failed.
    Store,
}

impl ErrorCode {
    /// Every code, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 11] = [
        ErrorCode::UnknownDataset,
        ErrorCode::UnknownColumn,
        ErrorCode::BadRequest,
        ErrorCode::Busy,
        ErrorCode::Deadline,
        ErrorCode::ShuttingDown,
        ErrorCode::Budget,
        ErrorCode::Ledger,
        ErrorCode::Pipeline,
        ErrorCode::Admin,
        ErrorCode::Store,
    ];

    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownDataset => "unknown_dataset",
            ErrorCode::UnknownColumn => "unknown_column",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Busy => "busy",
            ErrorCode::Deadline => "deadline",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Budget => "budget",
            ErrorCode::Ledger => "ledger",
            ErrorCode::Pipeline => "pipeline",
            ErrorCode::Admin => "admin",
            ErrorCode::Store => "store",
        }
    }

    /// Parses a wire spelling (`None` for anything outside the closed
    /// set).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Health check (answered even while draining).
    Ping,
    /// List the served dataset names.
    Datasets,
    /// Run (or coalesce onto) phases 1–3 for a query.
    Prepare {
        /// Dataset name.
        dataset: String,
        /// Aggregate kind.
        query: AggKind,
        /// Column (empty for `count`).
        column: String,
    },
    /// Release one differentially private answer.
    Release {
        /// Dataset name.
        dataset: String,
        /// Aggregate kind.
        query: AggKind,
        /// Column (empty for `count`).
        column: String,
        /// Per-release ε override.
        epsilon: Option<f64>,
        /// Ask for the release's audit record.
        audit: bool,
        /// Shed the request with a `deadline` error if it cannot be
        /// served within this many milliseconds of arrival.
        deadline_ms: Option<u64>,
    },
    /// The dataset's budget.
    Budget {
        /// Dataset name.
        dataset: String,
    },
    /// The dataset's most recent audits.
    Audit {
        /// Dataset name.
        dataset: String,
        /// How many recent audits (all when absent).
        last: Option<u64>,
    },
    /// Scheduler counters (queue depth, coalesced hits, shed requests),
    /// plus uptime and a monotonic snapshot sequence number.
    Stats,
    /// The full metrics registry: Prometheus-style text exposition plus
    /// the structured JSON form (answered even while draining).
    Metrics,
    /// Retained request traces, by ID or the most recent `last`.
    Trace {
        /// A specific request ID (`r-N`); takes precedence over `last`.
        id: Option<String>,
        /// How many recent traces (1 when both fields are absent).
        last: Option<u64>,
    },
    /// Ingest a server-local CSV file into the store (admin-gated).
    Ingest {
        /// Server-local path of the CSV file.
        path: String,
        /// Dataset name (defaults to the file stem).
        dataset: Option<String>,
    },
    /// Attach (or reload) a store dataset into the serving set
    /// (admin-gated).
    Attach {
        /// Dataset name.
        dataset: String,
    },
    /// Detach a dataset from the serving set (admin-gated); its spent ε
    /// survives for a later re-attach.
    Detach {
        /// Dataset name.
        dataset: String,
    },
    /// Drain and stop the server.
    Shutdown,
}

impl Request {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => "{\"op\":\"ping\"}".to_string(),
            Request::Datasets => "{\"op\":\"datasets\"}".to_string(),
            Request::Prepare {
                dataset,
                query,
                column,
            } => format!(
                "{{\"op\":\"prepare\",\"dataset\":{},\"query\":{},\"column\":{}}}",
                wire::json_str(dataset),
                wire::json_str(query.as_str()),
                wire::json_str(column)
            ),
            Request::Release {
                dataset,
                query,
                column,
                epsilon,
                audit,
                deadline_ms,
            } => {
                let mut s = format!(
                    "{{\"op\":\"release\",\"dataset\":{},\"query\":{},\"column\":{}",
                    wire::json_str(dataset),
                    wire::json_str(query.as_str()),
                    wire::json_str(column)
                );
                if let Some(eps) = epsilon {
                    s.push_str(&format!(",\"epsilon\":{}", wire::json_num(*eps)));
                }
                if *audit {
                    s.push_str(",\"audit\":true");
                }
                if let Some(ms) = deadline_ms {
                    s.push_str(&format!(",\"deadline_ms\":{ms}"));
                }
                s.push('}');
                s
            }
            Request::Budget { dataset } => format!(
                "{{\"op\":\"budget\",\"dataset\":{}}}",
                wire::json_str(dataset)
            ),
            Request::Audit { dataset, last } => {
                let mut s = format!("{{\"op\":\"audit\",\"dataset\":{}", wire::json_str(dataset));
                if let Some(n) = last {
                    s.push_str(&format!(",\"last\":{n}"));
                }
                s.push('}');
                s
            }
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Metrics => "{\"op\":\"metrics\"}".to_string(),
            Request::Trace { id, last } => {
                let mut s = String::from("{\"op\":\"trace\"");
                if let Some(id) = id {
                    s.push_str(&format!(",\"id\":{}", wire::json_str(id)));
                }
                if let Some(n) = last {
                    s.push_str(&format!(",\"last\":{n}"));
                }
                s.push('}');
                s
            }
            Request::Ingest { path, dataset } => {
                let mut s = format!("{{\"op\":\"ingest\",\"path\":{}", wire::json_str(path));
                if let Some(d) = dataset {
                    s.push_str(&format!(",\"dataset\":{}", wire::json_str(d)));
                }
                s.push('}');
                s
            }
            Request::Attach { dataset } => format!(
                "{{\"op\":\"attach\",\"dataset\":{}}}",
                wire::json_str(dataset)
            ),
            Request::Detach { dataset } => format!(
                "{{\"op\":\"detach\",\"dataset\":{}}}",
                wire::json_str(dataset)
            ),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        }
    }

    /// Parses one request object. `dataset` defaults to `"data"`,
    /// matching the v1 protocol; `column` is required for `sum`/`mean`.
    ///
    /// # Errors
    ///
    /// A `bad_request`-worthy message for unknown ops or missing fields.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = v.str_of("op").unwrap_or("");
        match op {
            "ping" => Ok(Request::Ping),
            "datasets" => Ok(Request::Datasets),
            "prepare" => {
                let (dataset, query, column) = Self::query_fields(v)?;
                Ok(Request::Prepare {
                    dataset,
                    query,
                    column,
                })
            }
            "release" => {
                let (dataset, query, column) = Self::query_fields(v)?;
                Ok(Request::Release {
                    dataset,
                    query,
                    column,
                    epsilon: v.num_of("epsilon"),
                    audit: v.bool_of("audit").unwrap_or(false),
                    deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
                })
            }
            "budget" => Ok(Request::Budget {
                dataset: v.str_of("dataset").unwrap_or("data").to_string(),
            }),
            "audit" => Ok(Request::Audit {
                dataset: v.str_of("dataset").unwrap_or("data").to_string(),
                last: v.get("last").and_then(Json::as_u64),
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "trace" => Ok(Request::Trace {
                id: v.str_of("id").map(str::to_string),
                last: v.get("last").and_then(Json::as_u64),
            }),
            "ingest" => Ok(Request::Ingest {
                path: v
                    .str_of("path")
                    .ok_or_else(|| "missing 'path'".to_string())?
                    .to_string(),
                dataset: v.str_of("dataset").map(str::to_string),
            }),
            "attach" => Ok(Request::Attach {
                dataset: v
                    .str_of("dataset")
                    .ok_or_else(|| "missing 'dataset'".to_string())?
                    .to_string(),
            }),
            "detach" => Ok(Request::Detach {
                dataset: v
                    .str_of("dataset")
                    .ok_or_else(|| "missing 'dataset'".to_string())?
                    .to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op '{other}' \
                 (ping|datasets|prepare|release|budget|audit|stats|metrics|trace\
                 |ingest|attach|detach|shutdown)"
            )),
        }
    }

    fn query_fields(v: &Json) -> Result<(String, AggKind, String), String> {
        let dataset = v.str_of("dataset").unwrap_or("data").to_string();
        let query: AggKind = v
            .str_of("query")
            .ok_or_else(|| "missing 'query'".to_string())?
            .parse()?;
        let column = v.str_of("column").unwrap_or("").to_string();
        if query != AggKind::Count && column.is_empty() {
            return Err("'column' is required for sum/mean".into());
        }
        Ok((dataset, query, column))
    }
}

/// The `stats` reply's body: scheduler counters plus process-scoped
/// scrape bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Scheduler counters.
    pub sched: SchedStats,
    /// Seconds since the server state was built; a drop between scrapes
    /// means a restart (and that every lifetime counter reset).
    pub uptime_seconds: f64,
    /// Monotonic per-process snapshot sequence number (increments on
    /// every `stats` reply), for rate computation and restart detection.
    pub seq: u64,
}

/// The `metrics` reply's body: the same snapshot twice — once as
/// Prometheus-style text for scrapers, once structured for programs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReply {
    /// Prometheus-style text exposition.
    pub exposition: String,
    /// The structured registry snapshot the exposition was rendered
    /// from.
    pub snapshot: RegistrySnapshot,
}

impl MetricsReply {
    /// Renders the exposition from `snapshot` (the two fields can never
    /// disagree on the server side).
    pub fn new(snapshot: RegistrySnapshot) -> MetricsReply {
        MetricsReply {
            exposition: snapshot.exposition(),
            snapshot,
        }
    }
}

/// The `datasets` reply's body: the served names (the v1 shape), plus
/// per-dataset shape details and any store datasets published on disk
/// but not attached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetsReply {
    /// Served dataset names, sorted (the v1 `datasets` array).
    pub names: Vec<String>,
    /// Shape details for each served dataset, sorted by name.
    pub info: Vec<DatasetInfo>,
    /// Store datasets on disk but not currently served, sorted.
    pub available: Vec<String>,
}

/// A successful `prepare` reply's body.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedInfo {
    /// Query identity (`dataset/kind/column`).
    pub query_id: String,
    /// Effective sample size of the prepared state.
    pub sample_size: usize,
    /// Whether the caller coalesced onto existing state (shared cache or
    /// another caller's in-flight prepare) instead of running its own.
    pub cached: bool,
}

/// One server reply.
#[derive(Debug, Clone)]
pub enum Response {
    /// Bare success (`ping`).
    Ok,
    /// The served datasets (names, shapes, and unattached store
    /// datasets).
    Datasets(DatasetsReply),
    /// A dataset was attached (or reloaded) into the serving set.
    Attached(AttachOutcome),
    /// A dataset was detached from the serving set.
    Detached {
        /// Dataset name.
        dataset: String,
    },
    /// A CSV file was ingested into the store.
    Ingested {
        /// Dataset name as published.
        dataset: String,
        /// Rows per column.
        rows: u64,
        /// Numeric columns kept.
        columns: Vec<String>,
        /// Chunk files written.
        chunks: u64,
        /// Bytes written (chunks plus manifest).
        bytes: u64,
    },
    /// Prepared (or coalesced) query state.
    Prepared(PreparedInfo),
    /// A released noisy answer (boxed: the audit payload makes this
    /// variant an order of magnitude larger than its siblings).
    Released(Box<ReleaseOutcome>),
    /// A dataset's budget as `(total, spent, remaining)` (`None` when
    /// the server is unmetered).
    Budget {
        /// Dataset name.
        dataset: String,
        /// `(total, spent, remaining)` when metered.
        budget: Option<(f64, f64, f64)>,
    },
    /// A dataset's recent audits, oldest first.
    Audits {
        /// Dataset name.
        dataset: String,
        /// The audit records.
        audits: Vec<QueryAudit>,
    },
    /// Scheduler counters plus uptime and scrape sequence.
    Stats(StatsReply),
    /// The metrics registry, as text exposition plus structured JSON.
    Metrics(MetricsReply),
    /// Retained request traces, oldest first.
    Traces(Vec<TraceRecord>),
    /// Shutdown accepted; the server is draining.
    Draining,
    /// A refusal, with its stable code.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
    },
}

impl From<&ServeError> for Response {
    fn from(e: &ServeError) -> Response {
        Response::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

impl Response {
    /// Serializes to one `\n`-terminated protocol line.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_line(&mut out);
        out
    }

    /// Appends the `\n`-terminated protocol line to `out`. The serving
    /// hot path reuses one per-connection buffer across replies, so a
    /// release costs zero reply-side allocations once the buffer has
    /// grown to steady state.
    pub fn write_line(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Response::Ok => out.push_str("{\"ok\":true}\n"),
            Response::Datasets(reply) => {
                out.push_str("{\"ok\":true,\"datasets\":[");
                for (i, n) in reply.names.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    wire::push_json_str(out, n);
                }
                out.push_str("],\"info\":[");
                for (i, d) in reply.info.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    wire::push_json_str(out, &d.name);
                    let _ = write!(out, ",\"rows\":{},\"columns\":[", d.rows);
                    for (j, c) in d.columns.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        wire::push_json_str(out, c);
                    }
                    let _ = write!(out, "],\"resident_bytes\":{}}}", d.resident_bytes);
                }
                out.push_str("],\"available\":[");
                for (i, n) in reply.available.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    wire::push_json_str(out, n);
                }
                out.push_str("]}\n");
            }
            Response::Attached(a) => {
                out.push_str("{\"ok\":true,\"attached\":");
                wire::push_json_str(out, &a.dataset);
                let _ = write!(
                    out,
                    ",\"rows\":{},\"resident_bytes\":{},\"reloaded\":{}}}",
                    a.rows, a.resident_bytes, a.reloaded
                );
                out.push('\n');
            }
            Response::Detached { dataset } => {
                out.push_str("{\"ok\":true,\"detached\":");
                wire::push_json_str(out, dataset);
                out.push_str("}\n");
            }
            Response::Ingested {
                dataset,
                rows,
                columns,
                chunks,
                bytes,
            } => {
                out.push_str("{\"ok\":true,\"ingested\":");
                wire::push_json_str(out, dataset);
                let _ = write!(out, ",\"rows\":{rows},\"columns\":[");
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    wire::push_json_str(out, c);
                }
                let _ = write!(out, "],\"chunks\":{chunks},\"bytes\":{bytes}}}");
                out.push('\n');
            }
            Response::Prepared(info) => {
                out.push_str("{\"ok\":true,\"query_id\":");
                wire::push_json_str(out, &info.query_id);
                let _ = write!(
                    out,
                    ",\"sample_size\":{},\"cached\":{}}}",
                    info.sample_size, info.cached
                );
                out.push('\n');
            }
            Response::Released(outcome) => {
                out.push_str("{\"ok\":true,\"query_id\":");
                wire::push_json_str(out, &outcome.query_id);
                out.push_str(",\"released\":");
                wire::push_json_num(out, outcome.released);
                out.push_str(",\"epsilon\":");
                wire::push_json_num(out, outcome.epsilon);
                out.push_str(",\"noise_scale\":");
                wire::push_json_num(out, outcome.noise_scale);
                let _ = write!(out, ",\"sample_size\":{}", outcome.sample_size);
                match outcome.budget_remaining {
                    Some(rem) => {
                        out.push_str(",\"budget_remaining\":");
                        wire::push_json_num(out, rem);
                    }
                    None => out.push_str(",\"budget_remaining\":null"),
                }
                let _ = write!(
                    out,
                    ",\"cache\":\"{}\"",
                    if outcome.cached { "hit" } else { "miss" }
                );
                if let Some(us) = outcome.prepare_us {
                    let _ = write!(out, ",\"prepare_us\":{us}");
                }
                if let Some(audit) = &outcome.audit {
                    out.push_str(",\"audit\":");
                    out.push_str(&audit.to_json());
                }
                out.push_str("}\n");
            }
            Response::Budget { dataset, budget } => {
                out.push_str("{\"ok\":true,\"dataset\":");
                wire::push_json_str(out, dataset);
                match budget {
                    Some((total, spent, remaining)) => {
                        out.push_str(",\"total\":");
                        wire::push_json_num(out, *total);
                        out.push_str(",\"spent\":");
                        wire::push_json_num(out, *spent);
                        out.push_str(",\"remaining\":");
                        wire::push_json_num(out, *remaining);
                        out.push_str("}\n");
                    }
                    None => {
                        out.push_str(",\"total\":null,\"spent\":null,\"remaining\":null}\n");
                    }
                }
            }
            Response::Audits { dataset, audits } => {
                out.push_str("{\"ok\":true,\"dataset\":");
                wire::push_json_str(out, dataset);
                out.push_str(",\"audits\":[");
                for (i, a) in audits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&a.to_json());
                }
                out.push_str("]}\n");
            }
            Response::Stats(reply) => {
                out.push_str("{\"ok\":true,\"sched\":");
                out.push_str(&reply.sched.to_json());
                out.push_str(",\"uptime_seconds\":");
                wire::push_json_num(out, reply.uptime_seconds);
                let _ = write!(out, ",\"seq\":{}}}", reply.seq);
                out.push('\n');
            }
            Response::Metrics(reply) => {
                out.push_str("{\"ok\":true,\"exposition\":");
                wire::push_json_str(out, &reply.exposition);
                out.push_str(",\"metrics\":");
                out.push_str(&reply.snapshot.to_json());
                out.push_str("}\n");
            }
            Response::Traces(traces) => {
                out.push_str("{\"ok\":true,\"traces\":[");
                for (i, t) in traces.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&t.to_json());
                }
                out.push_str("]}\n");
            }
            Response::Draining => out.push_str("{\"ok\":true,\"draining\":true}\n"),
            Response::Error { code, message } => {
                out.push_str("{\"ok\":false,\"code\":");
                wire::push_json_str(out, code.as_str());
                out.push_str(",\"error\":");
                wire::push_json_str(out, message);
                out.push_str("}\n");
            }
        }
    }

    /// Parses one reply object, discriminating on its fields (the line
    /// protocol is stateless — every reply shape is self-describing).
    ///
    /// # Errors
    ///
    /// A protocol-error message for shapes outside the closed set.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        match v.bool_of("ok") {
            Some(true) => {}
            Some(false) => {
                let code_str = v.str_of("code").unwrap_or("");
                let code = ErrorCode::parse(code_str)
                    .ok_or_else(|| format!("unknown error code '{code_str}'"))?;
                return Ok(Response::Error {
                    code,
                    message: v.str_of("error").unwrap_or("").to_string(),
                });
            }
            None => return Err("reply missing 'ok'".into()),
        }
        if v.bool_of("draining") == Some(true) {
            return Ok(Response::Draining);
        }
        let str_arr = |field: &str| -> Vec<String> {
            v.get(field)
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|n| n.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default()
        };
        if let Some(arr) = v.get("datasets").and_then(Json::as_arr) {
            let names = arr
                .iter()
                .filter_map(|n| n.as_str().map(str::to_string))
                .collect();
            // `info`/`available` are absent on pre-store servers; empty
            // is the honest decoding for both.
            let info = v
                .get("info")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|d| {
                            Some(DatasetInfo {
                                name: d.str_of("name")?.to_string(),
                                rows: d.get("rows").and_then(Json::as_u64)?,
                                columns: d
                                    .get("columns")?
                                    .as_arr()?
                                    .iter()
                                    .filter_map(|c| c.as_str().map(str::to_string))
                                    .collect(),
                                resident_bytes: d.get("resident_bytes").and_then(Json::as_u64)?,
                            })
                        })
                        .collect()
                })
                .unwrap_or_default();
            return Ok(Response::Datasets(DatasetsReply {
                names,
                info,
                available: str_arr("available"),
            }));
        }
        if let Some(dataset) = v.str_of("attached") {
            return Ok(Response::Attached(AttachOutcome {
                dataset: dataset.to_string(),
                rows: v.get("rows").and_then(Json::as_u64).unwrap_or(0),
                resident_bytes: v.get("resident_bytes").and_then(Json::as_u64).unwrap_or(0),
                reloaded: v.bool_of("reloaded").unwrap_or(false),
            }));
        }
        if let Some(dataset) = v.str_of("detached") {
            return Ok(Response::Detached {
                dataset: dataset.to_string(),
            });
        }
        if let Some(dataset) = v.str_of("ingested") {
            return Ok(Response::Ingested {
                dataset: dataset.to_string(),
                rows: v.get("rows").and_then(Json::as_u64).unwrap_or(0),
                columns: str_arr("columns"),
                chunks: v.get("chunks").and_then(Json::as_u64).unwrap_or(0),
                bytes: v.get("bytes").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        if let Some(sched) = v.get("sched") {
            return SchedStats::from_json(sched).map(|sched| {
                Response::Stats(StatsReply {
                    sched,
                    // Absent on replies from pre-observability servers;
                    // zero is the honest "unknown" for both.
                    uptime_seconds: v.num_of("uptime_seconds").unwrap_or(0.0),
                    seq: v.get("seq").and_then(Json::as_u64).unwrap_or(0),
                })
            });
        }
        if let Some(metrics) = v.get("metrics") {
            let snapshot = RegistrySnapshot::from_json(metrics)
                .ok_or_else(|| "malformed metrics snapshot in reply".to_string())?;
            return Ok(Response::Metrics(MetricsReply {
                exposition: v.str_of("exposition").unwrap_or("").to_string(),
                snapshot,
            }));
        }
        if let Some(arr) = v.get("traces").and_then(Json::as_arr) {
            let traces = arr
                .iter()
                .map(|t| {
                    TraceRecord::from_json(t).ok_or_else(|| "malformed trace in reply".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::Traces(traces));
        }
        if let Some(arr) = v.get("audits").and_then(Json::as_arr) {
            let audits = arr
                .iter()
                .map(|a| audit_from_json(a).ok_or_else(|| "malformed audit in reply".to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::Audits {
                dataset: v.str_of("dataset").unwrap_or("").to_string(),
                audits,
            });
        }
        if v.get("released").is_some() {
            // `json_num` writes non-finite floats as null; map them back
            // to NaN rather than inventing a finite value.
            let num_or_nan = |name: &str| match v.get(name) {
                Some(Json::Null) => Ok(f64::NAN),
                Some(field) => field
                    .as_f64()
                    .ok_or_else(|| format!("reply field '{name}' is not a number")),
                None => Err(format!("reply missing '{name}'")),
            };
            return Ok(Response::Released(Box::new(ReleaseOutcome {
                query_id: v.str_of("query_id").unwrap_or("").to_string(),
                released: num_or_nan("released")?,
                epsilon: num_or_nan("epsilon")?,
                noise_scale: num_or_nan("noise_scale")?,
                sample_size: v.get("sample_size").and_then(Json::as_u64).unwrap_or(0) as usize,
                budget_remaining: v.num_of("budget_remaining"),
                // Pre-columnar servers omit `cache`; "hit" is the
                // conservative decoding (no cold prepare to report).
                cached: v.str_of("cache") != Some("miss"),
                prepare_us: v.get("prepare_us").and_then(Json::as_u64),
                audit: v.get("audit").and_then(audit_from_json),
            })));
        }
        if let Some(query_id) = v.str_of("query_id") {
            return Ok(Response::Prepared(PreparedInfo {
                query_id: query_id.to_string(),
                sample_size: v.get("sample_size").and_then(Json::as_u64).unwrap_or(0) as usize,
                cached: v.bool_of("cached").unwrap_or(false),
            }));
        }
        if let Some(total) = v.get("total") {
            let dataset = v.str_of("dataset").unwrap_or("").to_string();
            let budget = match (total.as_f64(), v.num_of("spent"), v.num_of("remaining")) {
                (Some(t), Some(s), Some(r)) => Some((t, s, r)),
                _ => None,
            };
            return Ok(Response::Budget { dataset, budget });
        }
        Ok(Response::Ok)
    }
}

/// Reconstructs a [`QueryAudit`] from its [`QueryAudit::to_json`] form.
/// Returns `None` when required fields are missing, so a truncated or
/// foreign object never silently becomes a zeroed audit.
pub fn audit_from_json(v: &Json) -> Option<QueryAudit> {
    use dataflow::{MetricsSnapshot, StageSpan};
    let engine = v.get("engine")?;
    let counter = |name: &str| engine.get(name).and_then(Json::as_u64).unwrap_or(0);
    // `json_num` writes non-finite floats as null; map them back to NaN
    // rather than inventing a finite value.
    let num_or_nan = |field: &Json| field.as_f64().unwrap_or(f64::NAN);
    Some(QueryAudit {
        query: v.str_of("query")?.to_string(),
        epsilon: v.num_of("epsilon")?,
        budget_remaining: v.num_of("budget_remaining"),
        sensitivity: v
            .get("sensitivity")?
            .as_arr()?
            .iter()
            .map(num_or_nan)
            .collect(),
        range: v
            .get("range")?
            .as_arr()?
            .iter()
            .filter_map(|pair| {
                let pair = pair.as_arr()?;
                Some((num_or_nan(pair.first()?), num_or_nan(pair.get(1)?)))
            })
            .collect(),
        clamped: v.bool_of("clamped")?,
        attack_detected: v.bool_of("attack_detected")?,
        removed_records: v.get("removed_records").and_then(Json::as_u64)? as usize,
        sample_size: v.get("sample_size").and_then(Json::as_u64)? as usize,
        group_size: v.get("group_size").and_then(Json::as_u64)? as usize,
        spans: v
            .get("spans")?
            .as_arr()?
            .iter()
            .filter_map(|sp| {
                Some(StageSpan {
                    name: sp.str_of("name")?.to_string(),
                    path: sp.str_of("path")?.to_string(),
                    depth: sp.get("depth").and_then(Json::as_u64)? as usize,
                    nanos: sp.get("nanos").and_then(Json::as_u64)?,
                    records: sp.get("records").and_then(Json::as_u64)?,
                    calls: sp.get("calls").and_then(Json::as_u64)?,
                })
            })
            .collect(),
        engine: MetricsSnapshot {
            stages: counter("stages"),
            tasks: counter("tasks"),
            task_retries: counter("task_retries"),
            shuffles: counter("shuffles"),
            shuffle_records: counter("shuffle_records"),
            shuffle_bytes: counter("shuffle_bytes"),
            records_processed: counter("records_processed"),
        },
        total_nanos: v.get("total_nanos").and_then(Json::as_u64)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reparse_request(req: &Request) -> Request {
        let parsed = wire::parse(&req.to_line()).expect("request line parses");
        Request::from_json(&parsed).expect("request decodes")
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            let line = Response::Error {
                code,
                message: format!("m:{code}"),
            }
            .to_line();
            let parsed = wire::parse(line.trim()).expect("error line parses");
            match Response::from_json(&parsed).expect("error decodes") {
                Response::Error {
                    code: got, message, ..
                } => {
                    assert_eq!(got, code);
                    assert_eq!(message, format!("m:{code}"));
                }
                other => panic!("expected Error, got {other:?}"),
            }
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn serve_error_codes_stay_inside_the_closed_set() {
        // Every ServeError variant maps into the shared enum — a new
        // variant without a wire spelling fails to compile, not at
        // runtime in a client.
        let errors = [
            ServeError::UnknownDataset("d".into()),
            ServeError::UnknownColumn {
                dataset: "d".into(),
                column: "c".into(),
            },
            ServeError::BadRequest("m".into()),
            ServeError::Busy,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::BudgetExhausted {
                remaining: 0.1,
                requested: 0.2,
            },
            ServeError::Ledger("m".into()),
            ServeError::Pipeline("m".into()),
            ServeError::AdminDisabled,
            ServeError::Store("m".into()),
        ];
        for e in &errors {
            assert_eq!(ErrorCode::parse(e.code().as_str()), Some(e.code()));
        }
    }

    #[test]
    fn request_shapes_round_trip() {
        let requests = [
            Request::Ping,
            Request::Datasets,
            Request::Prepare {
                dataset: "people".into(),
                query: AggKind::Mean,
                column: "age".into(),
            },
            Request::Release {
                dataset: "da\"ta".into(),
                query: AggKind::Sum,
                column: "v".into(),
                epsilon: Some(0.25),
                audit: true,
                deadline_ms: Some(150),
            },
            Request::Release {
                dataset: "data".into(),
                query: AggKind::Count,
                column: String::new(),
                epsilon: None,
                audit: false,
                deadline_ms: None,
            },
            Request::Budget {
                dataset: "data".into(),
            },
            Request::Audit {
                dataset: "data".into(),
                last: Some(3),
            },
            Request::Stats,
            Request::Metrics,
            Request::Trace {
                id: Some("r-12".into()),
                last: None,
            },
            Request::Trace {
                id: None,
                last: Some(5),
            },
            Request::Ingest {
                path: "/data/people.csv".into(),
                dataset: Some("people".into()),
            },
            Request::Ingest {
                path: "people.csv".into(),
                dataset: None,
            },
            Request::Attach {
                dataset: "people".into(),
            },
            Request::Detach {
                dataset: "people".into(),
            },
            Request::Shutdown,
        ];
        for req in &requests {
            assert_eq!(&reparse_request(req), req, "{req:?}");
        }
    }

    fn reparse_response(resp: &Response) -> Response {
        let parsed = wire::parse(resp.to_line().trim()).expect("response line parses");
        Response::from_json(&parsed).expect("response decodes")
    }

    #[test]
    fn datasets_reply_round_trips_with_info_and_available() {
        let reply = DatasetsReply {
            names: vec!["people".into(), "taxi".into()],
            info: vec![DatasetInfo {
                name: "people".into(),
                rows: 1_000,
                columns: vec!["age".into(), "income".into()],
                resident_bytes: 16_000,
            }],
            available: vec!["census".into()],
        };
        match reparse_response(&Response::Datasets(reply.clone())) {
            Response::Datasets(got) => assert_eq!(got, reply),
            other => panic!("expected Datasets, got {other:?}"),
        }
        // The v1 shape (bare names) still decodes; extras default empty.
        let parsed = wire::parse("{\"ok\":true,\"datasets\":[\"d\"]}").unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Datasets(got) => {
                assert_eq!(got.names, vec!["d"]);
                assert!(got.info.is_empty());
                assert!(got.available.is_empty());
            }
            other => panic!("expected Datasets, got {other:?}"),
        }
    }

    #[test]
    fn store_admin_replies_round_trip() {
        let attached = Response::Attached(AttachOutcome {
            dataset: "people".into(),
            rows: 42,
            resident_bytes: 672,
            reloaded: true,
        });
        match reparse_response(&attached) {
            Response::Attached(got) => {
                assert_eq!(got.dataset, "people");
                assert_eq!(got.rows, 42);
                assert_eq!(got.resident_bytes, 672);
                assert!(got.reloaded);
            }
            other => panic!("expected Attached, got {other:?}"),
        }
        match reparse_response(&Response::Detached {
            dataset: "people".into(),
        }) {
            Response::Detached { dataset } => assert_eq!(dataset, "people"),
            other => panic!("expected Detached, got {other:?}"),
        }
        let ingested = Response::Ingested {
            dataset: "people".into(),
            rows: 42,
            columns: vec!["age".into()],
            chunks: 1,
            bytes: 500,
        };
        match reparse_response(&ingested) {
            Response::Ingested {
                dataset,
                rows,
                columns,
                chunks,
                bytes,
            } => {
                assert_eq!(dataset, "people");
                assert_eq!(rows, 42);
                assert_eq!(columns, vec!["age"]);
                assert_eq!(chunks, 1);
                assert_eq!(bytes, 500);
            }
            other => panic!("expected Ingested, got {other:?}"),
        }
    }

    #[test]
    fn release_cache_metadata_round_trips() {
        let outcome = |cached: bool, prepare_us: Option<u64>| {
            Response::Released(Box::new(ReleaseOutcome {
                query_id: "d/sum/v".into(),
                released: 1.5,
                epsilon: 0.1,
                noise_scale: 2.0,
                sample_size: 10,
                budget_remaining: None,
                cached,
                prepare_us,
                audit: None,
            }))
        };
        let miss = outcome(false, Some(1234));
        assert!(miss.to_line().contains("\"cache\":\"miss\""));
        match reparse_response(&miss) {
            Response::Released(out) => {
                assert!(!out.cached);
                assert_eq!(out.prepare_us, Some(1234));
            }
            other => panic!("expected Released, got {other:?}"),
        }
        let hit = outcome(true, None);
        assert!(hit.to_line().contains("\"cache\":\"hit\""));
        match reparse_response(&hit) {
            Response::Released(out) => {
                assert!(out.cached);
                assert_eq!(out.prepare_us, None);
            }
            other => panic!("expected Released, got {other:?}"),
        }
    }

    #[test]
    fn release_decodes_null_released_as_nan() {
        // Non-finite values (a degenerate MLE fit can produce them) go
        // over the wire as null; the decode side must hand back NaN, not
        // a protocol error or a fake finite number.
        let parsed = wire::parse(
            "{\"ok\":true,\"query_id\":\"d/sum/v\",\"released\":null,\"epsilon\":0.1,\
             \"noise_scale\":null,\"sample_size\":10,\"budget_remaining\":null}",
        )
        .unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Released(out) => {
                assert!(out.released.is_nan());
                assert!(out.noise_scale.is_nan());
                assert_eq!(out.epsilon, 0.1);
                assert_eq!(out.budget_remaining, None);
            }
            other => panic!("expected Released, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_decode_errors() {
        for line in [
            "{\"op\":\"mystery\"}",
            "{\"op\":\"release\"}",
            "{\"op\":\"release\",\"query\":\"sum\"}",
            "{\"op\":\"release\",\"query\":\"median\",\"column\":\"v\"}",
        ] {
            let parsed = wire::parse(line).unwrap();
            assert!(Request::from_json(&parsed).is_err(), "{line}");
        }
    }

    #[test]
    fn stats_response_round_trips() {
        let reply = StatsReply {
            sched: SchedStats {
                queued: 2,
                peak_queued: 7,
                submitted: 100,
                completed: 98,
                prepares: 3,
                coalesced: 95,
                shed_deadline: 1,
                busy_rejected: 4,
                batches: 9,
                peak_batch: 12,
            },
            uptime_seconds: 12.5,
            seq: 42,
        };
        let line = Response::Stats(reply.clone()).to_line();
        let parsed = wire::parse(line.trim()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Stats(got) => assert_eq!(got, reply),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_reply_without_uptime_still_decodes() {
        // A pre-observability server's reply shape: sched only.
        let parsed = wire::parse(
            "{\"ok\":true,\"sched\":{\"queued\":0,\"peak_queued\":0,\"submitted\":1,\
             \"completed\":1,\"prepares\":1,\"coalesced\":0,\"shed_deadline\":0,\
             \"busy_rejected\":0,\"batches\":1,\"peak_batch\":1}}",
        )
        .unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Stats(got) => {
                assert_eq!(got.sched.submitted, 1);
                assert_eq!(got.uptime_seconds, 0.0);
                assert_eq!(got.seq, 0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn metrics_response_round_trips() {
        use crate::obs::Registry;
        let registry = Registry::new();
        registry
            .counter("upa_requests_total{op=\"release\"}")
            .add(3);
        registry
            .gauge("upa_budget_epsilon_remaining{dataset=\"d\"}")
            .set(0.5);
        registry.histogram("upa_release_latency_us").record(777);
        let reply = MetricsReply::new(registry.snapshot());
        let line = Response::Metrics(reply.clone()).to_line();
        let parsed = wire::parse(line.trim()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Metrics(got) => {
                assert_eq!(got, reply);
                assert!(got.exposition.contains("upa_release_latency_us_count 1"));
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }

    #[test]
    fn traces_response_round_trips() {
        use crate::obs::Trace;
        let t = Trace::new("r-9", "release", "data");
        t.set_query_id("data/sum/v");
        let now = std::time::Instant::now();
        t.span("queue_wait", now, now);
        let reply = vec![t.finish("ok")];
        let line = Response::Traces(reply.clone()).to_line();
        let parsed = wire::parse(line.trim()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Traces(got) => assert_eq!(got, reply),
            other => panic!("expected Traces, got {other:?}"),
        }
    }
}
