//! The wire format: line-delimited JSON, hand-rolled.
//!
//! The workspace deliberately has no serde dependency, so the serving
//! protocol uses the smallest JSON subset that carries it: one request
//! object per line in, one response object per line out. This module is
//! the parser ([`parse`]) plus the two escape helpers responses are built
//! with ([`json_str`], [`json_num`]); response bodies themselves are
//! assembled with `format!`, the same style as
//! [`upa_core::QueryAudit::to_json`].

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (protocol objects never
    /// rely on it).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, or `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rounds through `f64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member `key` as a string.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Member `key` as a number.
    pub fn num_of(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Member `key` as a boolean.
    pub fn bool_of(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }
}

/// A parse failure: byte offset, message, and a truncated echo of the
/// input around the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
    /// Up to [`ECHO_BYTES`] of input around the offset, `…`-elided at
    /// truncated ends, so a protocol error names the offending text
    /// without echoing an arbitrarily long line.
    pub near: String,
}

/// Input bytes echoed around a parse failure (each side of the offset).
pub const ECHO_BYTES: usize = 20;

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: {} (near '{}')",
            self.at, self.message, self.near
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value, requiring the whole input (modulo surrounding
/// whitespace) to be consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// The `…`-elided window of `bytes` around `pos`, shrunk to UTF-8
/// character boundaries so multi-byte input never echoes as mojibake.
fn echo_near(bytes: &[u8], pos: usize) -> String {
    let is_boundary = |i: usize| i >= bytes.len() || (bytes[i] & 0xC0) != 0x80;
    let mut start = pos.saturating_sub(ECHO_BYTES).min(bytes.len());
    while !is_boundary(start) {
        start -= 1;
    }
    let mut end = (pos + ECHO_BYTES).min(bytes.len());
    while !is_boundary(end) {
        end += 1;
    }
    let mut out = String::new();
    if start > 0 {
        out.push('…');
    }
    out.push_str(&String::from_utf8_lossy(&bytes[start..end]));
    if end < bytes.len() {
        out.push('…');
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
            near: echo_near(self.bytes, self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// JSON string literal with escaping for quotes, backslashes and control
/// characters.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

/// Appends `s` as a JSON string to `out` — the allocation-free form of
/// [`json_str`] the serving hot path builds replies with.
pub fn push_json_str(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.reserve(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON number; non-finite floats (which JSON cannot represent) become
/// `null`.
pub fn json_num(v: f64) -> String {
    let mut out = String::new();
    push_json_num(&mut out, v);
    out
}

/// Appends `v` as a JSON number (`null` when non-finite) to `out` — the
/// allocation-free form of [`json_num`].
pub fn push_json_num(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            parse(r#"{"op":"release","eps":0.5,"audit":true,"tags":[1,2],"none":null}"#).unwrap();
        assert_eq!(v.str_of("op"), Some("release"));
        assert_eq!(v.num_of("eps"), Some(0.5));
        assert_eq!(v.bool_of("audit"), Some(true));
        assert_eq!(v.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\n\tA""#).unwrap(),
            Json::Str("a\"b\\c\n\tA".into())
        );
        // Surrogate pair: 😀
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn round_trips_escape_helpers() {
        let original = "a\"b\\c\nd\te\u{1}";
        let encoded = json_str(original);
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.into()));
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(parse(&json_num(2.25)).unwrap(), Json::Num(2.25));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "\"open", "{\"a\":}", "nul", "01a", "{}x", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("{\"a\":!}").unwrap_err();
        assert!(err.to_string().contains("byte"));
        // A short line echoes in full, un-elided.
        assert_eq!(err.near, "{\"a\":!}");
        assert!(err.to_string().contains("(near '{\"a\":!}')"), "{err}");
    }

    #[test]
    fn parse_errors_echo_a_truncated_window() {
        // A long line is elided on both sides of the offending byte…
        let long = format!("{{\"key\":\"{}\"!{}}}", "x".repeat(200), "y".repeat(200));
        let err = parse(&long).unwrap_err();
        assert_eq!(err.at, long.find('!').unwrap());
        assert!(
            err.near.starts_with('…') && err.near.ends_with('…'),
            "{err}"
        );
        assert!(err.near.contains('!'), "echo must show the bad byte: {err}");
        assert!(
            err.near.chars().count() <= 2 * ECHO_BYTES + 2,
            "echo too long: {err}"
        );
        // …a failure near the start keeps the line head un-elided…
        let err = parse(&format!("!{}", "z".repeat(100))).unwrap_err();
        assert!(
            err.near.starts_with('!') && err.near.ends_with('…'),
            "{err}"
        );
        // …and multi-byte input truncates on character boundaries
        // rather than echoing mojibake.
        let err = parse(&format!("\"{}", "é".repeat(100))).unwrap_err();
        assert!(!err.near.contains('\u{FFFD}'), "split a UTF-8 char: {err}");
    }

    #[test]
    fn parses_audit_json() {
        // The exact payload shape the client reconstructs audits from.
        let v = parse(
            r#"{"query":"mean","epsilon":0.1,"budget_remaining":null,"sensitivity":[2],
                "range":[[10,20]],"clamped":false,"attack_detected":false,
                "removed_records":0,"sample_size":100,"group_size":1,"total_nanos":240,
                "spans":[{"name":"sample","path":"prepare/sample","depth":1,"nanos":50,"records":0,"calls":1}],
                "engine":{"stages":3,"tasks":12,"task_retries":0,"shuffles":1,
                          "shuffle_records":500,"shuffle_bytes":4000,"records_processed":1000}}"#,
        )
        .unwrap();
        assert_eq!(v.str_of("query"), Some("mean"));
        assert_eq!(v.get("budget_remaining"), Some(&Json::Null));
        let spans = v.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].str_of("path"), Some("prepare/sample"));
        assert_eq!(
            v.get("engine").unwrap().num_of("shuffle_bytes"),
            Some(4000.0)
        );
    }
}
