//! The upa-server daemon.
//!
//! ```text
//! upa-serverd --synthetic data=100000:97 --budget 1.0 --ledger spends.jsonl --port 0
//! ```
//!
//! Prints `upa-server listening on ADDR` once bound (port 0 picks an
//! ephemeral port; the printed line is how tests and scripts discover
//! it), then serves until a `shutdown` request drains it.

use std::path::PathBuf;
use std::process::ExitCode;
use upa_server::{DatasetSpec, Server, ServerConfig};

const USAGE: &str = "\
upa-serverd — UPA differentially private query server

USAGE:
    upa-serverd [OPTIONS]

OPTIONS:
    --port N              TCP port to bind on 127.0.0.1 (0 = ephemeral) [default: 7878]
    --synthetic NAME=ROWS[:MOD]
                          Serve a synthetic dataset (repeatable); one
                          column `v` holding `i % MOD` [default MOD: 97]
    --store DIR           Persistent columnar dataset store directory;
                          enables the catalog (ingest/attach/detach).
                          An empty store is valid — attach later.
    --attach NAME         Attach a store dataset at startup (repeatable;
                          requires --store)
    --allow-admin         Enable the admin wire ops (ingest, attach,
                          detach) [default: disabled]
    --budget EPS          Total privacy budget per dataset (unmetered if absent)
    --ledger PATH         Crash-safe budget ledger file (replayed on start)
    --ledger-commit-us US Group-commit window: concurrent spends arriving
                          within US microseconds share one fsync
                          (0 = every spend fsyncs alone) [default: 200]
    --cache-capacity N    Prepared-query LRU cache capacity; cached
                          releases skip the scheduler queue entirely
                          (0 = unbounded) [default: 256]
    --epsilon EPS         Default per-release epsilon [default: 0.1]
    --sample-size N       UPA sample size n [default: 1000]
    --seed N              RNG seed [default: 0xDA7A]
    --threads N           Engine threads (0 = auto) [default: 0]
    --max-connections N   Concurrent connection cap [default: 64]
    --max-inflight N      Scheduler worker-pool size (max concurrently
                          running prepares/releases) [default: 4]
    --queue-capacity N    Bounded per-dataset request queue; a full
                          queue refuses with `busy` [default: 64]
    --row-scan            Serve cold prepares through the row path
                          (re-materialised Vec scans) instead of the
                          columnar zero-copy kernels. Results are
                          bit-identical either way; this is an escape
                          hatch and an A/B lever for benchmarks
    --slow-query-ms MS    Log requests slower than MS at `warn` with
                          their full trace (disabled if absent)
    --trace-capacity N    Finished request traces retained for the
                          `trace` op [default: 256]
    --help                Show this help
";

fn parse_args(args: &[String]) -> Result<(ServerConfig, u16), String> {
    let mut config = ServerConfig {
        // The daemon's structured event log goes to stderr.
        log_stderr: true,
        ..ServerConfig::default()
    };
    let mut port: u16 = 7878;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--port" => {
                port = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?;
            }
            "--synthetic" => {
                let spec = value(&mut i, arg)?;
                config.datasets.push(parse_synthetic(&spec)?);
            }
            "--budget" => {
                config.budget = Some(
                    value(&mut i, arg)?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                );
            }
            "--ledger" => {
                config.ledger_path = Some(PathBuf::from(value(&mut i, arg)?));
            }
            "--store" => {
                config.store_path = Some(PathBuf::from(value(&mut i, arg)?));
            }
            "--attach" => {
                config.attach.push(value(&mut i, arg)?);
            }
            "--allow-admin" => {
                config.allow_admin = true;
            }
            "--row-scan" => {
                config.columnar = false;
            }
            "--ledger-commit-us" => {
                config.ledger_commit_us = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --ledger-commit-us: {e}"))?;
            }
            "--cache-capacity" => {
                config.cache_capacity = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --cache-capacity: {e}"))?;
            }
            "--epsilon" => {
                config.epsilon = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --epsilon: {e}"))?;
            }
            "--sample-size" => {
                config.sample_size = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --sample-size: {e}"))?;
            }
            "--seed" => {
                config.seed = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                config.threads = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--max-connections" => {
                config.max_connections = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --max-connections: {e}"))?;
            }
            "--max-inflight" => {
                config.max_inflight_prepares = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?;
            }
            "--queue-capacity" => {
                config.queue_capacity = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity: {e}"))?;
            }
            "--slow-query-ms" => {
                config.slow_query_ms = Some(
                    value(&mut i, arg)?
                        .parse()
                        .map_err(|e| format!("bad --slow-query-ms: {e}"))?,
                );
            }
            "--trace-capacity" => {
                config.trace_capacity = value(&mut i, arg)?
                    .parse()
                    .map_err(|e| format!("bad --trace-capacity: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if !config.attach.is_empty() && config.store_path.is_none() {
        return Err("--attach requires --store".into());
    }
    // A store-backed server may legitimately start empty and have
    // datasets attached later; only a server with no possible data
    // source is a configuration error.
    if config.datasets.is_empty() && config.store_path.is_none() {
        return Err("no data source: pass --synthetic and/or --store".into());
    }
    Ok((config, port))
}

/// Parses `NAME=ROWS[:MOD]`.
fn parse_synthetic(spec: &str) -> Result<DatasetSpec, String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("bad --synthetic '{spec}': expected NAME=ROWS[:MOD]"))?;
    let (rows, modulus) = match rest.split_once(':') {
        Some((r, m)) => (r, m.parse().map_err(|e| format!("bad modulus: {e}"))?),
        None => (rest, 97),
    };
    let rows: usize = rows.parse().map_err(|e| format!("bad row count: {e}"))?;
    Ok(DatasetSpec::synthetic(name, rows, modulus))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, port) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(config, &format!("127.0.0.1:{port}")) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Contract with tests and `upa-cli serve`: the first stdout line
    // announces the bound address (ephemeral ports are unknowable
    // otherwise).
    println!("upa-server listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
