//! Shared serving state: datasets, engines, the prepared-query cache,
//! the budget ledger and admission control.
//!
//! One [`ServerState`] is shared (via `Arc`) by every connection worker.
//! Mutability is fine-grained so independent work proceeds concurrently:
//!
//! * each dataset owns its [`upa_core::Upa`] engine behind its own mutex
//!   (RNG, enforcer history and audits are per-dataset serial state);
//! * the prepared-query cache is an LRU behind its own short-hold mutex,
//!   so a release on one dataset never waits on a prepare for another;
//! * budget accounting is **sharded and lock-free**: each dataset's
//!   spent-ε lives in an [`AtomicBudget`] (CAS on the `f64` bit
//!   pattern), so concurrent releases on different — or the same —
//!   dataset reserve budget without any mutex;
//! * durability is the group-commit ledger's job
//!   ([`crate::ledger::GroupCommitLedger`]): a spend reserves
//!   atomically, submits its record, and blocks on the shared fsync. A
//!   failed fsync refunds the reservation, so an I/O failure never
//!   leaks accounted-but-lost budget.
//!
//! Admission control for the query path (bounded per-dataset queues,
//! request coalescing, deadlines) lives one layer up in
//! [`crate::sched::Scheduler`]; this module only provides the primitive
//! operations the scheduler composes: [`ServerState::prepare`] and
//! [`ServerState::release_prepared`]. The connection layer additionally
//! serves cache-hit releases directly ([`ServerState::cached_prepared`]
//! plus [`ServerState::release_prepared_traced`]) without queueing —
//! the zero-queue fast path.

use crate::ledger::{spent_by_dataset, GroupCommitLedger, Ledger, LedgerObs, SpendRecord};
use crate::obs::{Obs, Trace};
use crate::proto::ErrorCode;
use dataflow::columnar::{ColumnarBuf, ColumnarDataset};
use dataflow::Context;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use upa_core::domain::{ColumnarEmpiricalSampler, EmpiricalSampler};
use upa_core::query::MapReduceQuery;
use upa_core::{PreparedQuery, QueryAudit, Upa, UpaConfig, UpaError};
use upa_store::{Catalog, IngestOptions, IngestReport, Resident, StoreError};

/// An in-memory dataset the server answers queries over: named numeric
/// columns plus the row count (so `count` works on column-less tables).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name, as addressed by the protocol's `dataset` field.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Numeric columns by name.
    pub columns: HashMap<String, Vec<f64>>,
}

impl DatasetSpec {
    /// A dataset from named numeric columns (all columns must share the
    /// row count).
    pub fn new(name: impl Into<String>, rows: usize, columns: HashMap<String, Vec<f64>>) -> Self {
        DatasetSpec {
            name: name.into(),
            rows,
            columns,
        }
    }

    /// A synthetic dataset of `rows` records with one column `v` holding
    /// `i % modulus` — enough surface for benchmarks and tests.
    pub fn synthetic(name: impl Into<String>, rows: usize, modulus: usize) -> Self {
        let m = modulus.max(1);
        let values: Vec<f64> = (0..rows).map(|i| (i % m) as f64).collect();
        DatasetSpec {
            name: name.into(),
            rows,
            columns: HashMap::from([("v".to_string(), values)]),
        }
    }
}

/// The aggregate kinds the protocol serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Number of rows.
    Count,
    /// Sum of a column.
    Sum,
    /// Mean of a column.
    Mean,
}

impl AggKind {
    /// The protocol name.
    pub fn as_str(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Mean => "mean",
        }
    }
}

impl std::str::FromStr for AggKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "count" => Ok(AggKind::Count),
            "sum" => Ok(AggKind::Sum),
            "mean" => Ok(AggKind::Mean),
            other => Err(format!("unknown query '{other}' (count|sum|mean)")),
        }
    }
}

/// Builds the Map/Reduce decomposition of an aggregate over one numeric
/// column — the serving-side counterpart of the paper's Table I
/// operators, with a `(sum, count)` accumulator so `mean` finalizes
/// without a second pass.
pub fn build_agg_query(kind: AggKind) -> MapReduceQuery<f64, (f64, f64), f64> {
    MapReduceQuery::new(
        kind.as_str(),
        move |x: &f64| match kind {
            AggKind::Count => (1.0, 1.0),
            AggKind::Sum | AggKind::Mean => (*x, 1.0),
        },
        |a: &(f64, f64), b: &(f64, f64)| (a.0 + b.0, a.1 + b.1),
        move |acc: Option<&(f64, f64)>| match (kind, acc) {
            (_, None) => 0.0,
            (AggKind::Mean, Some((s, n))) => {
                if *n > 0.0 {
                    s / n
                } else {
                    0.0
                }
            }
            (_, Some((s, _))) => *s,
        },
    )
    .with_half_key(|x: &f64| x.to_bits())
    // Fused kernel for the columnar scan: the same half-key / map /
    // reduce composition, monomorphised so the per-record cost is a
    // branch and two adds instead of three dynamic dispatches. Fold
    // order is unchanged — `(s, n)` accumulates left to right exactly
    // as the tuple reducer does — so results stay bit-identical
    // (`fused_kernels_match_generic_fold` pins this).
    .with_slice_fold(move |slice: &[f64], _phys_half, acc| {
        for &x in slice {
            let h = (x.to_bits() % 2) as usize;
            let m = match kind {
                AggKind::Count => (1.0, 1.0),
                AggKind::Sum | AggKind::Mean => (x, 1.0),
            };
            match &mut acc[h] {
                Some(a) => *a = (a.0 + m.0, a.1 + m.1),
                None => acc[h] = Some(m),
            }
        }
    })
}

/// Deterministic fault injection for the serving path, extending the
/// engine's [`dataflow::FaultInjector`] idea to the release protocol.
/// The injected failure is a worker panic (the thread dies, the
/// connection drops without a reply) at a precise point relative to the
/// ledger append — either side of the crash-safety boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReleaseFault {
    /// Never fail.
    #[default]
    None,
    /// The `n`-th release attempt (0-based, across all connections) dies
    /// before its spend reaches the ledger: no spend, no result.
    BeforeLedger(usize),
    /// The `n`-th release attempt dies after its spend is fsync'd but
    /// before the result is delivered: a durable spend with no result —
    /// the fail-closed side the ledger's invariant permits.
    AfterLedger(usize),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Datasets to serve.
    pub datasets: Vec<DatasetSpec>,
    /// Total ε budget per dataset (`None` = unmetered; spends are still
    /// ledgered when a ledger path is set).
    pub budget: Option<f64>,
    /// Ledger path (`None` = no durability; spends live only in memory).
    pub ledger_path: Option<PathBuf>,
    /// Default per-release ε.
    pub epsilon: f64,
    /// UPA sample size `n`.
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Engine threads (0 = auto).
    pub threads: usize,
    /// Maximum concurrently served connections; excess connections are
    /// refused with a `busy` error (bounded accept backlog).
    pub max_connections: usize,
    /// Scheduler worker-pool size — the maximum concurrently *running*
    /// prepares/releases; excess requests queue per dataset.
    pub max_inflight_prepares: usize,
    /// Bound of each dataset's scheduler queue; a request arriving at a
    /// full queue is refused with `busy`.
    pub queue_capacity: usize,
    /// Group-commit window in microseconds: how long the ledger's
    /// committer thread lingers for straggling submitters before the
    /// shared fsync. A lone writer always commits immediately; `0`
    /// disables lingering entirely (batching then comes only from
    /// arrivals during the previous fsync).
    pub ledger_commit_us: u64,
    /// Prepared-query cache capacity; the least-recently-used entry is
    /// evicted on overflow. `0` means unbounded.
    pub cache_capacity: usize,
    /// Requests slower than this many milliseconds are logged at `warn`
    /// with their full trace (`None` disables slow-query logging).
    pub slow_query_ms: Option<u64>,
    /// How many finished request traces the `trace` op retains.
    pub trace_capacity: usize,
    /// Route the structured event log to stderr (the daemon turns this
    /// on; in-process embedders stay silent).
    pub log_stderr: bool,
    /// Serving-path fault injection (tests only).
    pub fault: ReleaseFault,
    /// Persistent dataset store directory (`None` = no store; only
    /// baked-in [`ServerConfig::datasets`] are served).
    pub store_path: Option<PathBuf>,
    /// Allow the `ingest`/`attach`/`detach` admin ops over the wire.
    pub allow_admin: bool,
    /// Store datasets to attach at startup (requires
    /// [`ServerConfig::store_path`]).
    pub attach: Vec<String>,
    /// Serve columnar-backed datasets (catalog attaches) through the
    /// zero-copy chunk kernels. On by default; benchmarks flip this off
    /// to measure the row path over identical data. Releases are
    /// bit-identical either way under the same seed.
    pub columnar: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            datasets: Vec::new(),
            budget: None,
            ledger_path: None,
            epsilon: 0.1,
            sample_size: 1000,
            seed: 0xDA7A,
            threads: 0,
            max_connections: 64,
            max_inflight_prepares: 4,
            queue_capacity: 64,
            ledger_commit_us: 200,
            cache_capacity: 256,
            slow_query_ms: None,
            trace_capacity: 256,
            log_stderr: false,
            fault: ReleaseFault::None,
            store_path: None,
            allow_admin: false,
            attach: Vec::new(),
            columnar: true,
        }
    }
}

/// Errors surfaced to protocol clients, each with a stable `code`.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No dataset of that name is registered.
    UnknownDataset(String),
    /// The dataset has no such numeric column.
    UnknownColumn { dataset: String, column: String },
    /// The request was malformed.
    BadRequest(String),
    /// The server is at a capacity bound (connection cap, or the
    /// dataset's scheduler queue is full).
    Busy,
    /// The request's `deadline_ms` expired before it could be served;
    /// it was shed from the queue without charging any budget.
    DeadlineExceeded,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The dataset's budget cannot cover the requested ε.
    BudgetExhausted { remaining: f64, requested: f64 },
    /// The ledger could not make the spend durable.
    Ledger(String),
    /// The pipeline failed.
    Pipeline(String),
    /// An admin op (`ingest`/`attach`/`detach`) arrived but the server
    /// was not started with `--allow-admin`.
    AdminDisabled,
    /// A dataset-store operation failed (no store configured, corrupt
    /// chunks, ingest I/O, …).
    Store(String),
}

impl ServeError {
    /// Stable machine-readable code, shared with the client through the
    /// closed [`ErrorCode`] enum.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::UnknownDataset(_) => ErrorCode::UnknownDataset,
            ServeError::UnknownColumn { .. } => ErrorCode::UnknownColumn,
            ServeError::BadRequest(_) => ErrorCode::BadRequest,
            ServeError::Busy => ErrorCode::Busy,
            ServeError::DeadlineExceeded => ErrorCode::Deadline,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::BudgetExhausted { .. } => ErrorCode::Budget,
            ServeError::Ledger(_) => ErrorCode::Ledger,
            ServeError::Pipeline(_) => ErrorCode::Pipeline,
            ServeError::AdminDisabled => ErrorCode::Admin,
            ServeError::Store(_) => ErrorCode::Store,
        }
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        match e {
            StoreError::NotFound(name) => ServeError::UnknownDataset(name),
            other => ServeError::Store(other.to_string()),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownDataset(d) => write!(f, "unknown dataset '{d}'"),
            ServeError::UnknownColumn { dataset, column } => {
                write!(f, "dataset '{dataset}' has no numeric column '{column}'")
            }
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Busy => write!(f, "server busy: at capacity (connection or queue limit)"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the request could be served")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BudgetExhausted {
                remaining,
                requested,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            ServeError::Ledger(m) => write!(f, "ledger failure: {m}"),
            ServeError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            ServeError::AdminDisabled => {
                write!(f, "admin ops are disabled (start with --allow-admin)")
            }
            ServeError::Store(m) => write!(f, "store error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The serving aggregate's prepared state (phases 1–3 of Algorithm 1).
pub type PreparedAgg = PreparedQuery<f64, (f64, f64), f64>;

/// Cache key: `(dataset, aggregate, column)`.
type QueryKey = (String, AggKind, String);

/// One served column's storage. Baked-in [`DatasetSpec`]s carry flat
/// vectors; catalog attaches hand over the store's chunk buffers
/// untouched, so the columnar serving path scans the very bytes the
/// loader decoded — no re-materialised `Vec<f64>` anywhere between disk
/// and kernel.
#[derive(Debug, Clone)]
enum ColumnHandle {
    /// Flat values behind an `Arc` (in-memory [`DatasetSpec`]s).
    Row(Arc<Vec<f64>>),
    /// Shared store chunks in their on-disk layout (catalog attaches).
    Columnar(ColumnarBuf),
}

impl ColumnHandle {
    fn len(&self) -> usize {
        match self {
            ColumnHandle::Row(v) => v.len(),
            ColumnHandle::Columnar(buf) => buf.len(),
        }
    }

    /// Flattens to a plain vector — the row path's (copying) view.
    fn to_vec(&self) -> Vec<f64> {
        match self {
            ColumnHandle::Row(v) => v.as_ref().clone(),
            ColumnHandle::Columnar(buf) => buf.to_vec(),
        }
    }
}

struct DatasetState {
    name: String,
    rows: usize,
    /// Column storage handles: attaching from the catalog shares the
    /// catalog's chunk buffers instead of copying them, and a dataset
    /// detached mid-query stays alive until its last in-flight release
    /// drops the handle.
    columns: HashMap<String, ColumnHandle>,
    /// Whether the dataset is columnar-backed (a catalog attach), so
    /// column-less `count` queries know which execution path owns it.
    columnar: bool,
    resident_bytes: usize,
    upa: Mutex<Upa>,
}

impl DatasetState {
    fn from_spec(spec: &DatasetSpec, upa: Upa) -> DatasetState {
        let columns: HashMap<String, ColumnHandle> = spec
            .columns
            .iter()
            .map(|(name, values)| (name.clone(), ColumnHandle::Row(Arc::new(values.clone()))))
            .collect();
        let resident_bytes = columns.values().map(|v| v.len() * 8).sum();
        DatasetState {
            name: spec.name.clone(),
            rows: spec.rows,
            columns,
            columnar: false,
            resident_bytes,
            upa: Mutex::new(upa),
        }
    }

    fn from_resident(resident: &Resident, upa: Upa) -> DatasetState {
        DatasetState {
            name: resident.name.clone(),
            rows: resident.rows,
            columns: resident
                .columns
                .iter()
                .map(|(name, buf)| (name.clone(), ColumnHandle::Columnar(buf.clone())))
                .collect(),
            columnar: true,
            resident_bytes: resident.resident_bytes,
            upa: Mutex::new(upa),
        }
    }
}

/// One served dataset's shape, as reported by the `datasets` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Column names, sorted.
    pub columns: Vec<String>,
    /// Bytes of column values held in memory.
    pub resident_bytes: u64,
}

/// The result of a successful `attach`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachOutcome {
    /// Dataset name.
    pub dataset: String,
    /// Row count of the freshly loaded data.
    pub rows: u64,
    /// Bytes now resident for this dataset.
    pub resident_bytes: u64,
    /// Whether this replaced an existing residency (a reload).
    pub reloaded: bool,
}

/// One dataset's lock-free budget shard: `total` is immutable, `spent`
/// is the `f64` bit pattern in an atomic, advanced by CAS. Reservations
/// are the serving fast path's admission check — no mutex, no queue.
#[derive(Debug)]
pub struct AtomicBudget {
    total: f64,
    spent_bits: AtomicU64,
}

impl AtomicBudget {
    fn new(total: f64, spent: f64) -> AtomicBudget {
        AtomicBudget {
            total,
            spent_bits: AtomicU64::new(spent.to_bits()),
        }
    }

    /// The configured total ε.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε charged so far.
    pub fn spent(&self) -> f64 {
        f64::from_bits(self.spent_bits.load(Ordering::Acquire))
    }

    /// ε still available (clamped at zero).
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent()).max(0.0)
    }

    /// Atomically reserves `epsilon`, returning the remaining budget
    /// after the charge; refuses (returning the untouched remaining)
    /// when the budget cannot cover it. The `1e-12` tolerance matches
    /// [`upa_core::budget::BudgetAccountant::try_spend`], so a budget
    /// sized as an exact multiple of ε fills to the last release.
    pub fn try_reserve(&self, epsilon: f64) -> Result<f64, f64> {
        loop {
            let cur_bits = self.spent_bits.load(Ordering::Acquire);
            let cur = f64::from_bits(cur_bits);
            let next = cur + epsilon;
            if next > self.total + 1e-12 {
                return Err((self.total - cur).max(0.0));
            }
            if self
                .spent_bits
                .compare_exchange(
                    cur_bits,
                    next.to_bits(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return Ok((self.total - next).max(0.0));
            }
        }
    }

    /// Returns a reservation whose spend never became durable (ledger
    /// write/fsync failure). Clamped at zero so a refund can never
    /// manufacture budget.
    pub fn refund(&self, epsilon: f64) {
        loop {
            let cur_bits = self.spent_bits.load(Ordering::Acquire);
            let next = (f64::from_bits(cur_bits) - epsilon).max(0.0);
            if self
                .spent_bits
                .compare_exchange(
                    cur_bits,
                    next.to_bits(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
        }
    }
}

struct CacheEntry {
    prepared: Arc<PreparedAgg>,
    last_used: u64,
}

/// The LRU-bounded prepared-query cache. The mutex guards only map
/// lookups and recency stamps (nanoseconds of hold time); the heavy
/// engine work happens outside it.
struct PreparedCache {
    capacity: usize,
    clock: AtomicU64,
    entries: Mutex<HashMap<QueryKey, CacheEntry>>,
}

impl PreparedCache {
    fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity,
            clock: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    fn get(&self, key: &QueryKey) -> Option<Arc<PreparedAgg>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.lock().expect("cache poisoned");
        entries.get_mut(key).map(|e| {
            e.last_used = stamp;
            Arc::clone(&e.prepared)
        })
    }

    /// Inserts (or refreshes) `key`; returns `true` when a
    /// least-recently-used entry was evicted to make room.
    fn insert(&self, key: QueryKey, prepared: Arc<PreparedAgg>) -> bool {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = self.entries.lock().expect("cache poisoned");
        let mut evicted = false;
        if self.capacity > 0 && !entries.contains_key(&key) && entries.len() >= self.capacity {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                evicted = true;
            }
        }
        entries.insert(
            key,
            CacheEntry {
                prepared,
                last_used: stamp,
            },
        );
        evicted
    }

    /// Drops every cached prepare for `dataset` — attach (the data may
    /// have changed on disk) and detach (the data is gone) both
    /// invalidate its entries.
    fn purge_dataset(&self, dataset: &str) {
        self.entries
            .lock()
            .expect("cache poisoned")
            .retain(|key, _| key.0 != dataset);
    }
}

/// The outcome of a successful release.
#[derive(Debug, Clone)]
pub struct ReleaseOutcome {
    /// Query identity (`dataset/kind/column`).
    pub query_id: String,
    /// The noisy value delivered to the analyst.
    pub released: f64,
    /// The ε charged.
    pub epsilon: f64,
    /// Laplace noise scale (`sensitivity / ε`).
    pub noise_scale: f64,
    /// Effective sample size of the preparation.
    pub sample_size: usize,
    /// Budget remaining after the charge (`None` when unmetered).
    pub budget_remaining: Option<f64>,
    /// Whether the prepared state was already cached when this release
    /// started. [`ServerState::release_prepared`] callers own the
    /// prepare, so they stamp this themselves; the composed
    /// [`ServerState::release`] sets it from its own cache probe.
    pub cached: bool,
    /// Wall-clock microseconds of the cold prepare that backed this
    /// release (`None` on a cache hit).
    pub prepare_us: Option<u64>,
    /// The release's audit record, when the caller asked for it.
    pub audit: Option<QueryAudit>,
}

/// The shared state behind every connection worker.
pub struct ServerState {
    config: ServerConfig,
    ctx: Context,
    /// Served datasets. The `RwLock` is short-hold by construction:
    /// writers (attach/detach) only swap an `Arc` in or out — chunk
    /// loading happens before the lock — so in-flight releases on other
    /// datasets never stall behind an admin op.
    datasets: RwLock<HashMap<String, Arc<DatasetState>>>,
    prepared: PreparedCache,
    /// Per-dataset budget shards (empty when unmetered). Entries are
    /// *never removed*: a detach leaves its dataset's spent ε in place,
    /// so a detach/re-attach cycle cannot launder budget.
    budgets: RwLock<HashMap<String, Arc<AtomicBudget>>>,
    /// The persistent store's live catalog (present only when a store
    /// path is configured).
    catalog: Option<Catalog>,
    /// Spent ε per dataset as replayed from the ledger at startup —
    /// consulted when a dataset attaches after startup, so its shard
    /// starts from the durable record rather than zero.
    replayed_spent: HashMap<String, f64>,
    /// The group-commit ledger (present only when a ledger path is set);
    /// internally synchronized, shared by every connection thread.
    ledger: Option<GroupCommitLedger>,
    release_seq: AtomicUsize,
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    obs: Arc<Obs>,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("datasets", &self.dataset_names().len())
            .field("epsilon", &self.config.epsilon)
            .finish()
    }
}

impl ServerState {
    /// Builds the state: spins up the engine, loads datasets, opens and
    /// replays the ledger, restores accountants.
    ///
    /// # Errors
    ///
    /// Ledger I/O or corruption errors.
    pub fn new(config: ServerConfig) -> std::io::Result<ServerState> {
        let ctx = if config.threads == 0 {
            Context::default()
        } else {
            Context::with_threads(config.threads)
        };
        let obs = Arc::new(Obs::new(
            config.slow_query_ms,
            config.trace_capacity,
            config.log_stderr,
        ));
        let (ledger, replayed) = match &config.ledger_path {
            Some(path) => {
                let (ledger, records) = Ledger::open(path)?;
                let group = GroupCommitLedger::spawn(
                    ledger,
                    Duration::from_micros(config.ledger_commit_us),
                    Some(LedgerObs {
                        fsyncs: Arc::clone(&obs.m.ledger_fsyncs),
                        batch_size: Arc::clone(&obs.m.ledger_batch_size),
                        commit_wait: Arc::clone(&obs.m.ledger_commit_wait),
                    }),
                );
                (Some(group), records)
            }
            None => (None, Vec::new()),
        };
        let spent = spent_by_dataset(&replayed);
        let mut datasets = HashMap::new();
        let mut budgets = HashMap::new();
        for (i, spec) in config.datasets.iter().enumerate() {
            let upa_config = UpaConfig {
                epsilon: config.epsilon,
                sample_size: config.sample_size,
                seed: config.seed.wrapping_add(i as u64),
                ..UpaConfig::default()
            };
            datasets.insert(
                spec.name.clone(),
                Arc::new(DatasetState::from_spec(
                    spec,
                    Upa::new(ctx.clone(), upa_config),
                )),
            );
            if let Some(total) = config.budget {
                let used = spent.get(&spec.name).copied().unwrap_or(0.0);
                budgets.insert(spec.name.clone(), Arc::new(AtomicBudget::new(total, used)));
            }
        }
        let catalog = match &config.store_path {
            Some(root) => Some(
                Catalog::open(root, config.threads.max(2))
                    .map_err(|e| std::io::Error::other(e.to_string()))?,
            ),
            None => None,
        };
        let state = ServerState {
            ctx,
            datasets: RwLock::new(datasets),
            prepared: PreparedCache::new(config.cache_capacity),
            budgets: RwLock::new(budgets),
            catalog,
            replayed_spent: spent,
            ledger,
            release_seq: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            obs,
            config,
        };
        for name in state.config.attach.clone() {
            state
                .attach_dataset(&name)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        Ok(state)
    }

    /// The observability hub (metrics registry, trace ring, event log).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The engine context (shared by every dataset's `Upa`).
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .read()
            .expect("datasets poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Whether a dataset of that name is currently served.
    pub fn has_dataset(&self, name: &str) -> bool {
        self.datasets
            .read()
            .expect("datasets poisoned")
            .contains_key(name)
    }

    /// Every served dataset's shape, sorted by name.
    pub fn dataset_infos(&self) -> Vec<DatasetInfo> {
        let mut infos: Vec<DatasetInfo> = self
            .datasets
            .read()
            .expect("datasets poisoned")
            .values()
            .map(|ds| {
                let mut columns: Vec<String> = ds.columns.keys().cloned().collect();
                columns.sort_unstable();
                DatasetInfo {
                    name: ds.name.clone(),
                    rows: ds.rows as u64,
                    columns,
                    resident_bytes: ds.resident_bytes as u64,
                }
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// The live catalog, when a store is configured.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog.as_ref()
    }

    /// Datasets published in the store but not currently served, sorted
    /// (empty without a store).
    pub fn available_datasets(&self) -> Vec<String> {
        let Some(catalog) = &self.catalog else {
            return Vec::new();
        };
        let served = self.datasets.read().expect("datasets poisoned");
        let mut names: Vec<String> = catalog
            .available()
            .unwrap_or_default()
            .into_iter()
            .filter(|n| !served.contains_key(n))
            .collect();
        drop(served);
        names.sort_unstable();
        names
    }

    // ---- store admin ops ------------------------------------------------

    fn require_catalog(&self) -> Result<&Catalog, ServeError> {
        self.catalog
            .as_ref()
            .ok_or_else(|| ServeError::Store("no store directory configured".into()))
    }

    /// Seeds a freshly attached dataset's engine deterministically from
    /// the configured seed and the dataset name (attach order must not
    /// change the noise stream).
    fn attach_seed(&self, name: &str) -> u64 {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        self.config.seed ^ hasher.finish()
    }

    /// Ensures a metered dataset has a budget shard, seeding its spent ε
    /// from the ledger replay. Existing shards — including those left by
    /// a detach — are kept untouched, so re-attaching never resets spend.
    fn ensure_budget(&self, name: &str) {
        if let Some(total) = self.config.budget {
            let mut budgets = self.budgets.write().expect("budgets poisoned");
            budgets.entry(name.to_string()).or_insert_with(|| {
                let used = self.replayed_spent.get(name).copied().unwrap_or(0.0);
                Arc::new(AtomicBudget::new(total, used))
            });
        }
    }

    /// Attaches (or reloads) a store dataset into the serving set. The
    /// chunk load runs before any lock is taken; the datasets write lock
    /// is held only for the map insert. The dataset's budget shard —
    /// with any spend from a previous residency or the ledger replay —
    /// survives the cycle.
    ///
    /// # Errors
    ///
    /// Unknown dataset, corrupt chunks, or no configured store.
    pub fn attach_dataset(&self, name: &str) -> Result<AttachOutcome, ServeError> {
        let catalog = self.require_catalog()?;
        let (resident, reloaded) = catalog.attach(name)?;
        let upa_config = UpaConfig {
            epsilon: self.config.epsilon,
            sample_size: self.config.sample_size,
            seed: self.attach_seed(name),
            ..UpaConfig::default()
        };
        let ds = Arc::new(DatasetState::from_resident(
            &resident,
            Upa::new(self.ctx.clone(), upa_config),
        ));
        self.datasets
            .write()
            .expect("datasets poisoned")
            .insert(name.to_string(), ds);
        // Any cached prepare was computed over the previous data.
        self.prepared.purge_dataset(name);
        self.ensure_budget(name);
        Ok(AttachOutcome {
            dataset: name.to_string(),
            rows: resident.rows as u64,
            resident_bytes: resident.resident_bytes as u64,
            reloaded,
        })
    }

    /// Removes a dataset from the serving set. In-flight releases finish
    /// on their `Arc`s; the budget shard stays, so spent ε survives a
    /// detach/re-attach cycle.
    ///
    /// # Errors
    ///
    /// Unknown dataset.
    pub fn detach_dataset(&self, name: &str) -> Result<(), ServeError> {
        self.datasets
            .write()
            .expect("datasets poisoned")
            .remove(name)
            .ok_or_else(|| ServeError::UnknownDataset(name.to_string()))?;
        if let Some(catalog) = &self.catalog {
            let _ = catalog.detach(name);
        }
        self.prepared.purge_dataset(name);
        Ok(())
    }

    /// Ingests a server-local CSV file into the store (columns that
    /// parse fully as numbers; others are skipped). The dataset is
    /// published atomically but *not* attached — serving it is a
    /// separate, explicit `attach`.
    ///
    /// # Errors
    ///
    /// Missing store, unreadable file, CSV/ingest failures, or an
    /// existing dataset of the same name.
    pub fn ingest_csv_file(
        &self,
        path: &Path,
        dataset: Option<&str>,
    ) -> Result<IngestReport, ServeError> {
        let catalog = self.require_catalog()?;
        let name = match dataset {
            Some(name) => name.to_string(),
            None => path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
                .ok_or_else(|| {
                    ServeError::BadRequest("cannot derive a dataset name from the path".into())
                })?,
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Store(format!("read {}: {e}", path.display())))?;
        Ok(catalog
            .store()
            .ingest_csv(&name, &text, &IngestOptions::default())?)
    }

    /// Number of cached prepared queries.
    pub fn prepared_len(&self) -> usize {
        self.prepared.len()
    }

    /// Drops every cached prepare for `dataset` without touching its
    /// residency — the cold-prepare benchmarks' reset button.
    pub fn invalidate_prepared(&self, dataset: &str) {
        self.prepared.purge_dataset(dataset);
    }

    // ---- shutdown & admission ------------------------------------------

    /// Flags the server as draining; new requests are refused.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Tries to admit a connection against the cap; the guard releases
    /// the slot on drop.
    pub fn admit_connection(self: &Arc<Self>) -> Result<ConnectionGuard, ServeError> {
        if self.is_shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        let prev = self.active_connections.fetch_add(1, Ordering::SeqCst);
        if prev >= self.config.max_connections {
            self.active_connections.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::Busy);
        }
        Ok(ConnectionGuard {
            state: Arc::clone(self),
        })
    }

    /// Currently admitted connections.
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::SeqCst)
    }

    // ---- query path -----------------------------------------------------

    /// Clones the dataset's `Arc` out under the read lock; callers keep
    /// working on it even if the dataset is detached meanwhile.
    fn dataset(&self, name: &str) -> Result<Arc<DatasetState>, ServeError> {
        self.datasets
            .read()
            .expect("datasets poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownDataset(name.to_string()))
    }

    fn column_values(
        &self,
        ds: &DatasetState,
        kind: AggKind,
        column: &str,
    ) -> Result<Vec<f64>, ServeError> {
        if kind == AggKind::Count && column.is_empty() {
            return Ok(vec![0.0; ds.rows]);
        }
        ds.columns
            .get(column)
            .map(ColumnHandle::to_vec)
            .ok_or_else(|| ServeError::UnknownColumn {
                dataset: ds.name.clone(),
                column: column.to_string(),
            })
    }

    /// The chunk buffer to scan when this query should take the
    /// columnar path: the dataset is catalog-backed, columnar serving
    /// is enabled, and the addressed column holds shared chunks.
    /// `Ok(None)` routes to the row path; column-less `count` over a
    /// columnar dataset synthesises a single zero chunk, mirroring the
    /// row path's `vec![0.0; rows]` (bit-identical — chunk layout never
    /// reaches the fold boundaries).
    fn columnar_column(
        &self,
        ds: &DatasetState,
        kind: AggKind,
        column: &str,
    ) -> Result<Option<ColumnarBuf>, ServeError> {
        if !self.config.columnar {
            return Ok(None);
        }
        if kind == AggKind::Count && column.is_empty() {
            return Ok(ds.columnar.then(|| ColumnarBuf::zeros(ds.rows)));
        }
        match ds.columns.get(column) {
            Some(ColumnHandle::Columnar(buf)) => Ok(Some(buf.clone())),
            Some(ColumnHandle::Row(_)) => Ok(None),
            None => Err(ServeError::UnknownColumn {
                dataset: ds.name.clone(),
                column: column.to_string(),
            }),
        }
    }

    /// Canonical query identity.
    pub fn query_id(dataset: &str, kind: AggKind, column: &str) -> String {
        format!("{dataset}/{}/{column}", kind.as_str())
    }

    /// The cached prepared state for `(dataset, kind, column)`, if any —
    /// the zero-queue fast path's dispatch check, and the scheduler's
    /// single-flight double-check. A hit refreshes the entry's LRU
    /// recency.
    pub fn cached_prepared(
        &self,
        dataset: &str,
        kind: AggKind,
        column: &str,
    ) -> Option<Arc<PreparedAgg>> {
        let key: QueryKey = (dataset.to_string(), kind, column.to_string());
        self.prepared.get(&key)
    }

    /// Phases 1–3: prepares (or fetches from the shared cache) the query
    /// state. Returns `(prepared, query_id, cache_hit)`. The cache is
    /// shared across connections, so repeated releases of the same query
    /// reuse the engine work regardless of which client asked first.
    ///
    /// Concurrent callers with the same key may both run the engine (the
    /// cache stays consistent — last insert wins); the scheduler's
    /// single-flight layer is what guarantees one prepare per key under
    /// concurrency.
    ///
    /// # Errors
    ///
    /// Unknown dataset/column, or a pipeline failure.
    pub fn prepare(
        &self,
        dataset: &str,
        kind: AggKind,
        column: &str,
    ) -> Result<(Arc<PreparedAgg>, String, bool), ServeError> {
        let query_id = Self::query_id(dataset, kind, column);
        let key: QueryKey = (dataset.to_string(), kind, column.to_string());
        if let Some(p) = self.prepared.get(&key) {
            return Ok((p, query_id, true));
        }
        let ds = self.dataset(dataset)?;
        let query = build_agg_query(kind);
        let prepared = if let Some(buf) = self.columnar_column(&ds, kind, column)? {
            // Zero-copy cold path: phases 1–3 run chunk-at-a-time over
            // the store's shared buffers; the domain sampler resamples
            // straight from the same chunks. Bit-identical to the row
            // path under the same seed.
            let data = ColumnarDataset::new(&self.ctx, buf.clone());
            let domain = ColumnarEmpiricalSampler::new(buf);
            let mut upa = ds.upa.lock().expect("engine poisoned");
            upa.prepare_columnar(&data, &query, &domain)
                .map_err(|e| ServeError::Pipeline(e.to_string()))?
        } else {
            let values = self.column_values(&ds, kind, column)?;
            let data = self.ctx.parallelize_default(values.clone());
            let domain = EmpiricalSampler::new(values);
            let mut upa = ds.upa.lock().expect("engine poisoned");
            upa.prepare(&data, &query, &domain)
                .map_err(|e| ServeError::Pipeline(e.to_string()))?
        };
        let prepared = Arc::new(prepared);
        if self.prepared.insert(key, Arc::clone(&prepared)) {
            self.obs.m.cache_evictions.inc();
        }
        Ok((prepared, query_id, false))
    }

    /// Charges `epsilon` against `dataset`'s budget and makes the spend
    /// durable. This is the crash-safety boundary: once this returns
    /// `Ok`, the spend survives any crash; the caller may then (and only
    /// then) compute and deliver the noisy output.
    ///
    /// Lock-free: the budget check-and-reserve is one CAS on the
    /// dataset's [`AtomicBudget`] shard; durability is a submission to
    /// the group-commit ledger, which blocks until the record — batched
    /// with every concurrent spend — survives one shared fsync. A
    /// refused reservation leaves no ledger trace; a failed fsync
    /// refunds the reservation, so an I/O failure never leaks
    /// accounted-but-lost budget.
    ///
    /// # Errors
    ///
    /// Budget exhaustion, or a ledger append/fsync failure (in which
    /// case nothing stays charged).
    pub fn spend(
        &self,
        dataset: &str,
        query_id: &str,
        epsilon: f64,
    ) -> Result<Option<f64>, ServeError> {
        // Clone the shard `Arc` out once; the budgets lock is never held
        // across the reserve, the ledger fsync, or the refund.
        let shard = self
            .budgets
            .read()
            .expect("budgets poisoned")
            .get(dataset)
            .cloned();
        let reserved = match &shard {
            Some(shard) => Some(shard.try_reserve(epsilon).map_err(|remaining| {
                ServeError::BudgetExhausted {
                    remaining,
                    requested: epsilon,
                }
            })?),
            None => None,
        };
        if let Some(ledger) = &self.ledger {
            let submitted = ledger.submit(&SpendRecord {
                dataset: dataset.to_string(),
                query_id: query_id.to_string(),
                epsilon,
            });
            if let Err(msg) = submitted {
                if let Some(shard) = &shard {
                    shard.refund(epsilon);
                }
                return Err(ServeError::Ledger(msg));
            }
        }
        Ok(reserved)
    }

    /// The full release path: prepare (or cache-hit), charge + fsync the
    /// spend, then draw the noisy output. Convenience composition of
    /// [`ServerState::prepare`] and [`ServerState::release_prepared`]
    /// for in-process embedding; the daemon routes through the scheduler
    /// instead so identical concurrent prepares coalesce.
    ///
    /// # Errors
    ///
    /// Any of [`ServerState::prepare`] / [`ServerState::spend`] errors,
    /// or a pipeline failure in the release phase.
    pub fn release(
        &self,
        dataset: &str,
        kind: AggKind,
        column: &str,
        epsilon: Option<f64>,
        want_audit: bool,
    ) -> Result<ReleaseOutcome, ServeError> {
        let epsilon = epsilon.unwrap_or(self.config.epsilon);
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(ServeError::BadRequest("epsilon must be positive".into()));
        }
        let prep_start = Instant::now();
        let (prepared, query_id, cached) = self.prepare(dataset, kind, column)?;
        let prepare_us = (!cached).then(|| prep_start.elapsed().as_micros() as u64);
        let mut out =
            self.release_prepared(dataset, &query_id, &prepared, Some(epsilon), want_audit)?;
        out.cached = cached;
        out.prepare_us = prepare_us;
        Ok(out)
    }

    /// Phase 4 against already-prepared state: charge + fsync the spend,
    /// then draw one fresh noisy output from `prepared`. Every caller
    /// sharing one `prepared` gets an independent Laplace draw, and the
    /// budget is charged once per call — per release, not per prepare.
    ///
    /// # Errors
    ///
    /// Bad ε, budget/ledger refusals, or a pipeline failure.
    pub fn release_prepared(
        &self,
        dataset: &str,
        query_id: &str,
        prepared: &Arc<PreparedAgg>,
        epsilon: Option<f64>,
        want_audit: bool,
    ) -> Result<ReleaseOutcome, ServeError> {
        self.release_prepared_traced(dataset, query_id, prepared, epsilon, want_audit, None)
    }

    /// [`ServerState::release_prepared`] with span recording: the
    /// ledger-fsync and noise-draw timings land in the metrics
    /// histograms always, and as spans on `trace` when one is threaded
    /// through — along with the engine's audit span tree, rebased under
    /// `engine/`.
    ///
    /// # Errors
    ///
    /// As [`ServerState::release_prepared`].
    pub fn release_prepared_traced(
        &self,
        dataset: &str,
        query_id: &str,
        prepared: &Arc<PreparedAgg>,
        epsilon: Option<f64>,
        want_audit: bool,
        trace: Option<&Trace>,
    ) -> Result<ReleaseOutcome, ServeError> {
        let epsilon = epsilon.unwrap_or(self.config.epsilon);
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(ServeError::BadRequest("epsilon must be positive".into()));
        }
        if let Some(t) = trace {
            t.set_query_id(query_id);
        }
        let seq = self.release_seq.fetch_add(1, Ordering::SeqCst);
        // Fault points sit outside every lock so an injected panic kills
        // only this worker, never poisons shared state.
        if self.config.fault == ReleaseFault::BeforeLedger(seq) {
            panic!("injected fault: release {seq} dies before the ledger append");
        }
        let spend_start = Instant::now();
        let budget_remaining = self.spend(dataset, query_id, epsilon)?;
        if self.config.ledger_path.is_some() {
            // The spend is dominated by the ledger append + fsync; only
            // record it when a ledger is actually on the path.
            self.obs
                .m
                .ledger_fsync
                .record_duration(spend_start.elapsed());
            if let Some(t) = trace {
                t.span_since("ledger_fsync", spend_start);
            }
        }
        if self.config.fault == ReleaseFault::AfterLedger(seq) {
            panic!("injected fault: release {seq} dies after the ledger fsync");
        }

        let ds = self.dataset(dataset)?;
        let (result, audit) = {
            let mut upa = ds.upa.lock().expect("engine poisoned");
            upa.set_epsilon(epsilon)
                .map_err(|e: UpaError| ServeError::BadRequest(e.to_string()))?;
            let noise_start = Instant::now();
            let result = upa
                .release(prepared)
                .map_err(|e| ServeError::Pipeline(e.to_string()))?;
            self.obs.m.noise_draw.record_duration(noise_start.elapsed());
            if let Some(t) = trace {
                t.span_since("noise_draw", noise_start);
                // Graft the engine's view of this release under the
                // server trace, whether or not the client asked for the
                // audit payload.
                if let Some(a) = upa.last_audit() {
                    t.graft_engine(a.spans_rebased("engine"));
                }
            }
            let audit = want_audit.then(|| {
                let mut audit = upa.last_audit().cloned().expect("release records an audit");
                // The server's accountant is authoritative (the engine's
                // own budget is unset), so stamp the remaining budget in.
                audit.budget_remaining = budget_remaining;
                audit
            });
            (result, audit)
        };
        Ok(ReleaseOutcome {
            query_id: query_id.to_string(),
            released: result.released,
            epsilon,
            noise_scale: result.max_sensitivity() / epsilon,
            sample_size: result.sample_size,
            budget_remaining,
            // Callers that ran their own (cold) prepare restamp these.
            cached: true,
            prepare_us: None,
            audit,
        })
    }

    /// The dataset's budget as `(total, spent, remaining)` (`None` when
    /// unmetered).
    ///
    /// # Errors
    ///
    /// Unknown dataset.
    pub fn budget_of(&self, dataset: &str) -> Result<Option<(f64, f64, f64)>, ServeError> {
        self.dataset(dataset)?;
        Ok(self
            .budgets
            .read()
            .expect("budgets poisoned")
            .get(dataset)
            .map(|b| (b.total(), b.spent(), b.remaining())))
    }

    /// Every metered dataset's budget as `(name, total, spent,
    /// remaining)`, sorted by name — the `metrics` op's per-dataset
    /// ε-remaining gauges.
    pub fn budgets(&self) -> Vec<(String, f64, f64, f64)> {
        let mut out: Vec<_> = self
            .budgets
            .read()
            .expect("budgets poisoned")
            .iter()
            .map(|(name, b)| (name.clone(), b.total(), b.spent(), b.remaining()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The dataset's most recent `last` audits, oldest first.
    ///
    /// # Errors
    ///
    /// Unknown dataset.
    pub fn audits_of(&self, dataset: &str, last: usize) -> Result<Vec<QueryAudit>, ServeError> {
        let ds = self.dataset(dataset)?;
        let upa = ds.upa.lock().expect("engine poisoned");
        let audits = upa.audits();
        let skip = audits.len().saturating_sub(last);
        Ok(audits.iter().skip(skip).cloned().collect())
    }

    /// JSON audits of the dataset's most recent `last` releases, oldest
    /// first.
    ///
    /// # Errors
    ///
    /// Unknown dataset.
    pub fn audits_json(&self, dataset: &str, last: usize) -> Result<Vec<String>, ServeError> {
        Ok(self
            .audits_of(dataset, last)?
            .iter()
            .map(QueryAudit::to_json)
            .collect())
    }
}

/// RAII connection slot; frees the admission counter on drop.
#[derive(Debug)]
pub struct ConnectionGuard {
    state: Arc<ServerState>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.state.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(budget: Option<f64>, ledger: Option<PathBuf>) -> Arc<ServerState> {
        Arc::new(
            ServerState::new(ServerConfig {
                datasets: vec![DatasetSpec::synthetic("data", 2_000, 9)],
                budget,
                ledger_path: ledger,
                epsilon: 0.4,
                sample_size: 40,
                threads: 2,
                ..ServerConfig::default()
            })
            .unwrap(),
        )
    }

    fn temp_ledger(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("upa_state_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("{tag}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn prepare_caches_across_callers() {
        let state = state_with(None, None);
        let (_, id1, hit1) = state.prepare("data", AggKind::Sum, "v").unwrap();
        let (_, id2, hit2) = state.prepare("data", AggKind::Sum, "v").unwrap();
        assert_eq!(id1, "data/sum/v");
        assert_eq!(id1, id2);
        assert!(!hit1);
        assert!(hit2, "second prepare must be a cache hit");
        assert_eq!(state.prepared_len(), 1);
        // A different aggregate is a different cache entry.
        let (_, _, hit3) = state.prepare("data", AggKind::Mean, "v").unwrap();
        assert!(!hit3);
        assert_eq!(state.prepared_len(), 2);
    }

    #[test]
    fn release_charges_budget_and_persists() {
        let path = temp_ledger("charge");
        let state = state_with(Some(1.0), Some(path.clone()));
        let out = state
            .release("data", AggKind::Count, "", None, true)
            .unwrap();
        assert_eq!(out.query_id, "data/count/");
        assert_eq!(out.epsilon, 0.4);
        assert!((out.budget_remaining.unwrap() - 0.6).abs() < 1e-9);
        let audit = out.audit.expect("audit requested");
        assert_eq!(audit.query, "count");
        assert_eq!(audit.budget_remaining, Some(out.budget_remaining.unwrap()));

        // Restart against the same ledger: the spend survives.
        drop(state);
        let state2 = state_with(Some(1.0), Some(path.clone()));
        let (total, spent, remaining) = state2.budget_of("data").unwrap().unwrap();
        assert_eq!(total, 1.0);
        assert!((spent - 0.4).abs() < 1e-9);
        assert!((remaining - 0.6).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn over_budget_release_is_refused_without_ledger_trace() {
        let path = temp_ledger("refuse");
        let state = state_with(Some(0.5), Some(path.clone()));
        assert!(state
            .release("data", AggKind::Sum, "v", None, false)
            .is_ok());
        let err = state
            .release("data", AggKind::Sum, "v", None, false)
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::Budget);
        // The refused spend left no ledger line.
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_dataset_and_column_are_clean_errors() {
        let state = state_with(None, None);
        assert_eq!(
            state
                .release("nope", AggKind::Count, "", None, false)
                .unwrap_err()
                .code(),
            ErrorCode::UnknownDataset
        );
        assert_eq!(
            state
                .release("data", AggKind::Sum, "wrong", None, false)
                .unwrap_err()
                .code(),
            ErrorCode::UnknownColumn
        );
        assert_eq!(
            state
                .release("data", AggKind::Sum, "v", Some(-1.0), false)
                .unwrap_err()
                .code(),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn count_without_column_uses_row_count() {
        let state = state_with(None, None);
        let out = state
            .release("data", AggKind::Count, "", None, true)
            .unwrap();
        assert_eq!(out.sample_size, 40);
        let audit = out.audit.unwrap();
        assert_eq!(audit.query, "count");
    }

    #[test]
    fn releases_reuse_prepared_state_with_fresh_noise() {
        let state = state_with(None, None);
        let before = state.ctx().metrics();
        let a = state
            .release("data", AggKind::Sum, "v", None, false)
            .unwrap();
        let after_first = state.ctx().metrics().since(&before);
        assert!(after_first.stages > 0, "first release runs the engine");
        let mid = state.ctx().metrics();
        let b = state
            .release("data", AggKind::Sum, "v", None, false)
            .unwrap();
        let delta = state.ctx().metrics().since(&mid);
        assert_eq!(delta.stages, 0, "cached release must run no engine stages");
        assert_ne!(a.released, b.released, "fresh noise per release");
    }

    #[test]
    fn per_release_epsilon_override() {
        let state = state_with(Some(1.0), None);
        let out = state
            .release("data", AggKind::Count, "", Some(0.25), false)
            .unwrap();
        assert_eq!(out.epsilon, 0.25);
        assert!((out.budget_remaining.unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn release_prepared_draws_fresh_noise_per_caller() {
        let state = state_with(Some(2.0), None);
        let (prepared, query_id, _) = state.prepare("data", AggKind::Sum, "v").unwrap();
        let a = state
            .release_prepared("data", &query_id, &prepared, None, false)
            .unwrap();
        let b = state
            .release_prepared("data", &query_id, &prepared, None, false)
            .unwrap();
        assert_ne!(a.released, b.released, "independent draws");
        // Budget charged once per release, never per prepare.
        let (_, spent, _) = state.budget_of("data").unwrap().unwrap();
        assert!((spent - 0.8).abs() < 1e-9);
        assert_eq!(
            state
                .release_prepared("data", &query_id, &prepared, Some(f64::NAN), false)
                .unwrap_err()
                .code(),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn connection_admission_caps_and_releases() {
        let state = state_with(None, None);
        // Default cap is 64; tighten via a bespoke config.
        let tight = Arc::new(
            ServerState::new(ServerConfig {
                datasets: vec![],
                max_connections: 1,
                ..ServerConfig::default()
            })
            .unwrap(),
        );
        let g1 = tight.admit_connection().unwrap();
        assert_eq!(
            tight.admit_connection().unwrap_err().code(),
            ErrorCode::Busy
        );
        drop(g1);
        let _g2 = tight.admit_connection().unwrap();
        tight.begin_shutdown();
        assert_eq!(
            tight.admit_connection().unwrap_err().code(),
            ErrorCode::ShuttingDown
        );
        drop(state);
    }

    #[test]
    fn atomic_budget_reserves_refunds_and_fills_exactly() {
        let b = AtomicBudget::new(1.0, 0.0);
        // Ten tenths fill the budget exactly despite float rounding.
        for _ in 0..10 {
            b.try_reserve(0.1).expect("within budget");
        }
        let refused = b.try_reserve(0.1).unwrap_err();
        assert!(refused < 1e-9, "remaining should be ~0, got {refused}");
        // A refund restores exactly one reservation's worth.
        b.refund(0.1);
        assert!(b.try_reserve(0.1).is_ok());
        // Refunds clamp at zero — they can never manufacture budget.
        let empty = AtomicBudget::new(0.5, 0.1);
        empty.refund(5.0);
        assert_eq!(empty.spent(), 0.0);
        assert_eq!(empty.remaining(), 0.5);
    }

    #[test]
    fn concurrent_reservations_never_oversell_the_budget() {
        let b = Arc::new(AtomicBudget::new(1.0, 0.0));
        let granted = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            let granted = Arc::clone(&granted);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    if b.try_reserve(0.1).is_ok() {
                        granted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(granted.load(Ordering::SeqCst), 10, "exactly 1.0/0.1 grants");
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn lru_cache_evicts_the_coldest_entry_at_capacity() {
        let state = Arc::new(
            ServerState::new(ServerConfig {
                datasets: vec![DatasetSpec::synthetic("data", 2_000, 9)],
                epsilon: 0.4,
                sample_size: 40,
                threads: 2,
                cache_capacity: 2,
                ..ServerConfig::default()
            })
            .unwrap(),
        );
        state.prepare("data", AggKind::Sum, "v").unwrap();
        state.prepare("data", AggKind::Mean, "v").unwrap();
        assert_eq!(state.prepared_len(), 2);
        // Touch `sum` so `mean` is the LRU victim when `count` arrives.
        assert!(state.cached_prepared("data", AggKind::Sum, "v").is_some());
        state.prepare("data", AggKind::Count, "").unwrap();
        assert_eq!(state.prepared_len(), 2, "capacity bound holds");
        assert!(state.cached_prepared("data", AggKind::Sum, "v").is_some());
        assert!(
            state.cached_prepared("data", AggKind::Mean, "v").is_none(),
            "the least-recently-used entry was evicted"
        );
        assert_eq!(state.obs().m.cache_evictions.get(), 1);
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("upa_state_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn store_state(dir: &Path, budget: Option<f64>, ledger: Option<PathBuf>) -> Arc<ServerState> {
        Arc::new(
            ServerState::new(ServerConfig {
                datasets: vec![],
                budget,
                ledger_path: ledger,
                epsilon: 0.25,
                sample_size: 40,
                threads: 2,
                store_path: Some(dir.to_path_buf()),
                allow_admin: true,
                ..ServerConfig::default()
            })
            .unwrap(),
        )
    }

    fn ingest_column(dir: &Path, name: &str, values: Vec<f64>) {
        let store = upa_store::Store::open(dir).unwrap();
        let columns = vec![("v".to_string(), values)];
        store
            .ingest(
                name,
                &columns,
                &IngestOptions {
                    overwrite: true,
                    ..IngestOptions::default()
                },
            )
            .unwrap();
    }

    #[test]
    fn attach_detach_cycle_preserves_spent_budget() {
        let dir = temp_store("cycle");
        ingest_column(&dir, "live", (0..100).map(|i| (i % 7) as f64).collect());
        let state = store_state(&dir, Some(1.0), None);
        assert_eq!(state.available_datasets(), vec!["live".to_string()]);
        assert!(!state.has_dataset("live"));

        let out = state.attach_dataset("live").unwrap();
        assert_eq!(out.rows, 100);
        assert!(!out.reloaded, "first attach is not a reload");
        assert!(state.has_dataset("live"));
        assert!(state.available_datasets().is_empty());

        state
            .release("live", AggKind::Sum, "v", None, false)
            .unwrap();
        let (_, spent, _) = state.budget_of("live").unwrap().unwrap();
        assert!((spent - 0.25).abs() < 1e-9);

        state.detach_dataset("live").unwrap();
        assert!(!state.has_dataset("live"));
        assert_eq!(
            state
                .release("live", AggKind::Sum, "v", None, false)
                .unwrap_err()
                .code(),
            ErrorCode::UnknownDataset
        );
        // The budget shard outlives the residency.
        let shards = state.budgets();
        assert_eq!(shards.len(), 1);
        assert!(
            (shards[0].2 - 0.25).abs() < 1e-9,
            "spent ε kept while detached"
        );

        state.attach_dataset("live").unwrap();
        let (_, spent_after, _) = state.budget_of("live").unwrap().unwrap();
        assert!(
            (spent_after - 0.25).abs() < 1e-9,
            "spent ε unchanged across detach/re-attach"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reattach_reloads_fresh_data_and_purges_prepared_cache() {
        let dir = temp_store("reload");
        ingest_column(&dir, "hot", vec![1.0; 50]);
        let state = store_state(&dir, None, None);
        state.attach_dataset("hot").unwrap();
        state.prepare("hot", AggKind::Sum, "v").unwrap();
        assert!(state.cached_prepared("hot", AggKind::Sum, "v").is_some());

        // Re-publish with different data, then hot-reload.
        ingest_column(&dir, "hot", vec![2.0; 80]);
        let out = state.attach_dataset("hot").unwrap();
        assert!(out.reloaded, "attach-when-attached is a reload");
        assert_eq!(out.rows, 80);
        assert!(
            state.cached_prepared("hot", AggKind::Sum, "v").is_none(),
            "stale prepared state must not survive a reload"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_errors_are_clean() {
        // No store configured: attach is a store error, not a panic.
        let state = state_with(None, None);
        assert_eq!(
            state.attach_dataset("anything").unwrap_err().code(),
            ErrorCode::Store
        );
        // Store configured but the dataset is not published.
        let dir = temp_store("missing");
        let state = store_state(&dir, None, None);
        assert_eq!(
            state.attach_dataset("ghost").unwrap_err().code(),
            ErrorCode::UnknownDataset
        );
        assert_eq!(
            state.detach_dataset("ghost").unwrap_err().code(),
            ErrorCode::UnknownDataset
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_replay_seeds_budgets_of_late_attached_datasets() {
        let dir = temp_store("replay");
        ingest_column(&dir, "late", (0..60).map(|i| i as f64).collect());
        let ledger_path = temp_ledger("late_attach");

        // First life: attach, spend, die.
        let state = store_state(&dir, Some(1.0), Some(ledger_path.clone()));
        state.attach_dataset("late").unwrap();
        state
            .release("late", AggKind::Count, "", None, false)
            .unwrap();
        drop(state);

        // Second life: the dataset is not attached at startup, but its
        // replayed spend must seed the shard on a later attach.
        let state2 = store_state(&dir, Some(1.0), Some(ledger_path.clone()));
        assert!(!state2.has_dataset("late"));
        state2.attach_dataset("late").unwrap();
        let (total, spent, remaining) = state2.budget_of("late").unwrap().unwrap();
        assert_eq!(total, 1.0);
        assert!(
            (spent - 0.25).abs() < 1e-9,
            "replayed spend survives restart"
        );
        assert!((remaining - 0.75).abs() < 1e-9);
        let _ = std::fs::remove_file(&ledger_path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_attach_list_attaches_at_startup() {
        let dir = temp_store("startup");
        ingest_column(&dir, "boot", vec![3.0; 30]);
        let state = Arc::new(
            ServerState::new(ServerConfig {
                datasets: vec![],
                epsilon: 0.25,
                sample_size: 20,
                threads: 2,
                store_path: Some(dir.clone()),
                attach: vec!["boot".to_string()],
                ..ServerConfig::default()
            })
            .unwrap(),
        );
        assert!(state.has_dataset("boot"));
        assert_eq!(state.dataset_infos()[0].rows, 30);
        // A bad startup attach is a constructor error, not a panic.
        let bad = ServerState::new(ServerConfig {
            datasets: vec![],
            store_path: Some(dir.clone()),
            attach: vec!["nope".to_string()],
            ..ServerConfig::default()
        });
        assert!(bad.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attach_seed_is_order_independent() {
        let dir = temp_store("seeds");
        ingest_column(&dir, "a", (0..40).map(|i| (i % 5) as f64).collect());
        ingest_column(&dir, "b", (0..40).map(|i| (i % 3) as f64).collect());

        let state_ab = store_state(&dir, None, None);
        state_ab.attach_dataset("a").unwrap();
        state_ab.attach_dataset("b").unwrap();
        let ab = state_ab
            .release("a", AggKind::Sum, "v", None, false)
            .unwrap();

        let state_ba = store_state(&dir, None, None);
        state_ba.attach_dataset("b").unwrap();
        state_ba.attach_dataset("a").unwrap();
        let ba = state_ba
            .release("a", AggKind::Sum, "v", None, false)
            .unwrap();

        assert_eq!(
            ab.released, ba.released,
            "attach order must not change a dataset's noise stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_csv_file_publishes_without_attaching() {
        let dir = temp_store("ingest");
        let csv = std::env::temp_dir().join(format!("upa_state_ingest_{}.csv", std::process::id()));
        std::fs::write(&csv, "v,label\n1.5,x\n2.5,y\n3.5,z\n").unwrap();
        let state = store_state(&dir, None, None);
        let report = state.ingest_csv_file(&csv, None).unwrap();
        // Name derives from the file stem; only numeric columns survive.
        assert!(report.dataset.starts_with("upa_state_ingest_"));
        assert_eq!(report.rows, 3);
        assert_eq!(report.columns, vec!["v".to_string()]);
        assert!(
            !state.has_dataset(&report.dataset),
            "ingest must not auto-attach"
        );
        assert_eq!(state.available_datasets(), vec![report.dataset.clone()]);

        // Explicit names and missing files are clean errors.
        assert_eq!(
            state
                .ingest_csv_file(Path::new("/nonexistent/x.csv"), Some("x"))
                .unwrap_err()
                .code(),
            ErrorCode::Store
        );
        let _ = std::fs::remove_file(&csv);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fused_kernels_match_generic_fold() {
        // Every fused slice kernel must reproduce the generic
        // half-key/map/reduce composition bit for bit — on ordinary
        // values, negatives, NaN and infinities alike.
        let mut values: Vec<f64> = (0..997).map(|i| ((i * 37) % 101) as f64 - 17.5).collect();
        values.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0]);
        for kind in [AggKind::Count, AggKind::Sum, AggKind::Mean] {
            let q = build_agg_query(kind);
            let kernel = q.slice_fold().expect("agg queries carry a fused kernel");
            for phys_half in [0, 1] {
                let mut fused: [Option<(f64, f64)>; 2] = [None, None];
                let mut generic: [Option<(f64, f64)>; 2] = [None, None];
                kernel(&values, phys_half, &mut fused);
                q.fold_run_generic(&values, phys_half, &mut generic);
                for h in 0..2 {
                    match (&fused[h], &generic[h]) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.0.to_bits(), b.0.to_bits(), "{kind:?} half {h} sum");
                            assert_eq!(a.1.to_bits(), b.1.to_bits(), "{kind:?} half {h} count");
                        }
                        (None, None) => {}
                        _ => panic!("{kind:?} half {h}: fused and generic occupancy differ"),
                    }
                }
            }
        }
    }

    #[test]
    fn columnar_release_is_bit_identical_to_row_path() {
        let dir = temp_store("columnar_bits");
        {
            let store = upa_store::Store::open(&dir).unwrap();
            let values: Vec<f64> = (0..4096).map(|i| ((i * 37) % 101) as f64 - 17.0).collect();
            let columns = vec![("v".to_string(), values)];
            // Small chunks so the kernels cross many chunk boundaries.
            store
                .ingest(
                    "cols",
                    &columns,
                    &IngestOptions {
                        chunk_rows: 300,
                        overwrite: true,
                    },
                )
                .unwrap();
        }
        let make = |columnar: bool| {
            Arc::new(
                ServerState::new(ServerConfig {
                    datasets: vec![],
                    epsilon: 0.25,
                    sample_size: 64,
                    threads: 2,
                    store_path: Some(dir.clone()),
                    columnar,
                    ..ServerConfig::default()
                })
                .unwrap(),
            )
        };
        let col = make(true);
        let row = make(false);
        col.attach_dataset("cols").unwrap();
        row.attach_dataset("cols").unwrap();
        for (kind, column) in [
            (AggKind::Sum, "v"),
            (AggKind::Mean, "v"),
            (AggKind::Count, ""),
        ] {
            let a = col.release("cols", kind, column, None, true).unwrap();
            let b = row.release("cols", kind, column, None, true).unwrap();
            assert_eq!(
                a.released.to_bits(),
                b.released.to_bits(),
                "{kind:?} release must not depend on the execution path"
            );
            assert!(!a.cached, "first release of a key is a cold prepare");
            assert!(a.prepare_us.is_some(), "cold releases report prepare time");
        }
        // The second release of a key is a cache hit with no prepare cost.
        let again = col.release("cols", AggKind::Sum, "v", None, false).unwrap();
        assert!(again.cached);
        assert_eq!(again.prepare_us, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audits_json_returns_recent_releases() {
        let state = state_with(None, None);
        for _ in 0..3 {
            state
                .release("data", AggKind::Sum, "v", None, false)
                .unwrap();
        }
        let audits = state.audits_json("data", 2).unwrap();
        assert_eq!(audits.len(), 2);
        assert!(audits[0].contains("\"query\":\"sum\""));
        assert!(state.audits_json("missing", 1).is_err());
    }
}
