//! The structured event log: one JSON object per line on stderr,
//! leveled and request-ID-tagged.
//!
//! Events carry a millisecond wall-clock timestamp, a level, an event
//! name, the request ID when one is in scope, and free-form typed
//! fields. Tests (and in-process embedders) can attach a memory mirror
//! with [`EventLog::capture`] — every line written after that is also
//! appended to the returned buffer, so assertions never have to scrape
//! a child's stderr when running in-process.

use crate::wire;
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail.
    Debug,
    /// Normal operation.
    Info,
    /// Something degraded (slow queries, refusals).
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// The stable lowercase spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value for [`EventLog::emit`].
#[derive(Debug, Clone)]
pub enum Value {
    /// A string.
    S(String),
    /// An unsigned integer.
    U(u64),
    /// A float.
    F(f64),
    /// A boolean.
    B(bool),
    /// Pre-serialized JSON, embedded verbatim (e.g. a trace record).
    Raw(String),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::S(s) => wire::json_str(s),
            Value::U(n) => n.to_string(),
            Value::F(v) => wire::json_num(*v),
            Value::B(b) => b.to_string(),
            Value::Raw(json) => json.clone(),
        }
    }
}

/// The log sink. Writes below `min_level` are dropped.
#[derive(Debug)]
pub struct EventLog {
    min_level: Level,
    to_stderr: bool,
    capture: Mutex<Option<Arc<Mutex<Vec<String>>>>>,
}

impl EventLog {
    /// A stderr-backed log emitting `min_level` and above.
    pub fn new(min_level: Level) -> EventLog {
        EventLog {
            min_level,
            to_stderr: true,
            capture: Mutex::new(None),
        }
    }

    /// A silent log: nothing reaches stderr until a [`EventLog::capture`]
    /// mirror is attached. In-process embedders (tests, the bench
    /// harness) default to this so per-request lines don't flood the
    /// host's stderr.
    pub fn quiet(min_level: Level) -> EventLog {
        EventLog {
            min_level,
            to_stderr: false,
            capture: Mutex::new(None),
        }
    }

    /// A memory-only log (unit tests).
    pub fn memory(min_level: Level) -> (EventLog, Arc<Mutex<Vec<String>>>) {
        let log = EventLog {
            min_level,
            to_stderr: false,
            capture: Mutex::new(None),
        };
        let buffer = log.capture();
        (log, buffer)
    }

    /// Attaches (or returns the existing) memory mirror; every
    /// subsequent line is appended to the returned buffer.
    pub fn capture(&self) -> Arc<Mutex<Vec<String>>> {
        let mut slot = self.capture.lock().expect("log capture poisoned");
        Arc::clone(slot.get_or_insert_with(|| Arc::new(Mutex::new(Vec::new()))))
    }

    /// Emits one event line.
    pub fn emit(
        &self,
        level: Level,
        event: &str,
        request_id: Option<&str>,
        fields: &[(&str, Value)],
    ) {
        if level < self.min_level {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = format!(
            "{{\"ts_ms\":{ts_ms},\"level\":{},\"event\":{}",
            wire::json_str(level.as_str()),
            wire::json_str(event)
        );
        if let Some(id) = request_id {
            line.push_str(&format!(",\"request_id\":{}", wire::json_str(id)));
        }
        for (key, value) in fields {
            line.push_str(&format!(",{}:{}", wire::json_str(key), value.render()));
        }
        line.push('}');
        if let Some(buffer) = self.capture.lock().expect("log capture poisoned").as_ref() {
            buffer
                .lock()
                .expect("log buffer poisoned")
                .push(line.clone());
        }
        if self.to_stderr {
            eprintln!("{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_json_with_level_and_request_id() {
        let (log, buffer) = EventLog::memory(Level::Info);
        log.emit(
            Level::Warn,
            "slow_query",
            Some("r-3"),
            &[
                ("total_us", Value::U(1500)),
                ("dataset", Value::S("data".into())),
                ("trace", Value::Raw("{\"spans\":[]}".into())),
            ],
        );
        let lines = buffer.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let v = wire::parse(&lines[0]).expect("log line is JSON");
        assert_eq!(v.str_of("level"), Some("warn"));
        assert_eq!(v.str_of("event"), Some("slow_query"));
        assert_eq!(v.str_of("request_id"), Some("r-3"));
        assert_eq!(v.num_of("total_us"), Some(1500.0));
        assert!(v.get("trace").unwrap().get("spans").is_some());
    }

    #[test]
    fn below_min_level_is_dropped() {
        let (log, buffer) = EventLog::memory(Level::Warn);
        log.emit(Level::Info, "request_complete", None, &[]);
        assert!(buffer.lock().unwrap().is_empty());
        log.emit(Level::Error, "boom", None, &[]);
        assert_eq!(buffer.lock().unwrap().len(), 1);
    }
}
