//! Server-wide observability: a metrics registry with log-linear
//! latency histograms, per-request traces, and a structured JSON event
//! log — std-only, shared by the daemon, the `metrics` wire op, and the
//! benchmarks.
//!
//! One [`Obs`] lives in [`crate::state::ServerState`] and is reachable
//! from every layer: the connection dispatcher assigns request IDs and
//! finishes traces, the scheduler records queue-wait and coalesce
//! spans, the release path records noise-draw and ledger-fsync timings.
//! The hot path touches only pre-registered `Arc` handles (plain
//! atomics); the registry mutex is taken at startup and scrape time
//! only.
//!
//! Metric naming: `upa_<subsystem>_<what>[_total|_us]`, labels spelled
//! inline (`upa_requests_total{op="release"}`). Latency histograms
//! record microseconds and expose as Prometheus summaries
//! (p50/p90/p99 + `_sum`/`_count`).

pub mod histogram;
pub mod log;
pub mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use log::{EventLog, Level, Value};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use trace::{Trace, TraceRecord, TraceSpan, TraceStore};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The wire ops counted under `upa_requests_total{op=…}`; `invalid`
/// counts lines that failed to parse into any op.
const OPS: [&str; 14] = [
    "ping", "datasets", "prepare", "release", "budget", "audit", "stats", "metrics", "trace",
    "ingest", "attach", "detach", "shutdown", "invalid",
];

/// Pre-registered hot-path handles, so recording a request never takes
/// the registry mutex.
#[derive(Debug)]
pub struct ServerMetrics {
    /// End-to-end release latency (dispatch to reply line).
    pub release_latency: Arc<Histogram>,
    /// Time a job sat in its dataset queue.
    pub queue_wait: Arc<Histogram>,
    /// Time a coalesced job waited on the leader's prepare.
    pub coalesce_wait: Arc<Histogram>,
    /// Engine prepare (phases 1–3) duration.
    pub engine_prepare: Arc<Histogram>,
    /// Phase-4 noisy-release duration.
    pub noise_draw: Arc<Histogram>,
    /// Ledger append + fsync duration.
    pub ledger_fsync: Arc<Histogram>,
    /// Actual `fsync` syscalls issued by the group committer — grows
    /// strictly slower than the release count whenever batching happens.
    pub ledger_fsyncs: Arc<Counter>,
    /// Spend records per committed ledger batch.
    pub ledger_batch_size: Arc<Histogram>,
    /// Time a spend waited on its batch's shared fsync (enqueue →
    /// durable).
    pub ledger_commit_wait: Arc<Histogram>,
    /// Releases served on the zero-queue fast path (prepare cached, no
    /// scheduler involvement).
    pub fastpath_hits: Arc<Counter>,
    /// Prepared-query cache hits at dispatch.
    pub cache_hits: Arc<Counter>,
    /// Prepared-query cache misses at dispatch.
    pub cache_misses: Arc<Counter>,
    /// LRU evictions from the prepared-query cache.
    pub cache_evictions: Arc<Counter>,
    /// Requests over the configured slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// End-to-end `attach` latency (chunk load, checksum verification,
    /// catalog swap).
    pub store_attach: Arc<Histogram>,
    /// End-to-end `ingest` latency (CSV parse, chunk writes, fsyncs,
    /// atomic publish).
    pub store_ingest: Arc<Histogram>,
    requests: HashMap<&'static str, Arc<Counter>>,
    errors: HashMap<&'static str, Arc<Counter>>,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> ServerMetrics {
        let requests = OPS
            .iter()
            .map(|op| {
                (
                    *op,
                    registry.counter(&format!("upa_requests_total{{op=\"{op}\"}}")),
                )
            })
            .collect();
        let errors = crate::proto::ErrorCode::ALL
            .iter()
            .map(|code| {
                let name = code.as_str();
                (
                    name,
                    registry.counter(&format!("upa_errors_total{{code=\"{name}\"}}")),
                )
            })
            .collect();
        ServerMetrics {
            release_latency: registry.histogram("upa_release_latency_us"),
            queue_wait: registry.histogram("upa_queue_wait_us"),
            coalesce_wait: registry.histogram("upa_coalesce_wait_us"),
            engine_prepare: registry.histogram("upa_engine_prepare_us"),
            noise_draw: registry.histogram("upa_noise_draw_us"),
            ledger_fsync: registry.histogram("upa_ledger_fsync_us"),
            ledger_fsyncs: registry.counter("upa_ledger_fsyncs_total"),
            ledger_batch_size: registry.histogram("upa_ledger_batch_size"),
            ledger_commit_wait: registry.histogram("upa_ledger_commit_wait_us"),
            fastpath_hits: registry.counter("upa_fastpath_hits_total"),
            cache_hits: registry.counter("upa_prepared_cache_hits_total"),
            cache_misses: registry.counter("upa_prepared_cache_misses_total"),
            cache_evictions: registry.counter("upa_prepared_cache_evictions_total"),
            slow_queries: registry.counter("upa_slow_queries_total"),
            store_attach: registry.histogram("upa_store_attach_us"),
            store_ingest: registry.histogram("upa_store_ingest_us"),
            requests,
            errors,
        }
    }

    /// Counts one request for `op` (`invalid` for unparsable lines).
    pub fn count_request(&self, op: &str) {
        match self.requests.get(op) {
            Some(c) => c.inc(),
            None => self.requests["invalid"].inc(),
        }
    }

    /// Counts one error reply.
    pub fn count_error(&self, code: crate::proto::ErrorCode) {
        if let Some(c) = self.errors.get(code.as_str()) {
            c.inc();
        }
    }
}

/// The server's observability hub: registry, trace ring, event log,
/// uptime clock, and the request/stats sequence counters.
#[derive(Debug)]
pub struct Obs {
    registry: Registry,
    /// Pre-registered hot-path metric handles.
    pub m: ServerMetrics,
    traces: TraceStore,
    log: EventLog,
    started: Instant,
    request_seq: AtomicU64,
    stats_seq: AtomicU64,
    slow_query_us: Option<u64>,
}

impl Obs {
    /// Builds the hub. `slow_query_ms` enables slow-query logging;
    /// `trace_capacity` bounds the trace ring; `log_stderr` routes the
    /// event log to stderr (the daemon) or keeps it silent (in-process
    /// embedders — attach [`EventLog::capture`] to observe it).
    pub fn new(slow_query_ms: Option<u64>, trace_capacity: usize, log_stderr: bool) -> Obs {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        let log = if log_stderr {
            EventLog::new(Level::Info)
        } else {
            EventLog::quiet(Level::Info)
        };
        Obs {
            m,
            registry,
            traces: TraceStore::new(trace_capacity),
            log,
            started: Instant::now(),
            request_seq: AtomicU64::new(0),
            stats_seq: AtomicU64::new(0),
            slow_query_us: slow_query_ms.map(|ms| ms.saturating_mul(1000)),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The finished-trace ring.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// The structured event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Seconds since the server state was built.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The next request ID (`r-1`, `r-2`, …).
    pub fn next_request_id(&self) -> String {
        format!("r-{}", self.request_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The next `stats`/`metrics` snapshot sequence number (monotonic
    /// per process; a reset to low values signals a restart).
    pub fn next_stats_seq(&self) -> u64 {
        self.stats_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The slow-query threshold in microseconds, when configured.
    pub fn slow_query_us(&self) -> Option<u64> {
        self.slow_query_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_and_stats_seq_are_monotonic() {
        let obs = Obs::new(None, 8, false);
        assert_eq!(obs.next_request_id(), "r-1");
        assert_eq!(obs.next_request_id(), "r-2");
        assert_eq!(obs.next_stats_seq(), 1);
        assert_eq!(obs.next_stats_seq(), 2);
        assert!(obs.uptime_seconds() >= 0.0);
    }

    #[test]
    fn request_counters_fall_back_to_invalid() {
        let obs = Obs::new(Some(250), 8, false);
        obs.m.count_request("release");
        obs.m.count_request("garbage");
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters["upa_requests_total{op=\"release\"}"], 1);
        assert_eq!(snap.counters["upa_requests_total{op=\"invalid\"}"], 1);
        assert_eq!(obs.slow_query_us(), Some(250_000));
    }
}
