//! Per-request traces: one record per served request, carrying the
//! request ID assigned at accept and a span per serving stage
//! (queue-wait, coalesce-wait, engine-prepare, noise-draw,
//! ledger-fsync), with the engine's own [`StageSpan`] tree grafted
//! under an `engine/` prefix so a single record shows the whole
//! request from wire to noisy answer.
//!
//! A [`Trace`] is a cheap clone (an `Arc`): the connection thread
//! creates it, the scheduler threads it through queue entries and
//! coalesce groups, and whichever worker serves the job records into
//! it. Span offsets are measured from the trace's creation instant, so
//! a record's spans line up on one timeline regardless of which thread
//! recorded them. Finished records land in a bounded ring
//! ([`TraceStore`]) served by the `trace` wire op.

use crate::wire::{self, Json};
use dataflow::StageSpan;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One timed stage of a request, offset from the request's start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage name (`queue_wait`, `engine_prepare`, `noise_draw`, …).
    pub name: String,
    /// Microseconds from request start to stage start.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
}

/// A finished request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The request ID assigned at accept (`r-N`).
    pub request_id: String,
    /// The wire op (`prepare` or `release`).
    pub op: String,
    /// Target dataset.
    pub dataset: String,
    /// Query identity, once resolved (`dataset/kind/column`).
    pub query_id: String,
    /// `ok` or the refusal's error code.
    pub outcome: String,
    /// Wall time from accept to reply, in microseconds.
    pub total_us: u64,
    /// Server-side stages on the request's timeline.
    pub spans: Vec<TraceSpan>,
    /// The engine's audit span tree, rebased under `engine/`.
    pub engine: Vec<StageSpan>,
}

struct TraceBody {
    query_id: String,
    spans: Vec<TraceSpan>,
    engine: Vec<StageSpan>,
}

struct TraceInner {
    id: String,
    op: String,
    dataset: String,
    start: Instant,
    body: Mutex<TraceBody>,
}

/// A live, shareable trace under construction. Clones share state.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Trace {
    /// Starts a trace; the clock for every span offset starts now.
    pub fn new(id: impl Into<String>, op: impl Into<String>, dataset: impl Into<String>) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                id: id.into(),
                op: op.into(),
                dataset: dataset.into(),
                start: Instant::now(),
                body: Mutex::new(TraceBody {
                    query_id: String::new(),
                    spans: Vec::new(),
                    engine: Vec::new(),
                }),
            }),
        }
    }

    /// The request ID.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Records a stage that started at `start` and just ended.
    pub fn span_since(&self, name: &str, start: Instant) {
        self.span(name, start, Instant::now());
    }

    /// Records a stage by its two endpoints.
    pub fn span(&self, name: &str, start: Instant, end: Instant) {
        let offset = start
            .checked_duration_since(self.inner.start)
            .unwrap_or_default();
        let dur = end.checked_duration_since(start).unwrap_or_default();
        let mut body = self.inner.body.lock().expect("trace poisoned");
        body.spans.push(TraceSpan {
            name: name.to_string(),
            start_us: offset.as_micros() as u64,
            dur_us: dur.as_micros() as u64,
        });
    }

    /// Stamps the resolved query identity.
    pub fn set_query_id(&self, query_id: &str) {
        let mut body = self.inner.body.lock().expect("trace poisoned");
        if body.query_id.is_empty() {
            body.query_id = query_id.to_string();
        }
    }

    /// Grafts the engine's (already rebased) span tree under this trace.
    pub fn graft_engine(&self, spans: Vec<StageSpan>) {
        let mut body = self.inner.body.lock().expect("trace poisoned");
        body.engine = spans;
    }

    /// Freezes the trace into a record with the final outcome.
    pub fn finish(&self, outcome: &str) -> TraceRecord {
        let total_us = self.inner.start.elapsed().as_micros() as u64;
        let body = self.inner.body.lock().expect("trace poisoned");
        TraceRecord {
            request_id: self.inner.id.clone(),
            op: self.inner.op.clone(),
            dataset: self.inner.dataset.clone(),
            query_id: body.query_id.clone(),
            outcome: outcome.to_string(),
            total_us,
            spans: body.spans.clone(),
            engine: body.engine.clone(),
        }
    }
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace").field("id", &self.inner.id).finish()
    }
}

impl TraceRecord {
    /// The named span, if recorded.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> String {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"start_us\":{},\"dur_us\":{}}}",
                    wire::json_str(&s.name),
                    s.start_us,
                    s.dur_us
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let engine = self
            .engine
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"path\":{},\"depth\":{},\"nanos\":{},\"records\":{},\"calls\":{}}}",
                    wire::json_str(&s.name),
                    wire::json_str(&s.path),
                    s.depth,
                    s.nanos,
                    s.records,
                    s.calls
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"request_id\":{},\"op\":{},\"dataset\":{},\"query_id\":{},\"outcome\":{},\
             \"total_us\":{},\"spans\":[{spans}],\"engine\":[{engine}]}}",
            wire::json_str(&self.request_id),
            wire::json_str(&self.op),
            wire::json_str(&self.dataset),
            wire::json_str(&self.query_id),
            wire::json_str(&self.outcome),
            self.total_us
        )
    }

    /// Parses the [`TraceRecord::to_json`] form.
    pub fn from_json(v: &Json) -> Option<TraceRecord> {
        let spans = v
            .get("spans")?
            .as_arr()?
            .iter()
            .map(|s| {
                Some(TraceSpan {
                    name: s.str_of("name")?.to_string(),
                    start_us: s.get("start_us").and_then(Json::as_u64)?,
                    dur_us: s.get("dur_us").and_then(Json::as_u64)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let engine = v
            .get("engine")?
            .as_arr()?
            .iter()
            .map(|s| {
                Some(StageSpan {
                    name: s.str_of("name")?.to_string(),
                    path: s.str_of("path")?.to_string(),
                    depth: s.get("depth").and_then(Json::as_u64)? as usize,
                    nanos: s.get("nanos").and_then(Json::as_u64)?,
                    records: s.get("records").and_then(Json::as_u64)?,
                    calls: s.get("calls").and_then(Json::as_u64)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(TraceRecord {
            request_id: v.str_of("request_id")?.to_string(),
            op: v.str_of("op")?.to_string(),
            dataset: v.str_of("dataset")?.to_string(),
            query_id: v.str_of("query_id")?.to_string(),
            outcome: v.str_of("outcome")?.to_string(),
            total_us: v.get("total_us").and_then(Json::as_u64)?,
            spans,
            engine,
        })
    }
}

/// A bounded ring of finished traces, oldest evicted first.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    ring: Mutex<VecDeque<TraceRecord>>,
}

impl TraceStore {
    /// A store keeping at most `capacity` records.
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Adds a finished record, evicting the oldest at capacity.
    pub fn push(&self, record: TraceRecord) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The record with `request_id`, if still retained.
    pub fn find(&self, request_id: &str) -> Option<TraceRecord> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .rev()
            .find(|r| r.request_id == request_id)
            .cloned()
    }

    /// The most recent `last` records, oldest first.
    pub fn recent(&self, last: usize) -> Vec<TraceRecord> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        let skip = ring.len().saturating_sub(last);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_land_on_one_timeline() {
        let t = Trace::new("r-1", "release", "data");
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        t.span_since("queue_wait", start);
        t.set_query_id("data/sum/v");
        let record = t.finish("ok");
        assert_eq!(record.request_id, "r-1");
        assert_eq!(record.query_id, "data/sum/v");
        let span = record.span("queue_wait").expect("span recorded");
        assert!(span.dur_us >= 1_000, "slept ≥2ms, recorded {}", span.dur_us);
        assert!(record.total_us >= span.dur_us);
    }

    #[test]
    fn record_json_round_trips() {
        let t = Trace::new("r-7", "release", "data");
        t.span("noise_draw", Instant::now(), Instant::now());
        t.set_query_id("data/mean/v");
        t.graft_engine(vec![StageSpan {
            name: "sample".into(),
            path: "engine/prepare/sample".into(),
            depth: 2,
            nanos: 42,
            records: 10,
            calls: 1,
        }]);
        let record = t.finish("ok");
        let parsed = wire::parse(&record.to_json()).expect("valid JSON");
        assert_eq!(TraceRecord::from_json(&parsed), Some(record));
    }

    #[test]
    fn store_bounds_and_finds() {
        let store = TraceStore::new(2);
        for i in 0..3 {
            store.push(Trace::new(format!("r-{i}"), "release", "d").finish("ok"));
        }
        assert_eq!(store.len(), 2);
        assert!(store.find("r-0").is_none(), "oldest evicted");
        assert!(store.find("r-2").is_some());
        let recent = store.recent(1);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].request_id, "r-2");
    }
}
