//! A log-linear (HDR-style) latency histogram: lock-free recording into
//! a fixed array of atomic buckets, mergeable snapshots, bounded
//! quantile error.
//!
//! # Bucket layout
//!
//! Values 0..16 get their own unit-width bucket. From 16 up, each
//! power-of-two range is split into 16 sub-buckets ([`SUB`] = 2^[`SUB_BITS`]),
//! so a bucket holding value `v` has width `2^(floor(log2 v) - 4)` —
//! every quantile estimate is within one bucket width (≈ 6.25% relative
//! error) of the exact order statistic. The whole `u64` range fits in
//! [`BUCKETS`] = 976 buckets, small enough to keep as a flat
//! `AtomicU64` array with no allocation or locking on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per power-of-two range.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range.
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index holding `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let e = msb - SUB_BITS;
        (e as usize + 1) * SUB + ((v >> e) as usize - SUB)
    }
}

/// The inclusive `(low, high)` value range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let e = (idx / SUB - 1) as u32;
        let lo = ((SUB + idx % SUB) as u64) << e;
        // `(1 << e) - 1` first: the top bucket's `lo + 2^e` is 2^64.
        (lo, lo + ((1u64 << e) - 1))
    }
}

/// The width of the bucket holding `v` (the quantile error bound at `v`).
pub fn bucket_width(v: u64) -> u64 {
    let (lo, hi) = bucket_bounds(bucket_index(v));
    hi - lo + 1
}

/// A concurrent log-linear histogram. `record` is wait-free (three
/// relaxed `fetch_add`s); `snapshot` walks the bucket array without
/// stopping writers, so a snapshot taken under concurrent recording is
/// a consistent-enough point-in-time view (counts may trail `sum` by
/// in-flight records, never the reverse by more than the racing calls).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.try_into().expect("BUCKETS-sized"),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (typically a latency in microseconds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A mergeable point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        HistogramSnapshot {
            // Derive count from the buckets so the snapshot is
            // internally consistent even when records race the walk.
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A frozen histogram: sparse `(bucket, count)` pairs sorted by bucket
/// index, plus the value sum. Merging is bucket-wise addition, so it is
/// associative and commutative — snapshots from many sources combine in
/// any order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`, sorted by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Bucket-wise sum of `self` and `other`.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        buckets.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, cb));
                        b.next();
                    } else {
                        buckets.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    buckets.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    buckets.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            buckets,
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` value — within one bucket width
    /// of the exact sorted quantile. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_bounds(idx as usize).1;
            }
        }
        bucket_bounds(self.buckets.last().map_or(0, |&(i, _)| i as usize)).1
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .last()
            .map_or(0, |&(i, _)| bucket_bounds(i as usize).1)
    }

    /// Serializes as a JSON object (quantiles precomputed for
    /// human-facing consumers; `buckets` carries the lossless form).
    pub fn to_json(&self) -> String {
        let buckets = self
            .buckets
            .iter()
            .map(|&(i, c)| format!("[{i},{c}]"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"buckets\":[{buckets}]}}",
            self.count,
            self.sum,
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
            self.max()
        )
    }

    /// Parses the [`HistogramSnapshot::to_json`] form (the derived
    /// quantile fields are recomputed from `buckets`, not trusted).
    pub fn from_json(v: &crate::wire::Json) -> Option<HistogramSnapshot> {
        use crate::wire::Json;
        let buckets = v
            .get("buckets")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr()?;
                Some((
                    pair.first()?.as_u64()? as u32,
                    pair.get(1).and_then(Json::as_u64)?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(HistogramSnapshot {
            count: v.get("count").and_then(Json::as_u64)?,
            sum: v.get("sum").and_then(Json::as_u64)?,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert() {
        let mut prev = None;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo},{hi}]");
            if let Some(p) = prev {
                assert!(idx >= p, "index must not decrease");
            }
            prev = Some(idx);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.max(), 15);
        assert_eq!(s.mean(), 7.5);
    }

    #[test]
    fn quantile_tracks_within_a_bucket_width() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * i % 50_000).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = s.quantile(q);
            assert!(
                est.abs_diff(exact) <= bucket_width(exact),
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100, 100, 5_000] {
            a.record(v);
        }
        for v in [1u64, 70_000] {
            b.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 1 + 100 + 100 + 5_000 + 1 + 70_000);
        let both = merged
            .buckets
            .iter()
            .find(|&&(i, _)| i == bucket_index(1) as u32)
            .unwrap();
        assert_eq!(both.1, 2, "the shared bucket sums");
    }

    #[test]
    fn json_round_trips() {
        let h = Histogram::new();
        for v in [3u64, 17, 900, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let parsed = crate::wire::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(HistogramSnapshot::from_json(&parsed), Some(s));
    }
}
