//! The metrics registry: named counters, gauges and histograms, with
//! lock-free hot-path recording and a mergeable, serializable snapshot.
//!
//! Registration (cold path) takes the registry mutex once and hands back
//! an `Arc` handle; recording through the handle is plain atomics. Names
//! follow the Prometheus convention, with labels spelled inline:
//! `upa_requests_total{op="release"}` — the text before `{` is the
//! metric family, so one family can carry many label sets and the
//! exposition emits a single `# TYPE` line per family.

use super::histogram::{Histogram, HistogramSnapshot};
use crate::wire::{self, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The registry. Shared via `Arc`; see the module docs for the
/// naming/labeling convention.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Families>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// The metric family: the name up to the first `{`.
pub fn family(name: &str) -> &str {
    &name[..name.find('{').unwrap_or(name.len())]
}

/// Splices `label="value"` into an already-labeled (or bare) name.
fn with_label(name: &str, label: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(head) => format!("{head},{label}=\"{value}\"}}"),
        None => format!("{name}{{{label}=\"{value}\"}}"),
    }
}

/// Appends `suffix` to the family part, keeping any label set in place
/// (`upa_x{l="1"}` + `_sum` → `upa_x_sum{l="1"}`).
fn with_suffix(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{suffix}{}", &name[..i], &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// A frozen, serializable view of a [`Registry`] — also the wire body of
/// the `metrics` op, so scrapers get the identical structure the server
/// records into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by full (labeled) name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by full (labeled) name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by full (labeled) name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Merges `other` in: counters and histograms add, gauges take
    /// `other`'s value (last writer wins).
    pub fn merge(&self, other: &RegistrySnapshot) -> RegistrySnapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            out.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(mine) => mine.merge(v),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// Prometheus-style text exposition. Counters and gauges print one
    /// sample each; histograms print as summaries (p50/p90/p99
    /// `quantile` samples plus `_sum`/`_count`) rather than ~1000
    /// per-bucket lines.
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let fam = family(name);
            if fam != last_family {
                out.push_str(&format!("# TYPE {fam} {kind}\n"));
                last_family = fam.to_string();
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{} {}\n",
                    with_label(name, "quantile", label),
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{} {}\n", with_suffix(name, "_sum"), h.sum));
            out.push_str(&format!("{} {}\n", with_suffix(name, "_count"), h.count));
        }
        out
    }

    /// Serializes as a JSON object (the `metrics` field of the wire
    /// reply).
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", wire::json_str(k)))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{}", wire::json_str(k), wire::json_num(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| format!("{}:{}", wire::json_str(k), h.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }

    /// Parses the [`RegistrySnapshot::to_json`] form.
    pub fn from_json(v: &Json) -> Option<RegistrySnapshot> {
        let obj = |key: &str| match v.get(key) {
            Some(Json::Obj(m)) => Some(m),
            _ => None,
        };
        let mut snap = RegistrySnapshot::default();
        for (k, val) in obj("counters")? {
            snap.counters.insert(k.clone(), val.as_u64()?);
        }
        for (k, val) in obj("gauges")? {
            snap.gauges.insert(k.clone(), val.as_f64()?);
        }
        for (k, val) in obj("histograms")? {
            snap.histograms
                .insert(k.clone(), HistogramSnapshot::from_json(val)?);
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_record_through_the_registry() {
        let r = Registry::new();
        let c = r.counter("upa_requests_total{op=\"release\"}");
        c.inc();
        c.add(2);
        r.gauge("upa_uptime_seconds").set(1.5);
        r.histogram("upa_release_latency_us").record(250);
        // A second lookup returns the same underlying metric.
        r.counter("upa_requests_total{op=\"release\"}").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counters["upa_requests_total{op=\"release\"}"], 4);
        assert_eq!(snap.gauges["upa_uptime_seconds"], 1.5);
        assert_eq!(snap.histograms["upa_release_latency_us"].count, 1);
    }

    #[test]
    fn exposition_has_one_type_line_per_family() {
        let r = Registry::new();
        r.counter("upa_requests_total{op=\"ping\"}").inc();
        r.counter("upa_requests_total{op=\"release\"}").inc();
        r.gauge("upa_budget_epsilon_remaining{dataset=\"d\"}")
            .set(0.75);
        r.histogram("upa_release_latency_us").record(100);
        let text = r.snapshot().exposition();
        assert_eq!(text.matches("# TYPE upa_requests_total counter").count(), 1);
        assert!(text.contains("upa_requests_total{op=\"ping\"} 1"));
        assert!(text.contains("upa_budget_epsilon_remaining{dataset=\"d\"} 0.75"));
        assert!(text.contains("# TYPE upa_release_latency_us summary"));
        assert!(text.contains("upa_release_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("upa_release_latency_us_count 1"));
    }

    #[test]
    fn labeled_histogram_suffixes_keep_labels() {
        assert_eq!(with_suffix("upa_x{l=\"1\"}", "_sum"), "upa_x_sum{l=\"1\"}");
        assert_eq!(
            with_label("upa_x{l=\"1\"}", "quantile", "0.5"),
            "upa_x{l=\"1\",quantile=\"0.5\"}"
        );
        assert_eq!(family("upa_x{l=\"1\"}"), "upa_x");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = Registry::new();
        r.counter("c{a=\"b\"}").add(7);
        r.gauge("g").set(-2.5);
        let h = r.histogram("h");
        h.record(10);
        h.record(90_000);
        let snap = r.snapshot();
        let parsed = wire::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(RegistrySnapshot::from_json(&parsed), Some(snap));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = Registry::new();
        a.counter("c").add(1);
        a.histogram("h").record(5);
        let b = Registry::new();
        b.counter("c").add(2);
        b.histogram("h").record(5);
        b.gauge("g").set(3.0);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.counters["c"], 3);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.gauges["g"], 3.0);
    }
}
