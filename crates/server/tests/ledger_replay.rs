//! Property tests of the ledger ↔ accountant round trip: replaying a
//! ledger must reconstruct exactly the budget state the spends were
//! originally charged against.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use upa_core::budget::BudgetAccountant;
use upa_server::{GroupCommitLedger, Ledger, SpendRecord};

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upa_ledger_replay_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("{tag}_{}.jsonl", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For an arbitrary accepted spend sequence, a ledger written spend
    /// by spend and then replayed reconstructs `spent()` (and therefore
    /// `remaining()`) within float tolerance.
    #[test]
    fn replay_reconstructs_spent(
        charges in prop::collection::vec(0.001f64..0.3, 1..40),
        total in 0.5f64..8.0,
        case in 0u64..u64::MAX,
    ) {
        let path = temp_path(&format!("prop_{case}"));
        let _ = std::fs::remove_file(&path);
        let (mut ledger, initial) = Ledger::open(&path).unwrap();
        prop_assert!(initial.is_empty());
        let mut live = BudgetAccountant::new(total);
        for (i, eps) in charges.iter().enumerate() {
            if live.try_spend(*eps).is_ok() {
                ledger.append(&SpendRecord {
                    dataset: "data".into(),
                    query_id: format!("data/sum/col{i}"),
                    epsilon: *eps,
                }).unwrap();
            }
        }
        drop(ledger);

        let (_, replayed) = Ledger::open(&path).unwrap();
        let spent = upa_server::ledger::spent_by_dataset(&replayed);
        let replayed_spent = spent.get("data").copied().unwrap_or(0.0);
        prop_assert!(
            (replayed_spent - live.spent()).abs() < 1e-9,
            "replayed {} vs live {}", replayed_spent, live.spent()
        );
        let restored = BudgetAccountant::restore(total, replayed_spent);
        prop_assert!((restored.remaining() - live.remaining()).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }

    /// Group commit changes batching and on-disk interleaving, never
    /// accounting: N spends submitted concurrently through the
    /// group-commit front replay to the same accountant state as the
    /// same N spends charged serially.
    #[test]
    fn concurrent_group_commit_replays_like_serial(
        charges in prop::collection::vec(0.001f64..0.2, 1..24),
        window_us in 0u64..800,
        case in 0u64..u64::MAX,
    ) {
        // Serial baseline: one accountant charged in order. The total is
        // sized so every charge fits — acceptance is not under test here,
        // durability-equivalence is.
        let total = 16.0;
        let mut serial = BudgetAccountant::new(total);
        for eps in &charges {
            serial.try_spend(*eps).expect("all charges fit");
        }

        let path = temp_path(&format!("group_{case}"));
        let _ = std::fs::remove_file(&path);
        let (ledger, initial) = Ledger::open(&path).unwrap();
        prop_assert!(initial.is_empty());
        let group = Arc::new(GroupCommitLedger::spawn(
            ledger,
            Duration::from_micros(window_us),
            None,
        ));
        let mut threads = Vec::new();
        for (i, eps) in charges.iter().enumerate() {
            let group = Arc::clone(&group);
            let eps = *eps;
            threads.push(std::thread::spawn(move || {
                group.submit(&SpendRecord {
                    dataset: "data".into(),
                    query_id: format!("data/sum/col{i}"),
                    epsilon: eps,
                })
            }));
        }
        for t in threads {
            t.join().unwrap().expect("group submit succeeds");
        }
        drop(group);

        let (_, replayed) = Ledger::open(&path).unwrap();
        prop_assert_eq!(replayed.len(), charges.len());
        let spent = upa_server::ledger::spent_by_dataset(&replayed);
        let replayed_spent = spent.get("data").copied().unwrap_or(0.0);
        prop_assert!(
            (replayed_spent - serial.spent()).abs() < 1e-9,
            "concurrent replay {} vs serial {}", replayed_spent, serial.spent()
        );
        let restored = BudgetAccountant::restore(total, replayed_spent);
        prop_assert!((restored.remaining() - serial.remaining()).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }
}

/// The accumulation edge case the accountant's tolerance exists for: ten
/// 0.1-charges exactly fill a 1.0 budget, and that must survive a ledger
/// round trip — the eleventh charge stays refused after replay.
#[test]
fn ten_tenth_charges_fill_one_exactly_across_replay() {
    let path = temp_path("tenths");
    let _ = std::fs::remove_file(&path);
    let (mut ledger, _) = Ledger::open(&path).unwrap();
    let mut live = BudgetAccountant::new(1.0);
    for i in 0..10 {
        live.try_spend(0.1).expect("all ten tenths fit");
        ledger
            .append(&SpendRecord {
                dataset: "data".into(),
                query_id: format!("data/count/{i}"),
                epsilon: 0.1,
            })
            .unwrap();
    }
    drop(ledger);

    let (_, replayed) = Ledger::open(&path).unwrap();
    assert_eq!(replayed.len(), 10);
    let spent = upa_server::ledger::spent_by_dataset(&replayed)["data"];
    let mut restored = BudgetAccountant::restore(1.0, spent);
    assert!(
        restored.remaining() < 1e-9,
        "budget is exactly exhausted after replay, remaining = {}",
        restored.remaining()
    );
    assert!(
        restored.try_spend(0.1).is_err(),
        "an eleventh tenth is still refused after replay"
    );
    let _ = std::fs::remove_file(&path);
}

/// A torn final append (the crash-mid-write artefact) never resurrects a
/// partial spend, while every fully written spend survives.
#[test]
fn torn_tail_drops_only_the_partial_spend() {
    let path = temp_path("torn_tail");
    let _ = std::fs::remove_file(&path);
    let (mut ledger, _) = Ledger::open(&path).unwrap();
    for eps in [0.2, 0.3] {
        ledger
            .append(&SpendRecord {
                dataset: "data".into(),
                query_id: "data/sum/v".into(),
                epsilon: eps,
            })
            .unwrap();
    }
    drop(ledger);
    // Simulate a crash mid-append: half a record, no newline.
    let mut contents = std::fs::read_to_string(&path).unwrap();
    contents.push_str("{\"dataset\":\"data\",\"query_id\":\"data/su");
    std::fs::write(&path, contents).unwrap();

    let (_, replayed) = Ledger::open(&path).unwrap();
    assert_eq!(replayed.len(), 2, "both durable spends survive");
    let spent = upa_server::ledger::spent_by_dataset(&replayed)["data"];
    assert!((spent - 0.5).abs() < 1e-12);
    let _ = std::fs::remove_file(&path);
}
