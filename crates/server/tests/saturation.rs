//! Saturation behaviour over real TCP: when a dataset's bounded queue
//! is full the server answers `busy` (and only then — workers being
//! occupied is not a refusal), and a request whose `deadline_ms` lapses
//! in the queue is shed with `deadline` without charging budget.
//!
//! The flood carries a generous `deadline_ms` so every request opts
//! into the scheduler queue (a plain cached release would take the
//! zero-queue fast path and never see admission control); the fast path
//! itself is smoked at the end — a cached no-deadline release must land
//! as a `fastpath_hits` tick, not a scheduler submission.
//!
//! The CI server-integration job runs this as its saturation soak
//! (`UPA_SOAK_WAVES` scales the flood).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use upa_server::{
    Client, ClientError, DatasetSpec, ErrorCode, Server, ServerConfig, ShutdownHandle,
};

mod common;

fn start(config: ServerConfig) -> (String, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn soak_waves() -> usize {
    std::env::var("UPA_SOAK_WAVES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn full_queues_refuse_busy_and_lapsed_deadlines_shed() {
    const FLOODERS: usize = 16;
    const REQUESTS_PER_FLOODER: usize = 4;
    let (addr, handle, join) = start(ServerConfig {
        datasets: vec![DatasetSpec::synthetic("data", 3_000, 11)],
        budget: None, // unmetered: only scheduling outcomes below
        epsilon: 0.1,
        sample_size: 40,
        threads: 2,
        max_connections: FLOODERS + 8,
        // One worker and a single queue slot: whenever the worker and
        // the slot are both taken, the next submit must see `busy`.
        max_inflight_prepares: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });

    let served = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let mut saw_busy = false;
    for _wave in 0..soak_waves() {
        let mut threads = Vec::new();
        for _ in 0..FLOODERS {
            let addr = addr.clone();
            let served = Arc::clone(&served);
            let busy = Arc::clone(&busy);
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for _ in 0..REQUESTS_PER_FLOODER {
                    // The deadline routes every request through the
                    // bounded queues; 60s never actually lapses.
                    match client.release_with_deadline(
                        "data",
                        "mean",
                        "v",
                        None,
                        false,
                        Some(60_000),
                    ) {
                        Ok(reply) => {
                            assert!(reply.released.is_finite());
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server { code, message }) => {
                            // The only legitimate refusal under flood is
                            // a full queue.
                            assert_eq!(code, ErrorCode::Busy, "{message}");
                            busy.fetch_add(1, Ordering::Relaxed);
                            // A busy refusal at admission closes the
                            // connection; reconnect for the next shot.
                            client = Client::connect(&addr).expect("reconnect");
                        }
                        Err(other) => panic!("unexpected failure under flood: {other}"),
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        if busy.load(Ordering::Relaxed) > 0 {
            saw_busy = true;
            break;
        }
    }
    assert!(
        saw_busy,
        "a 16-way flood into a 1-slot queue never saw `busy`"
    );

    let mut observer = Client::connect(&addr).expect("observer");

    // Every accepted request was served — busy only ever replaced
    // queueing, never dropped admitted work.
    let stats = observer.stats().expect("stats").sched;
    assert_eq!(stats.queued, 0, "{stats:?}");
    assert_eq!(stats.completed, stats.submitted, "{stats:?}");
    // Admission control can also refuse with `busy` when reconnect churn
    // momentarily exceeds the connection cap, so the scheduler's count
    // is a lower bound on what clients observed.
    assert!(
        stats.busy_rejected <= busy.load(Ordering::Relaxed),
        "queue refusals {} exceed observed busy {}: {stats:?}",
        stats.busy_rejected,
        busy.load(Ordering::Relaxed)
    );
    assert_eq!(stats.submitted, served.load(Ordering::Relaxed), "{stats:?}");

    // Fast-path smoke under the soak: `mean/v` is cached by now, so a
    // plain (no-deadline) release must be served on the connection
    // thread — a `fastpath_hits` tick, not a scheduler submission.
    let fast = observer
        .release("data", "mean", "v", None, false)
        .expect("cached release takes the fast path");
    assert!(fast.released.is_finite());
    served.fetch_add(1, Ordering::Relaxed);

    // Mid-soak metrics scrape (the CI server-integration job leans on
    // this): the exposition stays well-formed under live traffic and
    // carries the serving-path families.
    let metrics = observer.metrics().expect("metrics scrape");
    common::assert_exposition_well_formed(
        &metrics.exposition,
        &[
            "upa_requests_total",
            "upa_release_latency_us",
            "upa_queue_wait_us",
            "upa_fastpath_hits_total",
            "upa_prepared_cache_hits_total",
            "upa_sched_submitted_total",
            "upa_uptime_seconds",
        ],
    );
    let fastpath_hits = metrics.snapshot.counters["upa_fastpath_hits_total"];
    assert!(
        fastpath_hits >= 1,
        "cached release must count a fast-path hit"
    );
    let sched_after = observer.stats().expect("stats").sched;
    assert_eq!(
        sched_after.submitted, stats.submitted,
        "the fast-path release must not reach the scheduler"
    );
    // Every request was either scheduled or fast-pathed; none vanished.
    assert_eq!(
        sched_after.submitted + fastpath_hits,
        served.load(Ordering::Relaxed),
        "{sched_after:?}"
    );
    let released = served.load(Ordering::Relaxed);
    let latency = &metrics.snapshot.histograms["upa_release_latency_us"];
    assert!(
        latency.count >= released,
        "release-latency histogram saw {} of {released} releases",
        latency.count
    );

    // An unmeetable deadline is shed with the distinct `deadline` code…
    match observer
        .release_with_deadline("data", "mean", "v", None, false, Some(0))
        .unwrap_err()
    {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Deadline),
        other => panic!("expected a deadline shed, got {other}"),
    }
    // …and the connection survives it: the same client keeps working.
    let reply = observer
        .release_with_deadline("data", "mean", "v", None, false, Some(60_000))
        .expect("a generous deadline is met");
    assert!(reply.released.is_finite());
    let stats = observer.stats().expect("stats after shed").sched;
    assert_eq!(stats.shed_deadline, 1, "{stats:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}
