//! Property tests for the log-linear latency histogram: across many
//! random value distributions, every quantile estimate stays within one
//! bucket width of the exact sorted order statistic, and snapshot
//! merging is associative and commutative (so per-source snapshots
//! combine in any order without changing any quantile).
//!
//! The harness is a hand-rolled xorshift PRNG — deterministic, seeded
//! per case, and dependency-free.

use upa_server::obs::histogram::{bucket_width, Histogram, HistogramSnapshot};

/// xorshift64*: tiny, seedable, good enough to vary distributions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A value in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Draws `n` values from one of several shapes — uniform at varying
/// magnitudes, exponential-ish (bit-width-uniform), bimodal, constant —
/// chosen by `case` so the suite covers qualitatively different tails.
fn sample(case: u64, n: usize, rng: &mut Rng) -> Vec<u64> {
    (0..n)
        .map(|_| match case % 4 {
            // Uniform over a magnitude that grows with the case index.
            0 => rng.below(10u64.saturating_pow((case % 12) as u32 + 1)),
            // Bit-width-uniform: heavy tail across ~50 binary scales
            // (capped at 2^50 so a few thousand draws can't overflow
            // the snapshot's u64 value sum).
            1 => rng.next() >> (14 + rng.below(50) as u32),
            // Bimodal: fast path near 100, slow path near 1e7.
            2 => {
                if rng.below(10) < 8 {
                    50 + rng.below(100)
                } else {
                    10_000_000 + rng.below(1_000_000)
                }
            }
            // Constant (degenerate distribution).
            _ => 42 * (case + 1),
        })
        .collect()
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn quantiles_stay_within_one_bucket_width_of_exact() {
    let quantiles = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
    for case in 0..64u64 {
        let mut rng = Rng(0x9E3779B97F4A7C15 ^ (case + 1));
        let n = 1 + rng.below(2_000) as usize;
        let values = sample(case, n, &mut rng);
        let snap = snapshot_of(&values);
        assert_eq!(snap.count, values.len() as u64, "case {case}");

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &quantiles {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q);
            assert!(
                est.abs_diff(exact) <= bucket_width(exact),
                "case {case} q={q}: estimate {est} is more than one bucket \
                 width ({}) from exact {exact}",
                bucket_width(exact)
            );
        }
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    for case in 0..32u64 {
        let mut rng = Rng(0xD1B54A32D192ED03 ^ (case + 1));
        let parts: Vec<HistogramSnapshot> = (0..3)
            .map(|i| {
                let n = rng.below(500) as usize;
                snapshot_of(&sample(case + i, n, &mut rng))
            })
            .collect();
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

        assert_eq!(a.merge(b), b.merge(a), "case {case}: merge must commute");
        assert_eq!(
            a.merge(b).merge(c),
            a.merge(&b.merge(c)),
            "case {case}: merge must associate"
        );

        // Merging is equivalent to having recorded everything into one
        // histogram — the quantiles of the merged snapshot match.
        let merged = a.merge(b).merge(c);
        assert_eq!(merged.count, a.count + b.count + c.count);
        assert_eq!(merged.sum, a.sum + b.sum + c.sum);
        let empty = HistogramSnapshot::default();
        assert_eq!(&merged.merge(&empty), &merged, "empty is the identity");
    }
}
