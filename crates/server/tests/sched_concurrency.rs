//! The serving path's headline guarantee, over real TCP connections:
//! 64 simultaneous identical queries run **exactly one** engine
//! prepare, every client still gets its **own independent** noisy
//! release, and the budget is charged once per release. The racers that
//! arrive before the prepare finishes coalesce onto it in the
//! scheduler; everyone after the cache fills rides the zero-queue fast
//! path — shared work, never shared noise, never shared spends.

use std::collections::HashSet;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use upa_server::{Client, DatasetSpec, Server, ServerConfig, ShutdownHandle};

const CLIENTS: usize = 64;

fn start(config: ServerConfig) -> (String, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

#[test]
fn identical_concurrent_queries_coalesce_to_one_prepare() {
    let epsilon = 0.01;
    let (addr, handle, join) = start(ServerConfig {
        datasets: vec![DatasetSpec::synthetic("data", 3_000, 11)],
        budget: Some(10.0),
        epsilon,
        sample_size: 40,
        threads: 2,
        max_connections: CLIENTS + 8,
        max_inflight_prepares: 4,
        queue_capacity: CLIENTS + 8,
        ..ServerConfig::default()
    });

    // Connect everyone first, then release the herd at once so the
    // requests genuinely race into the scheduler.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            barrier.wait();
            client
                .release("data", "sum", "v", None, false)
                .expect("release")
        }));
    }
    let replies: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(replies.len(), CLIENTS);

    // Every client got an independent noisy sample, not a shared one.
    let distinct: HashSet<String> = replies
        .iter()
        .map(|r| format!("{:.17e}", r.released))
        .collect();
    assert!(
        distinct.len() > CLIENTS / 2,
        "noisy releases must be drawn independently per client \
         ({} distinct values across {CLIENTS})",
        distinct.len()
    );
    for r in &replies {
        assert_eq!(r.query_id, "data/sum/v");
        assert!(r.released.is_finite());
    }

    // The budget was charged once per release — coalescing shares the
    // prepare, not the spend.
    let mut observer = Client::connect(&addr).expect("observer connect");
    let budget = observer.budget("data").unwrap().unwrap();
    assert!(
        (budget.spent - epsilon * CLIENTS as f64).abs() < 1e-9,
        "expected spent = {} (64 × ε), got {}",
        epsilon * CLIENTS as f64,
        budget.spent
    );

    // Exactly one prepare ran. Clients that raced in before it finished
    // coalesced onto it in the scheduler; everyone who arrived after the
    // cache filled was served on the fast path without queueing.
    let stats = observer.stats().expect("stats").sched;
    assert_eq!(
        stats.prepares, 1,
        "64 identical queries must share a single engine prepare: {stats:?}"
    );
    assert_eq!(stats.coalesced, stats.submitted - 1, "{stats:?}");
    assert_eq!(stats.completed, stats.submitted, "{stats:?}");
    assert_eq!(stats.shed_deadline, 0);
    let fastpath =
        observer.metrics().expect("metrics").snapshot.counters["upa_fastpath_hits_total"];
    assert_eq!(
        stats.submitted + fastpath,
        CLIENTS as u64,
        "every client was either scheduled or fast-pathed: {stats:?}"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}
