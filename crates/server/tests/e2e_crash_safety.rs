//! End-to-end crash safety: a real `upa-serverd` process, concurrent
//! clients spending budget, `SIGKILL`, and a restart against the same
//! ledger. The budget must reflect every release that was delivered
//! before the kill, and an over-budget query must stay refused.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use upa_server::{Client, ClientError, ErrorCode};

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upa_e2e_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Spawns the daemon on an ephemeral port and parses the announced
/// address from its first stdout line.
fn spawn_daemon(ledger: &PathBuf) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-serverd"))
        .args([
            "--port",
            "0",
            "--synthetic",
            "data=4000:97",
            "--budget",
            "1.0",
            "--epsilon",
            "0.4",
            "--sample-size",
            "50",
            "--threads",
            "2",
            "--ledger",
        ])
        .arg(ledger)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn upa-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("upa-server listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn budget_survives_sigkill_and_restart() {
    let ledger = temp_ledger("sigkill");
    let (mut child, addr) = spawn_daemon(&ledger);

    // Two concurrent clients each deliver one ε=0.4 release.
    let mut workers = Vec::new();
    for _ in 0..2 {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client
                .release("data", "sum", "v", None, true)
                .expect("release delivers")
        }));
    }
    let delivered: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(delivered.len(), 2);
    for reply in &delivered {
        assert_eq!(reply.epsilon, 0.4);
        assert!(reply.released.is_finite());
        let audit = reply.audit.as_ref().expect("audit requested");
        assert_eq!(audit.query, "sum");
    }
    // Whatever the interleaving, both charges happened.
    let remaining = delivered
        .iter()
        .filter_map(|r| r.budget_remaining)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (remaining - 0.2).abs() < 1e-9,
        "after two 0.4 charges on 1.0, 0.2 remains (got {remaining})"
    );

    // Crash: no drain, no flush beyond the per-spend fsync.
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Restart on the same ledger: every delivered release is accounted.
    let (mut child2, addr2) = spawn_daemon(&ledger);
    let mut client = Client::connect(&addr2).expect("reconnect");
    let budget = client.budget("data").expect("budget op").expect("metered");
    assert_eq!(budget.total, 1.0);
    assert!(
        (budget.spent - 0.8).abs() < 1e-9,
        "both pre-kill spends replayed (spent = {})",
        budget.spent
    );
    assert!((budget.remaining - 0.2).abs() < 1e-9);

    // The default ε=0.4 no longer fits: refused, budget untouched.
    match client.release("data", "sum", "v", None, false).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Budget),
        other => panic!("expected a budget refusal, got {other}"),
    }
    let budget = client.budget("data").unwrap().unwrap();
    assert!(
        (budget.spent - 0.8).abs() < 1e-9,
        "a refused release charges nothing"
    );

    // What still fits is still served.
    let last = client
        .release("data", "sum", "v", Some(0.2), false)
        .expect("a fitting charge is served");
    assert!(last.budget_remaining.unwrap() < 1e-9);

    let _ = client.shutdown();
    child2.wait().expect("daemon drains and exits");
    let _ = std::fs::remove_file(&ledger);
}
