//! End-to-end crash safety: a real `upa-serverd` process, concurrent
//! clients spending budget, `SIGKILL`, and a restart against the same
//! ledger. The budget must reflect every release that was delivered
//! before the kill, and an over-budget query must stay refused.
//!
//! The second test aims the kill at the group-commit window itself:
//! a wide `--ledger-commit-us` keeps batches in flight continuously, so
//! the `SIGKILL` lands mid-batch — and still, no release a client ever
//! received may be missing from the replayed ledger (durable spends
//! without a delivered release are fine; the converse never is).

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use upa_server::{Client, ClientError, ErrorCode};

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upa_e2e_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Spawns the daemon on an ephemeral port and parses the announced
/// address from its first stdout line.
fn spawn_daemon(ledger: &PathBuf) -> (Child, String) {
    spawn_daemon_with(ledger, &["--budget", "1.0", "--epsilon", "0.4"])
}

fn spawn_daemon_with(ledger: &PathBuf, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-serverd"))
        .args([
            "--port",
            "0",
            "--synthetic",
            "data=4000:97",
            "--sample-size",
            "50",
            "--threads",
            "2",
        ])
        .args(extra)
        .arg("--ledger")
        .arg(ledger)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn upa-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("upa-server listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn budget_survives_sigkill_and_restart() {
    let ledger = temp_ledger("sigkill");
    let (mut child, addr) = spawn_daemon(&ledger);

    // Two concurrent clients each deliver one ε=0.4 release.
    let mut workers = Vec::new();
    for _ in 0..2 {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client
                .release("data", "sum", "v", None, true)
                .expect("release delivers")
        }));
    }
    let delivered: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(delivered.len(), 2);
    for reply in &delivered {
        assert_eq!(reply.epsilon, 0.4);
        assert!(reply.released.is_finite());
        let audit = reply.audit.as_ref().expect("audit requested");
        assert_eq!(audit.query, "sum");
    }
    // Whatever the interleaving, both charges happened.
    let remaining = delivered
        .iter()
        .filter_map(|r| r.budget_remaining)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (remaining - 0.2).abs() < 1e-9,
        "after two 0.4 charges on 1.0, 0.2 remains (got {remaining})"
    );

    // Crash: no drain, no flush beyond the per-spend fsync.
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Restart on the same ledger: every delivered release is accounted.
    let (mut child2, addr2) = spawn_daemon(&ledger);
    let mut client = Client::connect(&addr2).expect("reconnect");
    let budget = client.budget("data").expect("budget op").expect("metered");
    assert_eq!(budget.total, 1.0);
    assert!(
        (budget.spent - 0.8).abs() < 1e-9,
        "both pre-kill spends replayed (spent = {})",
        budget.spent
    );
    assert!((budget.remaining - 0.2).abs() < 1e-9);

    // The default ε=0.4 no longer fits: refused, budget untouched.
    match client.release("data", "sum", "v", None, false).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Budget),
        other => panic!("expected a budget refusal, got {other}"),
    }
    let budget = client.budget("data").unwrap().unwrap();
    assert!(
        (budget.spent - 0.8).abs() < 1e-9,
        "a refused release charges nothing"
    );

    // What still fits is still served.
    let last = client
        .release("data", "sum", "v", Some(0.2), false)
        .expect("a fitting charge is served");
    assert!(last.budget_remaining.unwrap() < 1e-9);

    let _ = client.shutdown();
    child2.wait().expect("daemon drains and exits");
    let _ = std::fs::remove_file(&ledger);
}

/// `SIGKILL` aimed into the group-commit window: with a wide
/// `--ledger-commit-us` and several clients hammering cached releases,
/// batches are continuously in flight when the kill lands. The fail-closed
/// invariant under test: every release a client *received* has a durable
/// spend after replay. (Spends that were made durable but whose replies
/// never left the socket are allowed — budget leaks toward safety.)
#[test]
fn sigkill_mid_batch_never_loses_a_delivered_release() {
    const WORKERS: usize = 4;
    const EPSILON: f64 = 0.01;
    let ledger = temp_ledger("sigkill_batch");
    let (mut child, addr) = spawn_daemon_with(
        &ledger,
        &[
            "--budget",
            "100.0",
            "--epsilon",
            "0.01",
            // A wide window keeps a batch open almost permanently under
            // this load, so the kill lands mid-batch.
            "--ledger-commit-us",
            "3000",
        ],
    );

    // Warm the prepared cache so the flood below rides the fast path
    // (connection-thread releases, group-committed spends).
    let mut warm = Client::connect(&addr).expect("connect");
    warm.release("data", "mean", "v", None, false)
        .expect("warmup release");
    let delivered = Arc::new(AtomicU64::new(1)); // the warmup counts

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for _ in 0..WORKERS {
        let addr = addr.clone();
        let delivered = Arc::clone(&delivered);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(_) => return, // raced the kill
            };
            while !stop.load(Ordering::Relaxed) {
                match client.release("data", "mean", "v", None, false) {
                    Ok(reply) => {
                        assert!(reply.released.is_finite());
                        delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    // Any error here is the kill tearing the connection
                    // (or, theoretically, budget exhaustion — 100.0 / 0.01
                    // is far beyond this test's runtime). Stop either way.
                    Err(_) => return,
                }
            }
        }));
    }

    // Let batches churn, then kill without warning.
    std::thread::sleep(std::time::Duration::from_millis(400));
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let delivered = delivered.load(Ordering::Relaxed);
    assert!(
        delivered > 1,
        "the flood delivered something before the kill"
    );

    // Restart on the same ledger (replay tolerates — truncates — a torn
    // tail from the kill). Every delivered release must be accounted.
    let (mut child2, addr2) = spawn_daemon_with(
        &ledger,
        &[
            "--budget",
            "100.0",
            "--epsilon",
            "0.01",
            "--ledger-commit-us",
            "3000",
        ],
    );
    let mut client = Client::connect(&addr2).expect("reconnect");
    let budget = client.budget("data").expect("budget op").expect("metered");
    let floor = delivered as f64 * EPSILON;
    assert!(
        budget.spent >= floor - 1e-6,
        "{delivered} delivered releases need {floor} ε durable, ledger replayed only {}",
        budget.spent
    );
    // The converse bound: at most one spend per worker connection can be
    // durable-but-undelivered at the kill (its reply died in the socket),
    // plus the in-flight batch is bounded by the worker count.
    let ceiling = (delivered + 2 * WORKERS as u64) as f64 * EPSILON;
    assert!(
        budget.spent <= ceiling + 1e-6,
        "replayed spend {} exceeds every possible charge ({ceiling})",
        budget.spent
    );

    // The survivor still serves: the replayed state is live, not wedged.
    let after = client
        .release("data", "mean", "v", None, false)
        .expect("post-restart release");
    assert!(after.released.is_finite());

    let _ = client.shutdown();
    child2.wait().expect("daemon drains and exits");
    let _ = std::fs::remove_file(&ledger);
}
