//! Columnar serving smoke: the full ingest → attach → cold prepare →
//! release path against real `upa-serverd` daemons, one serving through
//! the columnar zero-copy kernels and one forced down the row path with
//! `--row-scan`. Under the same seed the two must release the same bits
//! — the scan path buys latency, never a different answer — and the
//! wire metadata must show the cold prepare (`cache: miss` with a
//! timing) turning into cache hits on repeat queries.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use upa_server::Client;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upa_columnar_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn spawn_daemon(store: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-serverd"))
        .args([
            "--port",
            "0",
            "--allow-admin",
            "--epsilon",
            "0.25",
            "--sample-size",
            "64",
            "--seed",
            "77",
            "--threads",
            "2",
        ])
        .arg("--store")
        .arg(store)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn upa-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("upa-server listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn columnar_and_row_daemons_release_identical_bits() {
    let root = temp_dir("bits");
    let store = root.join("store");
    std::fs::create_dir_all(&store).unwrap();
    let csv = root.join("metrics.csv");
    let mut text = String::from("v\n");
    for i in 0..4_096 {
        text.push_str(&format!("{}\n", ((i * 37) % 101) as f64 - 17.0));
    }
    std::fs::write(&csv, text).unwrap();

    // Publish once into the shared store, through the columnar daemon.
    let (mut col_child, col_addr) = spawn_daemon(&store, &[]);
    let mut col = Client::connect(&col_addr).expect("connect columnar");
    let (_, rows) = col
        .ingest(&csv.to_string_lossy(), Some("metrics"))
        .expect("ingest");
    assert_eq!(rows, 4_096);
    col.attach("metrics").expect("attach columnar");

    // Same store, same seed, row path forced.
    let (mut row_child, row_addr) = spawn_daemon(&store, &["--row-scan"]);
    let mut row = Client::connect(&row_addr).expect("connect row");
    row.attach("metrics").expect("attach row");

    for (kind, column) in [("sum", "v"), ("mean", "v"), ("count", "")] {
        let a = col
            .release("metrics", kind, column, None, false)
            .expect("columnar release");
        let b = row
            .release("metrics", kind, column, None, false)
            .expect("row release");
        assert_eq!(
            a.released.to_bits(),
            b.released.to_bits(),
            "{kind} must release identical bits on both scan paths"
        );
        assert_eq!(a.noise_scale.to_bits(), b.noise_scale.to_bits());
        assert!(!a.cached, "first {kind} release pays the cold prepare");
        assert!(
            a.prepare_us.is_some(),
            "cold releases report the prepare cost"
        );
    }

    // Repeat queries are served from prepared state on both daemons.
    let warm = col
        .release("metrics", "sum", "v", None, false)
        .expect("warm release");
    assert!(warm.cached, "repeat release is a cache hit");
    assert_eq!(warm.prepare_us, None, "cache hits report no prepare cost");

    let _ = col.shutdown();
    let _ = row.shutdown();
    let _ = col_child.wait();
    let _ = row_child.wait();
    let _ = std::fs::remove_dir_all(&root);
}
