//! End-to-end store serving: a real `upa-serverd` process over a
//! persistent columnar store. Ingest a CSV through the wire, attach it,
//! spend budget, detach, re-attach — the spent ε must be exactly what
//! it was before the detach (the budget shard outlives the residency).
//! A restart against the same ledger must agree too.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use upa_server::{Client, ErrorCode};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upa_store_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn spawn_daemon(store: &Path, ledger: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-serverd"))
        .args([
            "--port",
            "0",
            "--allow-admin",
            "--budget",
            "1.0",
            "--epsilon",
            "0.25",
            "--sample-size",
            "50",
            "--threads",
            "2",
        ])
        .arg("--store")
        .arg(store)
        .arg("--ledger")
        .arg(ledger)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn upa-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("upa-server listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn ingest_attach_detach_reattach_preserves_spent_epsilon() {
    let root = temp_dir("lifecycle");
    let store = root.join("store");
    let ledger = root.join("spends.jsonl");
    let csv = root.join("trips.csv");
    let mut text = String::from("fare,city\n");
    for i in 0..3_000 {
        text.push_str(&format!("{}.5,metropolis\n", i % 40));
    }
    std::fs::write(&csv, text).unwrap();

    // The daemon starts with an EMPTY store — that must be valid.
    let (mut child, addr) = spawn_daemon(&store, &ledger, &[]);
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client.datasets_info().expect("datasets");
    assert!(reply.names.is_empty(), "daemon starts with no datasets");
    assert!(reply.available.is_empty(), "store starts empty");

    // Ingest through the wire (server-local path), then attach.
    let (name, rows) = client
        .ingest(&csv.to_string_lossy(), Some("trips"))
        .expect("ingest");
    assert_eq!(name, "trips");
    assert_eq!(rows, 3_000);
    let reply = client.datasets_info().unwrap();
    assert_eq!(reply.available, vec!["trips".to_string()]);
    assert!(reply.names.is_empty(), "ingest must not auto-attach");

    let outcome = client.attach("trips").expect("attach");
    assert_eq!(outcome.rows, 3_000);
    assert!(!outcome.reloaded);
    assert!(outcome.resident_bytes > 0);

    // Spend some budget.
    let release = client
        .release("trips", "mean", "fare", None, false)
        .expect("release");
    assert!((release.epsilon - 0.25).abs() < 1e-12);
    let budget = client.budget("trips").expect("budget").expect("metered");
    assert!((budget.spent - 0.25).abs() < 1e-9);

    // Detach: queries refuse, the dataset reappears as available.
    client.detach("trips").expect("detach");
    let err = client
        .release("trips", "mean", "fare", None, false)
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownDataset));
    let reply = client.datasets_info().unwrap();
    assert!(reply.names.is_empty());
    assert_eq!(reply.available, vec!["trips".to_string()]);

    // Re-attach: spent ε is exactly what it was before the detach.
    client.attach("trips").expect("re-attach");
    let budget = client.budget("trips").unwrap().unwrap();
    assert!(
        (budget.spent - 0.25).abs() < 1e-9,
        "spent ε changed across detach/re-attach: {}",
        budget.spent
    );
    client
        .release("trips", "mean", "fare", None, false)
        .expect("release after re-attach");
    let budget = client.budget("trips").unwrap().unwrap();
    assert!((budget.spent - 0.5).abs() < 1e-9);

    client.shutdown().expect("shutdown");
    let _ = child.wait();

    // Restart with --attach: the ledger replay must seed the shard.
    let (mut child, addr) = spawn_daemon(&store, &ledger, &["--attach", "trips"]);
    let mut client = Client::connect(&addr).expect("reconnect");
    let reply = client.datasets_info().unwrap();
    assert_eq!(reply.names, vec!["trips".to_string()]);
    assert_eq!(reply.info[0].rows, 3_000);
    let budget = client.budget("trips").unwrap().unwrap();
    assert!(
        (budget.spent - 0.5).abs() < 1e-9,
        "replayed spend wrong after restart: {}",
        budget.spent
    );

    client.shutdown().expect("shutdown");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn admin_ops_refuse_without_allow_admin() {
    let root = temp_dir("gated");
    let store = root.join("store");
    std::fs::create_dir_all(&store).unwrap();
    // No --allow-admin this time; data comes from --synthetic.
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-serverd"))
        .args(["--port", "0", "--synthetic", "data=500:7", "--threads", "2"])
        .arg("--store")
        .arg(&store)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn upa-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("upa-server listening on ")
        .unwrap()
        .to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let err = client.attach("anything").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Admin));
    let err = client.detach("data").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Admin));
    let err = client.ingest("/tmp/x.csv", None).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Admin));
    // The synthetic dataset still serves normally.
    client
        .release("data", "count", "", None, false)
        .expect("release");

    client.shutdown().expect("shutdown");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
}
