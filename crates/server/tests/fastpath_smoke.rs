//! The serving fast path under contention, end to end: once a query is
//! in the prepared cache, concurrent no-deadline releases are served on
//! their connection threads (`fastpath_hits`, zero scheduler traffic)
//! while their budget spends ride the group-commit ledger — strictly
//! fewer fsyncs than releases, with every spend still durable and
//! charged.
//!
//! The CI server-integration job runs this as its fast-path smoke.

use std::path::PathBuf;
use std::sync::Arc;
use upa_server::{Client, DatasetSpec, Server, ServerConfig};

mod common;

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upa_fastpath_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn contended_fastpath_batches_fsyncs_and_skips_the_scheduler() {
    const CLIENTS: usize = 8;
    const RELEASES_PER_CLIENT: usize = 25;
    const EPSILON: f64 = 0.01;
    let ledger = temp_ledger("contended");
    let server = Server::bind(
        ServerConfig {
            datasets: vec![DatasetSpec::synthetic("data", 3_000, 13)],
            budget: Some(50.0),
            ledger_path: Some(ledger.clone()),
            ledger_commit_us: 500,
            epsilon: EPSILON,
            sample_size: 40,
            threads: 2,
            max_connections: CLIENTS + 4,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());

    // Warm the cache: the one and only scheduler trip in this test.
    let mut observer = Client::connect(&addr).expect("connect");
    observer
        .release("data", "mean", "v", None, false)
        .expect("warmup release");

    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            barrier.wait();
            for _ in 0..RELEASES_PER_CLIENT {
                let reply = client
                    .release("data", "mean", "v", None, false)
                    .expect("cached release");
                assert!(reply.released.is_finite());
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let flood = (CLIENTS * RELEASES_PER_CLIENT) as u64;
    let releases = flood + 1; // + the warmup

    let metrics = observer.metrics().expect("metrics scrape");
    common::assert_exposition_well_formed(
        &metrics.exposition,
        &[
            "upa_fastpath_hits_total",
            "upa_prepared_cache_hits_total",
            "upa_ledger_fsyncs_total",
            "upa_ledger_batch_size",
            "upa_ledger_commit_wait_us",
        ],
    );
    let counters = &metrics.snapshot.counters;

    // Every flood release rode the fast path; none touched the scheduler.
    assert_eq!(counters["upa_fastpath_hits_total"], flood);
    assert_eq!(counters["upa_prepared_cache_hits_total"], flood);
    assert_eq!(counters["upa_prepared_cache_misses_total"], 1, "the warmup");
    let sched = observer.stats().expect("stats").sched;
    assert_eq!(sched.submitted, 1, "only the warmup reached the scheduler");

    // Group commit did its job: strictly fewer fsyncs than spends, every
    // spend waited on exactly one commit, and at least one batch carried
    // more than one record.
    let fsyncs = counters["upa_ledger_fsyncs_total"];
    assert!(fsyncs >= 1);
    assert!(
        fsyncs < releases,
        "{releases} contended releases took {fsyncs} fsyncs — no batching happened"
    );
    let batch = &metrics.snapshot.histograms["upa_ledger_batch_size"];
    assert_eq!(batch.count, fsyncs, "one batch-size sample per commit");
    assert!(batch.max() >= 2, "some batch carried multiple spends");
    let wait = &metrics.snapshot.histograms["upa_ledger_commit_wait_us"];
    assert_eq!(wait.count, releases, "every spend waited on a commit");

    // And none of it was unaccounted: the budget charged every release.
    let budget = observer
        .budget("data")
        .expect("budget op")
        .expect("metered");
    assert!(
        (budget.spent - releases as f64 * EPSILON).abs() < 1e-6,
        "{releases} releases at ε={EPSILON} should have spent {}, ledger says {}",
        releases as f64 * EPSILON,
        budget.spent
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&ledger);
}
