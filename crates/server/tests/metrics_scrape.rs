//! End-to-end observability against a real `upa-serverd` process: a
//! served release yields a retrievable trace whose spans cover the
//! queue, engine, noise, and ledger stages; the request ID ties the
//! trace to the structured stderr log; and the `metrics` op returns a
//! well-formed exposition whose ε-remaining gauge shrinks with spend.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use upa_server::Client;

mod common;

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upa_e2e_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Spawns the daemon with a ledger and a zero slow-query threshold (so
/// every request logs its full trace), returning the child, its
/// announced address, and a thread collecting its stderr log lines.
fn spawn_daemon(ledger: &PathBuf) -> (Child, String, JoinHandle<Vec<String>>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-serverd"))
        .args([
            "--port",
            "0",
            "--synthetic",
            "data=4000:97",
            "--budget",
            "2.0",
            "--epsilon",
            "0.25",
            "--sample-size",
            "50",
            "--threads",
            "2",
            "--slow-query-ms",
            "0",
            "--ledger",
        ])
        .arg(ledger)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn upa-serverd");
    let stdout = child.stdout.take().expect("stdout piped");
    let stderr = child.stderr.take().expect("stderr piped");
    let log_lines = std::thread::spawn(move || {
        BufReader::new(stderr)
            .lines()
            .map_while(Result::ok)
            .collect()
    });
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("upa-server listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr, log_lines)
}

fn epsilon_remaining(client: &mut Client) -> f64 {
    let metrics = client.metrics().expect("metrics op");
    *metrics
        .snapshot
        .gauges
        .get("upa_budget_epsilon_remaining{dataset=\"data\"}")
        .expect("per-dataset ε-remaining gauge")
}

#[test]
fn served_release_yields_trace_metrics_and_log_line() {
    let ledger = temp_ledger("metrics_scrape");
    let (mut child, addr, log_lines) = spawn_daemon(&ledger);
    let mut client = Client::connect(&addr).expect("connect");

    let before = epsilon_remaining(&mut client);
    assert!((before - 2.0).abs() < 1e-9, "fresh budget, got {before}");

    let reply = client
        .release("data", "mean", "v", None, false)
        .expect("release is served");
    assert!(reply.released.is_finite());

    // The trace op returns the release's record with every serving
    // stage on the request timeline, plus the engine's own span tree.
    let records = client.traces(None, Some(8)).expect("trace op");
    let record = records
        .iter()
        .find(|r| r.op == "release")
        .expect("the release left a trace");
    assert!(
        record.request_id.starts_with("r-"),
        "request id {:?}",
        record.request_id
    );
    assert_eq!(record.outcome, "ok");
    assert_eq!(record.query_id, "data/mean/v");
    for span in ["queue_wait", "noise_draw", "ledger_fsync"] {
        assert!(
            record.span(span).is_some(),
            "span {span} missing from {:?}",
            record.spans
        );
    }
    // The leader ran the engine; a coalesced follower would instead
    // carry `coalesce_wait` over the same window.
    assert!(
        record.span("engine_prepare").is_some() || record.span("coalesce_wait").is_some(),
        "no prepare-phase span in {:?}",
        record.spans
    );
    assert!(
        !record.engine.is_empty() && record.engine.iter().all(|s| s.path.starts_with("engine")),
        "engine audit spans grafted under engine/"
    );

    // The same record is addressable by its ID.
    let by_id = client
        .traces(Some(&record.request_id), None)
        .expect("trace by id");
    assert_eq!(by_id.len(), 1);
    assert_eq!(by_id[0].request_id, record.request_id);

    // The exposition is well-formed and carries the release quantiles
    // and the per-dataset budget gauges.
    let metrics = client.metrics().expect("metrics op");
    common::assert_exposition_well_formed(
        &metrics.exposition,
        &[
            "upa_requests_total",
            "upa_release_latency_us",
            "upa_queue_wait_us",
            "upa_ledger_fsync_us",
            "upa_uptime_seconds",
            "upa_budget_epsilon_remaining",
        ],
    );
    assert!(
        metrics.exposition.contains("quantile=\"0.5\"")
            && metrics.exposition.contains("quantile=\"0.99\""),
        "exposition lacks latency quantiles"
    );

    // ε-remaining shrinks by exactly the charge, release after release.
    let after_one = epsilon_remaining(&mut client);
    assert!(
        (after_one - (before - 0.25)).abs() < 1e-9,
        "one ε=0.25 charge: {before} -> {after_one}"
    );
    client
        .release("data", "mean", "v", None, false)
        .expect("second release");
    let after_two = epsilon_remaining(&mut client);
    assert!(
        (after_two - (before - 0.5)).abs() < 1e-9,
        "two charges: {before} -> {after_two}"
    );

    let _ = client.shutdown();
    child.wait().expect("daemon drains and exits");

    // With `--slow-query-ms 0` every request is a slow-query offender,
    // so the stderr log carries the release's full trace, tagged with
    // the same request ID the trace op returned.
    let log = log_lines.join().expect("stderr reader").join("\n");
    let needle = format!("\"request_id\":\"{}\"", record.request_id);
    let line = log
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no log line for {}:\n{log}", record.request_id));
    assert!(
        line.contains("\"event\":\"slow_query\"") && line.contains("\"trace\":"),
        "slow-query line lacks the embedded trace: {line}"
    );
    upa_server::wire::parse(line).expect("structured log lines are valid JSON");

    let _ = std::fs::remove_file(&ledger);
}
