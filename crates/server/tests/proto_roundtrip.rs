//! Property tests of the typed protocol: any [`Request`] the client can
//! construct survives encode → wire-parse → decode unchanged, and every
//! [`ErrorCode`] round-trips with any printable message. This is what
//! keeps the two protocol ends from drifting — both speak only through
//! these codecs.

use proptest::prelude::*;
use upa_server::{wire, AggKind, ErrorCode, Request, Response};

fn ascii(bytes: Vec<u8>) -> String {
    String::from_utf8(bytes).expect("generated printable ASCII")
}

fn kind_of(idx: usize) -> AggKind {
    [AggKind::Count, AggKind::Sum, AggKind::Mean][idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request shape, with adversarial printable-ASCII names
    /// (including `"` and `\` to exercise the JSON escaper), decodes to
    /// exactly the value that was encoded.
    #[test]
    fn any_request_round_trips(
        op in 0usize..8,
        dataset_bytes in prop::collection::vec(32u8..127, 1..12),
        column_bytes in prop::collection::vec(32u8..127, 1..8),
        kind_idx in 0usize..3,
        epsilon in 0.001f64..4.0,
        with_epsilon in 0u8..2,
        audit in 0u8..2,
        deadline in 0u64..100_000,
        with_deadline in 0u8..2,
        last in 0u64..500,
        with_last in 0u8..2,
    ) {
        let dataset = ascii(dataset_bytes);
        let column = ascii(column_bytes);
        let request = match op {
            0 => Request::Ping,
            1 => Request::Datasets,
            2 => Request::Prepare {
                dataset,
                query: kind_of(kind_idx),
                column,
            },
            3 => Request::Release {
                dataset,
                query: kind_of(kind_idx),
                column,
                epsilon: (with_epsilon == 1).then_some(epsilon),
                audit: audit == 1,
                deadline_ms: (with_deadline == 1).then_some(deadline),
            },
            4 => Request::Budget { dataset },
            5 => Request::Audit {
                dataset,
                last: (with_last == 1).then_some(last),
            },
            6 => Request::Stats,
            _ => Request::Shutdown,
        };
        let parsed = wire::parse(&request.to_line());
        prop_assert!(parsed.is_ok(), "encoded line must be valid JSON: {request:?}");
        let decoded = Request::from_json(&parsed.unwrap());
        prop_assert!(decoded.is_ok(), "encoded line must decode: {request:?}");
        prop_assert_eq!(decoded.unwrap(), request);
    }

    /// Every member of the closed error-code set survives the wire with
    /// any printable message attached.
    #[test]
    fn every_error_code_round_trips_with_any_message(
        idx in 0usize..9,
        message_bytes in prop::collection::vec(32u8..127, 0..24),
    ) {
        let code = ErrorCode::ALL[idx];
        let message = ascii(message_bytes);
        let line = Response::Error {
            code,
            message: message.clone(),
        }
        .to_line();
        let parsed = wire::parse(line.trim());
        prop_assert!(parsed.is_ok(), "error line must be valid JSON");
        match Response::from_json(&parsed.unwrap()) {
            Ok(Response::Error { code: got, message: got_message }) => {
                prop_assert_eq!(got, code);
                prop_assert_eq!(got_message, message);
            }
            other => prop_assert!(false, "expected an Error reply, got {other:?}"),
        }
    }
}
