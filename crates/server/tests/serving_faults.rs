//! Deterministic fault injection on the serving path, plus the
//! concurrency behaviours (shared prepared cache, admission control,
//! draining shutdown) exercised over real TCP connections.
//!
//! The crash-safety invariant under test (see `upa_server::ledger`):
//! every *delivered* release has a durable ledger record. The converse
//! direction is deliberately fail-closed — a worker dying after the
//! fsync but before the reply leaves a spend with no delivered result,
//! which wastes budget but never leaks it. Both sides are pinned here.

use std::path::PathBuf;
use std::thread::JoinHandle;
use upa_server::{
    Client, ClientError, DatasetSpec, ErrorCode, ReleaseFault, Server, ServerConfig, ShutdownHandle,
};

fn temp_ledger(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("upa_serving_fault_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn base_config() -> ServerConfig {
    ServerConfig {
        datasets: vec![DatasetSpec::synthetic("data", 3_000, 11)],
        budget: Some(1.0),
        epsilon: 0.2,
        sample_size: 40,
        threads: 2,
        ..ServerConfig::default()
    }
}

/// Binds an ephemeral port and runs the server on a background thread.
fn start(config: ServerConfig) -> (String, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn ledger_lines(path: &PathBuf) -> usize {
    std::fs::read_to_string(path)
        .map(|s| s.lines().count())
        .unwrap_or(0)
}

#[test]
fn fault_after_ledger_spends_without_delivering() {
    let path = temp_ledger("after");
    let (addr, handle, join) = start(ServerConfig {
        ledger_path: Some(path.clone()),
        fault: ReleaseFault::AfterLedger(1),
        ..base_config()
    });

    // Release 0 is healthy.
    let mut healthy = Client::connect(&addr).unwrap();
    let first = healthy.release("data", "sum", "v", None, false).unwrap();
    assert!((first.budget_remaining.unwrap() - 0.8).abs() < 1e-9);

    // Release 1 dies after its spend is durable: the worker panics, the
    // connection drops, and the client never sees a result.
    let mut doomed = Client::connect(&addr).unwrap();
    let err = doomed.release("data", "sum", "v", None, false).unwrap_err();
    assert!(
        matches!(err, ClientError::Protocol(_) | ClientError::Io(_)),
        "the faulted release must not produce a reply, got {err}"
    );

    // Fail-closed: the undelivered release still charged the ledger.
    assert_eq!(ledger_lines(&path), 2, "both spends are durable");

    // A restart against the same ledger accounts for both.
    handle.shutdown();
    join.join().unwrap().unwrap();
    let (addr2, handle2, join2) = start(ServerConfig {
        ledger_path: Some(path.clone()),
        ..base_config()
    });
    let mut after = Client::connect(&addr2).unwrap();
    let budget = after.budget("data").unwrap().unwrap();
    assert!(
        (budget.spent - 0.4).abs() < 1e-9,
        "replay sees the delivered and the undelivered spend alike"
    );
    handle2.shutdown();
    join2.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_before_ledger_neither_spends_nor_delivers() {
    let path = temp_ledger("before");
    let (addr, handle, join) = start(ServerConfig {
        ledger_path: Some(path.clone()),
        fault: ReleaseFault::BeforeLedger(0),
        ..base_config()
    });

    // Release 0 dies before any spend reaches the ledger.
    let mut doomed = Client::connect(&addr).unwrap();
    let err = doomed
        .release("data", "mean", "v", None, false)
        .unwrap_err();
    assert!(matches!(err, ClientError::Protocol(_) | ClientError::Io(_)));
    assert_eq!(ledger_lines(&path), 0, "no spend, no result: budget intact");

    // The server survives its worker's death; the next release works and
    // pays the full budget (nothing was leaked to the faulted attempt).
    let mut next = Client::connect(&addr).unwrap();
    let out = next.release("data", "mean", "v", None, false).unwrap();
    assert!((out.budget_remaining.unwrap() - 0.8).abs() < 1e-9);
    assert_eq!(ledger_lines(&path), 1);

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn prepared_cache_is_shared_across_connections() {
    let (addr, handle, join) = start(base_config());
    let mut a = Client::connect(&addr).unwrap();
    let first = a.prepare("data", "sum", "v").unwrap();
    assert!(!first.cached, "first prepare runs the engine");

    let mut b = Client::connect(&addr).unwrap();
    let second = b.prepare("data", "sum", "v").unwrap();
    assert!(
        second.cached,
        "another connection reuses the prepared state"
    );
    assert_eq!(first.query_id, second.query_id);
    assert_eq!(first.sample_size, second.sample_size);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn connections_beyond_the_cap_are_refused_busy() {
    let (addr, handle, join) = start(ServerConfig {
        max_connections: 1,
        ..base_config()
    });
    let mut admitted = Client::connect(&addr).unwrap();
    admitted.ping().unwrap(); // ensure the slot is taken before racing

    let mut refused = Client::connect(&addr).unwrap();
    match refused.ping().unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected a busy refusal, got {other}"),
    }

    // Freeing the slot readmits.
    drop(admitted);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(&addr).unwrap();
        match retry.ping() {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (addr, _handle, join) = start(base_config());
    let mut active = Client::connect(&addr).unwrap();
    // Real work before the drain: the release must complete and the
    // server must answer it even though a shutdown follows immediately.
    let out = active.release("data", "count", "", None, false).unwrap();
    assert!(out.released.is_finite());

    let mut stopper = Client::connect(&addr).unwrap();
    stopper.shutdown().unwrap();

    // The accept loop exits and every worker is joined.
    join.join().unwrap().unwrap();

    // New connections are refused outright (the listener is gone).
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().is_err()
        }
    );
}
