//! Shared helpers for the server integration tests.

/// Asserts Prometheus-text-exposition well-formedness: every line is a
/// `# TYPE`/`# HELP` comment or a `name value` sample with a float
/// value, and every family named in `required` is present.
pub fn assert_exposition_well_formed(text: &str, required: &[&str]) {
    let mut families = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("TYPE ") || rest.starts_with("HELP "),
                "line {i}: unknown comment {line:?}"
            );
            continue;
        }
        // A sample: `name{labels} value` or `name value`, value a float.
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {i}: no value separator in {line:?}"));
        assert!(!name.is_empty(), "line {i}: empty metric name");
        assert!(
            value.parse::<f64>().is_ok(),
            "line {i}: value {value:?} is not a number in {line:?}"
        );
        let family = name.split('{').next().unwrap();
        assert!(
            family
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "line {i}: malformed family {family:?}"
        );
        families.insert(family.to_string());
    }
    for family in required {
        assert!(
            families.contains(*family),
            "required family {family} missing; have {families:?}"
        );
    }
}
