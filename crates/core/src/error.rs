//! Error type for UPA operations.

use upa_stats::StatsError;

/// Errors surfaced by the UPA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum UpaError {
    /// The input dataset was empty — there is nothing to protect and no
    /// neighbour outputs to sample.
    EmptyDataset,
    /// A statistics routine failed (degenerate fit parameters etc.).
    Stats(StatsError),
    /// The privacy budget is exhausted; the payload is the remaining
    /// budget that was insufficient for the request.
    BudgetExhausted { remaining: f64, requested: f64 },
    /// A configuration value was invalid; the payload names it.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for UpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpaError::EmptyDataset => write!(f, "input dataset is empty"),
            UpaError::Stats(e) => write!(f, "statistics error: {e}"),
            UpaError::BudgetExhausted {
                remaining,
                requested,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            UpaError::InvalidConfig(name) => write!(f, "invalid configuration: {name}"),
        }
    }
}

impl std::error::Error for UpaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpaError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for UpaError {
    fn from(e: StatsError) -> Self {
        UpaError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(!UpaError::EmptyDataset.to_string().is_empty());
        let e = UpaError::BudgetExhausted {
            remaining: 0.05,
            requested: 0.1,
        };
        assert!(e.to_string().contains("0.05"));
        assert!(UpaError::from(StatsError::EmptySample)
            .to_string()
            .contains("empty sample"));
    }
}
