//! **UPA** — Union Preserving Aggregation: automated, accurate and
//! efficient individual differential privacy (iDP) for MapReduce queries.
//!
//! This crate is the primary contribution of the reproduced paper (Li et
//! al., *UPA: An Automated, Accurate and Efficient Differentially Private
//! Big-data Mining System*, DSN 2020). Given a query expressed as a
//! commutative/associative Map/Reduce decomposition ([`query::MapReduceQuery`])
//! and a partitioned input dataset ([`dataflow::Dataset`]), UPA:
//!
//! 1. **Partitions and samples** (`n = 1000` by default): picks the
//!    *differing records* `S` uniformly from the input `x` and `n`
//!    candidate additions from the record domain (`D \ x`, provided by a
//!    [`domain::DomainSampler`]);
//! 2. **Maps in parallel** over `S`, the additions, and the remainder `S′`;
//! 3. Runs the **union-preserving reduce**: computes `R(M(S′))` once and
//!    reuses it — together with prefix/suffix partial reductions over the
//!    sampled records — to obtain the query output on all `2n` sampled
//!    neighbouring datasets at `O(|x| + n)` total cost instead of the
//!    brute-force `O(n · |x|)`;
//! 4. **Enforces iDP**: fits a normal distribution to the neighbour
//!    outputs by MLE, takes the P1–P99 interval as both the local
//!    sensitivity and the enforced output range `Ô_f`, runs
//!    [`enforcer::RangeEnforcer`] (the paper's Algorithm 2) against the
//!    query history to defeat repeated-query attacks, clamps the output
//!    into `Ô_f` and releases it with Laplace noise of scale
//!    `(P99 − P1)/ε`.
//!
//! The [`brute`] module computes ground-truth local sensitivity for the
//! accuracy evaluation, and [`budget`] tracks cumulative privacy spend.
//!
//! # Quickstart
//!
//! ```
//! use dataflow::Context;
//! use upa_core::{domain::FnSampler, query::MapReduceQuery, Upa, UpaConfig};
//!
//! let ctx = Context::with_threads(2);
//! let data: Vec<f64> = (0..5_000).map(|i| (i % 97) as f64).collect();
//! let ds = ctx.parallelize(data, 8);
//!
//! // A SUM query as its Map/Reduce decomposition.
//! let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
//! // The record domain: values a fresh record could take.
//! let domain = FnSampler::new(|rng: &mut rand::rngs::StdRng| rand::Rng::gen_range(rng, 0.0..97.0));
//!
//! let mut upa = Upa::new(ctx, UpaConfig { sample_size: 200, ..UpaConfig::default() });
//! let result = upa.run(&ds, &query, &domain).unwrap();
//! assert!(result.sensitivity[0] > 0.0);
//! ```

pub mod api;
pub mod audit;
pub mod brute;
pub mod budget;
pub mod domain;
pub mod enforcer;
pub mod error;
pub mod join;
pub mod manual;
pub mod output;
pub mod pipeline;
pub mod query;

pub use audit::QueryAudit;
pub use config::{UpaConfig, UpaConfigBuilder};
pub use error::UpaError;
pub use output::DpOutput;
pub use pipeline::{PreparedQuery, Upa, UpaResult};

mod config;
