//! Privacy-budget accounting (sequential composition).
//!
//! Differential privacy composes: answering `k` queries at ε each costs
//! `k·ε` in total. The accountant tracks cumulative spend and refuses
//! queries that would exceed the data provider's total budget.

/// A sequential-composition privacy-budget accountant.
///
/// ```
/// use upa_core::budget::BudgetAccountant;
/// let mut b = BudgetAccountant::new(1.0);
/// assert!(b.try_spend(0.6).is_ok());
/// assert!(b.try_spend(0.6).is_err());
/// assert!((b.remaining() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetAccountant {
    total: f64,
    spent: f64,
}

impl BudgetAccountant {
    /// Creates an accountant with the given total ε budget.
    ///
    /// # Panics
    ///
    /// Panics if `total_epsilon` is not a finite positive number.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(
            total_epsilon.is_finite() && total_epsilon > 0.0,
            "total budget must be finite and positive"
        );
        BudgetAccountant {
            total: total_epsilon,
            spent: 0.0,
        }
    }

    /// Reconstructs an accountant from persisted state — the replay half
    /// of a budget ledger. `spent` is the sum of every durable charge;
    /// it may legitimately exceed `total` (e.g. the provider lowered the
    /// budget between runs), in which case [`BudgetAccountant::remaining`]
    /// is zero and every further charge is refused.
    ///
    /// # Panics
    ///
    /// Panics if `total_epsilon` is not finite-positive or `spent` is not
    /// finite and non-negative.
    pub fn restore(total_epsilon: f64, spent: f64) -> Self {
        assert!(
            total_epsilon.is_finite() && total_epsilon > 0.0,
            "total budget must be finite and positive"
        );
        assert!(
            spent.is_finite() && spent >= 0.0,
            "replayed spend must be finite and non-negative"
        );
        BudgetAccountant {
            total: total_epsilon,
            spent,
        }
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Charges `epsilon` if it fits.
    ///
    /// # Errors
    ///
    /// Returns the remaining budget when the charge does not fit. A small
    /// tolerance absorbs floating-point accumulation so that, e.g., ten
    /// charges of 0.1 fit a budget of 1.0 exactly.
    pub fn try_spend(&mut self, epsilon: f64) -> Result<(), f64> {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "charged epsilon must be finite and positive"
        );
        if self.spent + epsilon <= self.total + 1e-12 {
            self.spent += epsilon;
            Ok(())
        } else {
            Err(self.remaining())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spends_until_exhausted() {
        let mut b = BudgetAccountant::new(0.3);
        assert!(b.try_spend(0.1).is_ok());
        assert!(b.try_spend(0.1).is_ok());
        assert!(b.try_spend(0.1).is_ok());
        let err = b.try_spend(0.1).unwrap_err();
        assert!(err.abs() < 1e-9, "remaining should be ~0, got {err}");
        assert!((b.spent() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejected_spend_does_not_charge() {
        let mut b = BudgetAccountant::new(0.5);
        b.try_spend(0.4).unwrap();
        assert!(b.try_spend(0.2).is_err());
        assert!(
            (b.spent() - 0.4).abs() < 1e-12,
            "failed spend must not charge"
        );
        assert!(b.try_spend(0.1).is_ok(), "a fitting charge still succeeds");
    }

    #[test]
    fn restore_resumes_where_the_ledger_left_off() {
        let mut original = BudgetAccountant::new(1.0);
        for _ in 0..10 {
            original.try_spend(0.1).unwrap();
        }
        // Replaying the same charges reconstructs the same state: the
        // tolerance that let ten 0.1-charges fill a 1.0 budget exactly
        // must survive the round trip.
        let mut replayed = BudgetAccountant::restore(1.0, original.spent());
        assert_eq!(replayed.spent(), original.spent());
        assert!(replayed.try_spend(0.1).is_err(), "budget stays exhausted");
        // A spend beyond the total (budget lowered after the fact) clamps
        // remaining to zero instead of going negative.
        let over = BudgetAccountant::restore(0.5, 0.8);
        assert_eq!(over.remaining(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn restore_rejects_negative_spend() {
        let _ = BudgetAccountant::restore(1.0, -0.1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_zero_total() {
        let _ = BudgetAccountant::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_bad_charge() {
        let mut b = BudgetAccountant::new(1.0);
        let _ = b.try_spend(-0.1);
    }
}
