//! Brute-force ground-truth local sensitivity.
//!
//! Definition II.1: `LS_f(x) = max over neighbours y of |f(x) − f(y)|`.
//! The paper's accuracy evaluation (Figure 2(a) and Figure 3) compares
//! inferred sensitivities against this ground truth.
//!
//! Two implementations are provided:
//!
//! * [`exact_local_sensitivity`] — exploits the query's associative
//!   decomposition with prefix/suffix partial reductions: all `|x|`
//!   removal neighbours in `O(|x|)` reductions. This is what makes ground
//!   truth computable at 10⁵-record scale in this reproduction (the paper
//!   ran the genuinely black-box version on a cluster).
//! * [`blackbox_local_sensitivity`] — the literal brute force the paper
//!   describes: re-evaluates the query from scratch per neighbour,
//!   `O(|x|²)`. Used on small inputs to cross-validate the fast path and
//!   by the Figure 4 harness to report the brute-force cost model.

use crate::domain::DomainSampler;
use crate::output::DpOutput;
use crate::query::MapReduceQuery;
use dataflow::Data;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground-truth neighbour outputs and the resulting local sensitivity.
#[derive(Debug, Clone)]
pub struct GroundTruth<Out> {
    /// `f(x)`.
    pub output: Out,
    /// `f(x − r)` for **every** record `r` of `x`, in record order.
    pub removal_outputs: Vec<Out>,
    /// `f(x + d)` for sampled domain records `d`.
    pub addition_outputs: Vec<Out>,
    /// `max |f(x) − f(y)|` (L∞ over components) across all neighbours.
    pub local_sensitivity: f64,
}

impl<Out: DpOutput> GroundTruth<Out> {
    fn from_outputs(output: Out, removal_outputs: Vec<Out>, addition_outputs: Vec<Out>) -> Self {
        let local_sensitivity = removal_outputs
            .iter()
            .chain(addition_outputs.iter())
            .map(|o| output.distance(o))
            .fold(0.0, f64::max);
        GroundTruth {
            output,
            removal_outputs,
            addition_outputs,
            local_sensitivity,
        }
    }

    /// The extreme (min, max) per component across all neighbour outputs —
    /// the blue lines of the paper's Figure 3.
    pub fn neighbour_extremes(&self) -> Vec<(f64, f64)> {
        let dims = self.output.components().len();
        let mut extremes = vec![(f64::INFINITY, f64::NEG_INFINITY); dims];
        for o in self
            .removal_outputs
            .iter()
            .chain(self.addition_outputs.iter())
        {
            for (c, v) in o.components().into_iter().enumerate() {
                if c < dims {
                    extremes[c].0 = extremes[c].0.min(v);
                    extremes[c].1 = extremes[c].1.max(v);
                }
            }
        }
        extremes
    }
}

/// Exact local sensitivity using associative reuse: every removal
/// neighbour of `x` plus `additions` sampled additions.
///
/// `domain_samples` controls how many addition neighbours are evaluated
/// (the removal side is always exhaustive; the addition side of `D \ x` is
/// infinite in general and must be sampled).
pub fn exact_local_sensitivity<T, Acc, Out>(
    records: &[T],
    query: &MapReduceQuery<T, Acc, Out>,
    domain: &dyn DomainSampler<T>,
    domain_samples: usize,
    seed: u64,
) -> GroundTruth<Out>
where
    T: Data,
    Acc: Data,
    Out: DpOutput,
{
    let n = records.len();
    let mapped: Vec<Acc> = records.iter().map(|r| query.map(r)).collect();
    // Prefix/suffix partial reductions over the *whole* dataset.
    let mut prefix: Vec<Option<Acc>> = Vec::with_capacity(n + 1);
    prefix.push(None);
    for acc in &mapped {
        let last = prefix.last().expect("pushed above").clone();
        prefix.push(query.merge_opt(last, Some(acc.clone())));
    }
    let mut suffix: Vec<Option<Acc>> = vec![None; n + 1];
    for i in (0..n).rev() {
        suffix[i] = query.merge_opt(Some(mapped[i].clone()), suffix[i + 1].clone());
    }
    let total = prefix[n].clone();
    let output = query.finalize(total.as_ref());

    let removal_outputs: Vec<Out> = (0..n)
        .map(|i| {
            let without = query.merge_opt(prefix[i].clone(), suffix[i + 1].clone());
            query.finalize(without.as_ref())
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let addition_outputs: Vec<Out> = domain
        .sample_n(&mut rng, domain_samples)
        .iter()
        .map(|d| {
            let acc = query.map(d);
            query.finalize(query.merge_opt(total.clone(), Some(acc)).as_ref())
        })
        .collect();

    GroundTruth::from_outputs(output, removal_outputs, addition_outputs)
}

/// Literal brute force: re-evaluates the query from scratch for each
/// neighbour (`O(|x|²)` mapper/reducer applications). Use only on small
/// inputs; exists to validate [`exact_local_sensitivity`] and to measure
/// the brute-force cost the paper contrasts against.
pub fn blackbox_local_sensitivity<T, Acc, Out>(
    records: &[T],
    query: &MapReduceQuery<T, Acc, Out>,
    domain: &dyn DomainSampler<T>,
    domain_samples: usize,
    seed: u64,
) -> GroundTruth<Out>
where
    T: Data,
    Acc: Data,
    Out: DpOutput,
{
    let output = query.evaluate_slice(records);
    let removal_outputs: Vec<Out> = (0..records.len())
        .map(|i| {
            let mut without: Vec<T> = Vec::with_capacity(records.len() - 1);
            without.extend_from_slice(&records[..i]);
            without.extend_from_slice(&records[i + 1..]);
            query.evaluate_slice(&without)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let addition_outputs: Vec<Out> = domain
        .sample_n(&mut rng, domain_samples)
        .into_iter()
        .map(|d| {
            let mut with: Vec<T> = records.to_vec();
            with.push(d);
            query.evaluate_slice(&with)
        })
        .collect();
    GroundTruth::from_outputs(output, removal_outputs, addition_outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::EmpiricalSampler;

    #[test]
    fn fast_path_matches_blackbox() {
        let data: Vec<f64> = (0..60).map(|i| ((i * 13) % 17) as f64).collect();
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x * 2.0);
        let domain = EmpiricalSampler::new(data.clone());
        let fast = exact_local_sensitivity(&data, &query, &domain, 20, 7);
        let slow = blackbox_local_sensitivity(&data, &query, &domain, 20, 7);
        assert!((fast.output - slow.output).abs() < 1e-9);
        assert_eq!(fast.removal_outputs.len(), slow.removal_outputs.len());
        for (a, b) in fast.removal_outputs.iter().zip(slow.removal_outputs.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in fast
            .addition_outputs
            .iter()
            .zip(slow.addition_outputs.iter())
        {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((fast.local_sensitivity - slow.local_sensitivity).abs() < 1e-9);
    }

    #[test]
    fn count_query_has_unit_sensitivity() {
        let data = vec![0.0; 100];
        let query = MapReduceQuery::scalar_sum("count", |_: &f64| 1.0);
        let domain = EmpiricalSampler::new(data.clone());
        let gt = exact_local_sensitivity(&data, &query, &domain, 10, 1);
        assert!((gt.local_sensitivity - 1.0).abs() < 1e-12);
        assert_eq!(gt.output, 100.0);
    }

    #[test]
    fn sensitivity_reflects_extreme_record() {
        // One outlier record of value 1000 dominates the removal side.
        let mut data = vec![1.0; 50];
        data.push(1000.0);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(vec![1.0]);
        let gt = exact_local_sensitivity(&data, &query, &domain, 5, 1);
        assert!((gt.local_sensitivity - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn neighbour_extremes_bracket_all_outputs() {
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data.clone());
        let gt = exact_local_sensitivity(&data, &query, &domain, 10, 3);
        let (lo, hi) = gt.neighbour_extremes()[0];
        for o in gt.removal_outputs.iter().chain(gt.addition_outputs.iter()) {
            assert!(*o >= lo && *o <= hi);
        }
        assert!(lo < hi);
    }

    #[test]
    fn empty_dataset_has_empty_removals() {
        let data: Vec<f64> = Vec::new();
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(vec![2.0]);
        let gt = exact_local_sensitivity(&data, &query, &domain, 4, 1);
        assert!(gt.removal_outputs.is_empty());
        assert_eq!(gt.addition_outputs.len(), 4);
        assert!((gt.local_sensitivity - 2.0).abs() < 1e-12);
    }
}
