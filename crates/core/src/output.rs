//! Query output values.
//!
//! UPA treats the output of a query as a point in `R^d`: scalar for the
//! counting/arithmetic queries, a model vector for the machine-learning
//! queries (KMeans centroids, Linear Regression weights). Sensitivity,
//! output ranges and Laplace noise are all applied **per component**, which
//! generalises the paper's scalar presentation in the standard way.

use dataflow::Data;

/// A query output: a fixed-dimension vector of finite components.
///
/// Implemented for `f64` (dimension 1) and `Vec<f64>`. Equality of
/// components is what RANGE ENFORCER uses to compare partition outputs
/// across queries — two runs of the same deterministic reduction produce
/// bit-identical floats, so exact comparison is the right operation.
pub trait DpOutput: Data + std::fmt::Debug {
    /// The output as a component vector.
    fn components(&self) -> Vec<f64>;

    /// Rebuilds an output from components (inverse of
    /// [`DpOutput::components`]).
    fn from_components(components: Vec<f64>) -> Self;

    /// L∞ distance between two outputs — the "greatest change on an output
    /// value" in the paper's Definition II.1, taken per component.
    fn distance(&self, other: &Self) -> f64 {
        self.components()
            .iter()
            .zip(other.components().iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether all components are exactly equal.
    fn same_as(&self, other: &Self) -> bool {
        let a = self.components();
        let b = other.components();
        a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y)
    }
}

impl DpOutput for f64 {
    fn components(&self) -> Vec<f64> {
        vec![*self]
    }

    fn from_components(components: Vec<f64>) -> Self {
        assert_eq!(components.len(), 1, "scalar output expects one component");
        components[0]
    }
}

impl DpOutput for Vec<f64> {
    fn components(&self) -> Vec<f64> {
        self.clone()
    }

    fn from_components(components: Vec<f64>) -> Self {
        components
    }
}

/// A per-component closed interval used as the enforced output range
/// `Ô_f`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRange {
    /// Per-component `(min, max)` bounds.
    pub bounds: Vec<(f64, f64)>,
}

impl OutputRange {
    /// Creates a range from per-component bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound has `min > max`.
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        assert!(
            bounds.iter().all(|(lo, hi)| lo <= hi),
            "output range bounds must satisfy min <= max"
        );
        OutputRange { bounds }
    }

    /// Number of components.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// Per-component widths `max − min`: UPA's inferred local sensitivity.
    pub fn widths(&self) -> Vec<f64> {
        self.bounds.iter().map(|(lo, hi)| hi - lo).collect()
    }

    /// Whether `components` lies inside the range in every dimension.
    pub fn contains(&self, components: &[f64]) -> bool {
        components.len() == self.bounds.len()
            && components
                .iter()
                .zip(self.bounds.iter())
                .all(|(x, (lo, hi))| *x >= *lo && *x <= *hi)
    }

    /// Clamps each out-of-range component to a uniformly random point
    /// inside its bound (Algorithm 2, lines 17–18); in-range components
    /// are left untouched. Returns whether any component was replaced.
    pub fn constrain<R: rand::Rng + ?Sized>(&self, components: &mut [f64], rng: &mut R) -> bool {
        assert_eq!(components.len(), self.bounds.len(), "dimension mismatch");
        let mut clamped = false;
        for (x, (lo, hi)) in components.iter_mut().zip(self.bounds.iter()) {
            if *x < *lo || *x > *hi {
                *x = if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                };
                clamped = true;
            }
        }
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_round_trip() {
        let x = 3.25f64;
        assert_eq!(x.components(), vec![3.25]);
        assert_eq!(f64::from_components(vec![3.25]), 3.25);
    }

    #[test]
    fn vector_round_trip_and_distance() {
        let a = vec![1.0, 5.0];
        let b = vec![2.0, 3.0];
        assert_eq!(a.distance(&b), 2.0, "L-infinity distance");
        assert_eq!(Vec::<f64>::from_components(a.clone()), a);
    }

    #[test]
    fn same_as_is_exact() {
        assert!(1.0f64.same_as(&1.0));
        assert!(!1.0f64.same_as(&(1.0 + f64::EPSILON)));
        assert!(!vec![1.0].same_as(&vec![1.0, 2.0]));
    }

    #[test]
    fn range_contains_and_widths() {
        let r = OutputRange::new(vec![(0.0, 2.0), (-1.0, 1.0)]);
        assert!(r.contains(&[1.0, 0.0]));
        assert!(!r.contains(&[3.0, 0.0]));
        assert!(!r.contains(&[1.0])); // dimension mismatch
        assert_eq!(r.widths(), vec![2.0, 2.0]);
    }

    #[test]
    fn constrain_replaces_only_out_of_range() {
        let r = OutputRange::new(vec![(0.0, 1.0), (0.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = [0.5, 7.0];
        let clamped = r.constrain(&mut v, &mut rng);
        assert!(clamped);
        assert_eq!(v[0], 0.5, "in-range component untouched");
        assert!((0.0..=1.0).contains(&v[1]));
        let mut w = [0.1, 0.9];
        assert!(!r.constrain(&mut w, &mut rng));
        assert_eq!(w, [0.1, 0.9]);
    }

    #[test]
    fn constrain_degenerate_range() {
        let r = OutputRange::new(vec![(5.0, 5.0)]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = [99.0];
        r.constrain(&mut v, &mut rng);
        assert_eq!(v[0], 5.0);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn range_rejects_inverted_bounds() {
        let _ = OutputRange::new(vec![(1.0, 0.0)]);
    }
}
