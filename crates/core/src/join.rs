//! `joinDP` — differentially private aggregation over joins (paper §V-C).
//!
//! Join queries take two inputs: the **protected** table (whose records
//! iDP protects) and another table. Removing one protected record can
//! remove *many* joined tuples (joins are one-to-many), so the influence
//! of each sampled record must be tracked through the join.
//!
//! Exactly as the paper describes, UPA performs **two rounds of join and
//! shuffle** where vanilla execution performs one:
//!
//! 1. the *remainder* join — `S′ ⋈ other`, tagged with each protected
//!    record's logical half so RANGE ENFORCER's partition outputs survive
//!    the shuffle;
//! 2. the *differing* join — the sampled records and the candidate
//!    additions, tagged with their sample index, joined against `other`;
//!    the per-index aggregation is each record's influence.
//!
//! This double shuffling is what makes TPCH4/TPCH13 exceed 100% overhead
//! in the paper's Figure 2(b), and the engine's shuffle counters show the
//! same 2× shuffle blow-up here.
//!
//! The per-tuple function both filters (`None` drops the joined tuple —
//! the `Filter` of the SQL queries) and projects the joined tuple into an
//! accumulator, so arbitrary filtered aggregates over one join are
//! expressible; multi-join queries (TPCH16/21) instead use broadcast
//! map-side joins via [`broadcast_map`] + [`MapReduceQuery`], the standard
//! Spark idiom when the non-protected side fits in memory.

use crate::domain::DomainSampler;
use crate::error::UpaError;
use crate::output::DpOutput;
use crate::pipeline::{Upa, UpaResult};
use crate::query::MapReduceQuery;
use dataflow::{Data, Dataset, PairOps, SpanRecorder};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Deterministic 64-bit hash of a key (fixed-key SipHash via
/// `DefaultHasher::new()`), used for stable half assignment.
fn stable_hash<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Shared handle to a per-joined-tuple projection/filter.
pub type PerTupleFn<K, V, W, A> = Arc<dyn Fn(&K, &V, &W) -> Option<A> + Send + Sync>;

/// An aggregation over the tuples of `protected ⋈ other`.
pub struct JoinAggregate<K, V, W, A, Out> {
    name: String,
    per_tuple: PerTupleFn<K, V, W, A>,
    reduce: crate::query::ReduceFn<A>,
    finalize: crate::query::FinalizeFn<A, Out>,
}

impl<K, V, W, A, Out> Clone for JoinAggregate<K, V, W, A, Out> {
    fn clone(&self) -> Self {
        JoinAggregate {
            name: self.name.clone(),
            per_tuple: Arc::clone(&self.per_tuple),
            reduce: Arc::clone(&self.reduce),
            finalize: Arc::clone(&self.finalize),
        }
    }
}

impl<K, V, W, A, Out> std::fmt::Debug for JoinAggregate<K, V, W, A, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinAggregate")
            .field("name", &self.name)
            .finish()
    }
}

impl<K: Data, V: Data, W: Data, A: Data, Out: DpOutput> JoinAggregate<K, V, W, A, Out> {
    /// Creates a join aggregate. `per_tuple` returning `None` filters the
    /// joined tuple out; `reduce` must be commutative and associative.
    pub fn new(
        name: impl Into<String>,
        per_tuple: impl Fn(&K, &V, &W) -> Option<A> + Send + Sync + 'static,
        reduce: impl Fn(&A, &A) -> A + Send + Sync + 'static,
        finalize: impl Fn(Option<&A>) -> Out + Send + Sync + 'static,
    ) -> Self {
        JoinAggregate {
            name: name.into(),
            per_tuple: Arc::new(per_tuple),
            reduce: Arc::new(reduce),
            finalize: Arc::new(finalize),
        }
    }

    /// The aggregate's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<K: Data, V: Data, W: Data> JoinAggregate<K, V, W, f64, f64> {
    /// COUNT of joined tuples satisfying `predicate` — the query shape of
    /// the TPC-H count benchmarks.
    pub fn count(
        name: impl Into<String>,
        predicate: impl Fn(&K, &V, &W) -> bool + Send + Sync + 'static,
    ) -> Self {
        JoinAggregate::new(
            name,
            move |k, v, w| predicate(k, v, w).then_some(1.0),
            |a, b| a + b,
            |acc| acc.copied().unwrap_or(0.0),
        )
    }
}

/// Collects `other` into a broadcast hash table keyed by join key — the
/// map-side-join building block used by the multi-join TPC-H queries.
pub fn broadcast_map<K, W>(other: &Dataset<(K, W)>) -> Arc<HashMap<K, Vec<W>>>
where
    K: Data + Hash + Eq,
    W: Data,
{
    let mut table: HashMap<K, Vec<W>> = HashMap::new();
    for (k, w) in other.collect() {
        table.entry(k).or_default().push(w);
    }
    Arc::new(table)
}

impl Upa {
    /// Runs a join aggregate under iDP, protecting the records of
    /// `protected` (the paper's `joinDP`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run`].
    pub fn run_join<K, V, W, A, Out>(
        &mut self,
        protected: &Dataset<(K, V)>,
        other: &Dataset<(K, W)>,
        agg: &JoinAggregate<K, V, W, A, Out>,
        domain: &dyn DomainSampler<(K, V)>,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        K: Data + Hash + Eq,
        V: Data,
        W: Data,
        A: Data,
        Out: DpOutput,
    {
        let spans = SpanRecorder::new();
        let engine_before = self.ctx.metrics();
        let prepare_scope = spans.enter("prepare");

        // ---- Phase 1: Partition & Sample --------------------------------
        let (indices, sampled, remainder) = {
            let mut scope = spans.enter("partition");
            scope.add_records(protected.len() as u64);
            let (indices, _physical_halves, _half_split) = self.prepare_sample(protected)?;
            let (sampled, remainder) = protected.split_indices(&indices);
            (indices, sampled, remainder)
        };
        let n = indices.len();
        let (additions, sampled_halves) = {
            let mut scope = spans.enter("sample");
            scope.add_records(2 * n as u64);
            let additions = domain.sample_n(&mut self.rng, n);
            // Logical halves by the hash of the join key: content-defined,
            // so RANGE ENFORCER's partition fingerprints stay comparable
            // across neighbouring datasets.
            let sampled_halves: Vec<usize> = sampled
                .iter()
                .map(|(k, _)| (stable_hash(k) % 2) as usize)
                .collect();
            (additions, sampled_halves)
        };

        // ---- Phase 2: tag maps (the join path's parallel map) ------------
        // Tag each protected record with its logical half before the
        // shuffle destroys partition identity, and each differing record
        // with its sample index.
        let (tagged, tagged_sample) = {
            let mut scope = spans.enter("map");
            scope.add_records(remainder.len() as u64 + 2 * n as u64);
            let tagged =
                remainder.map(move |(k, v)| (k.clone(), (v.clone(), (stable_hash(k) % 2) as u8)));
            let mut tagged_sample: Vec<(K, (usize, V))> = Vec::with_capacity(2 * n);
            for (i, (k, v)) in sampled.iter().enumerate() {
                tagged_sample.push((k.clone(), (i, v.clone())));
            }
            for (i, (k, v)) in additions.iter().enumerate() {
                tagged_sample.push((k.clone(), (n + i, v.clone())));
            }
            (tagged, tagged_sample)
        };

        let reduce_scope = spans.enter("reduce");
        // ---- Round 1: remainder join (S′ ⋈ other) ------------------------
        let rem_half: [Option<Option<A>>; 2] = {
            let _scope = spans.enter("join_remainder");
            let joined = tagged.join(other);
            let per_tuple = Arc::clone(&agg.per_tuple);
            let reduce = Arc::clone(&agg.reduce);
            let half_accs = joined
                .flat_map(move |(k, ((v, h), w))| per_tuple(k, v, w).map(|a| (*h, a)))
                .reduce_by_key(move |a, b| reduce(a, b))
                .collect_as_map();
            [
                half_accs.get(&0).cloned().map(Some),
                half_accs.get(&1).cloned().map(Some),
            ]
        };

        // ---- Round 2: differing join (S ∪ additions) ⋈ other -------------
        // Index-tagged so each sampled record's influence (its joined
        // tuples' aggregate) is recovered after the shuffle.
        let (mapped_sampled, mapped_additions) = {
            let _scope = spans.enter("join_differing");
            let sample_ds = self.ctx.parallelize_default(tagged_sample);
            let per_tuple = Arc::clone(&agg.per_tuple);
            let reduce = Arc::clone(&agg.reduce);
            let influences: HashMap<usize, A> = sample_ds
                .join(other)
                .flat_map(move |(k, ((i, v), w))| per_tuple(k, v, w).map(|a| (*i, a)))
                .reduce_by_key(move |a, b| reduce(a, b))
                .collect_as_map();
            let mapped_sampled: Vec<Option<A>> =
                (0..n).map(|i| influences.get(&i).cloned()).collect();
            let mapped_additions: Vec<Option<A>> =
                (0..n).map(|i| influences.get(&(n + i)).cloned()).collect();
            (mapped_sampled, mapped_additions)
        };
        drop(reduce_scope);
        drop(prepare_scope);

        // ---- Phases 3–4: shared with the scalar pipeline -----------------
        let reduce = Arc::clone(&agg.reduce);
        let finalize = Arc::clone(&agg.finalize);
        let state_query: MapReduceQuery<(K, V), Option<A>, Out> = MapReduceQuery::new(
            agg.name.clone(),
            |_rec: &(K, V)| None, // the mapper is not used past phase 2
            move |a: &Option<A>, b: &Option<A>| match (a, b) {
                (Some(a), Some(b)) => Some(reduce(a, b)),
                (Some(a), None) => Some(a.clone()),
                (None, b) => b.clone(),
            },
            move |acc: Option<&Option<A>>| finalize(acc.and_then(|o| o.as_ref())),
        );
        self.finish(
            &state_query,
            Arc::new(mapped_sampled),
            Arc::new(mapped_additions),
            Arc::new(sampled_halves),
            rem_half,
            Arc::new(spans.spans()),
            self.ctx.metrics().since(&engine_before),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpaConfig;
    use crate::domain::EmpiricalSampler;
    use dataflow::Context;

    /// Builds a join workload: protected "orders" (key = customer id) and
    /// an "items" table with a skewed key distribution.
    type Workload = (Dataset<(u64, u64)>, Dataset<(u64, f64)>, Vec<(u64, u64)>);

    fn workload(ctx: &Context) -> Workload {
        let orders: Vec<(u64, u64)> = (0..2_000u64).map(|i| (i % 50, i)).collect();
        let items: Vec<(u64, f64)> = (0..600u64).map(|i| (i % 30, i as f64)).collect();
        (
            ctx.parallelize(orders.clone(), 8),
            ctx.parallelize(items, 4),
            orders,
        )
    }

    fn upa(ctx: &Context, n: usize) -> Upa {
        Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: n,
                add_noise: false,
                ..UpaConfig::default()
            },
        )
    }

    #[test]
    fn join_count_matches_vanilla_join() {
        let ctx = Context::with_threads(4);
        let (orders, items, order_rows) = workload(&ctx);
        let agg = JoinAggregate::count("join_count", |_, _, _| true);
        let domain = EmpiricalSampler::new(order_rows);
        let mut u = upa(&ctx, 64);
        let result = u.run_join(&orders, &items, &agg, &domain).unwrap();
        let vanilla = orders.join(&items).count() as f64;
        assert_eq!(result.raw, vanilla);
    }

    #[test]
    fn removal_outputs_reflect_join_fanout() {
        let ctx = Context::with_threads(4);
        let (orders, items, order_rows) = workload(&ctx);
        let agg = JoinAggregate::count("join_count", |_, _, _| true);
        let domain = EmpiricalSampler::new(order_rows.clone());
        let mut u = upa(&ctx, 32);
        let result = u.run_join(&orders, &items, &agg, &domain).unwrap();
        // Every order key in 0..30 matches exactly 20 items; keys 30..50
        // match none. So each removal output is either raw or raw − 20.
        for &o in &result.removal_outputs {
            let delta = result.raw - o;
            assert!(
                delta == 0.0 || delta == 20.0,
                "unexpected join influence {delta}"
            );
        }
        // Additions symmetric.
        for &o in &result.addition_outputs {
            let delta = o - result.raw;
            assert!(delta == 0.0 || delta == 20.0);
        }
    }

    #[test]
    fn filter_predicate_limits_influence() {
        let ctx = Context::with_threads(4);
        let (orders, items, order_rows) = workload(&ctx);
        // Count only tuples whose item value is below 30: per key in
        // 0..30 exactly one item (value = key) survives.
        let agg = JoinAggregate::count("filtered_join_count", |_, _, w| *w < 30.0);
        let domain = EmpiricalSampler::new(order_rows);
        let mut u = upa(&ctx, 32);
        let result = u.run_join(&orders, &items, &agg, &domain).unwrap();
        for &o in &result.removal_outputs {
            let delta = result.raw - o;
            assert!(delta == 0.0 || delta == 1.0, "filter should cap influence");
        }
        assert!(result.max_sensitivity() < 21.0);
    }

    #[test]
    fn join_dp_shuffles_twice_as_much_as_vanilla() {
        let ctx = Context::with_threads(4);
        let (orders, items, order_rows) = workload(&ctx);
        ctx.reset_metrics();
        let _ = orders.join(&items).count();
        let vanilla_shuffles = ctx.metrics().shuffles;
        let agg = JoinAggregate::count("join_count", |_, _, _| true);
        let domain = EmpiricalSampler::new(order_rows);
        let mut u = upa(&ctx, 32);
        ctx.reset_metrics();
        let _ = u.run_join(&orders, &items, &agg, &domain).unwrap();
        let upa_shuffles = ctx.metrics().shuffles;
        assert!(
            upa_shuffles >= 2 * vanilla_shuffles,
            "joinDP must shuffle at least twice as much ({upa_shuffles} vs {vanilla_shuffles})"
        );
    }

    #[test]
    fn broadcast_map_groups_by_key() {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(vec![(1u32, "a"), (2, "b"), (1, "c")], 2);
        let table = broadcast_map(&ds);
        assert_eq!(table[&1].len(), 2);
        assert_eq!(table[&2], vec!["b"]);
        assert!(table.get(&3).is_none());
    }

    #[test]
    fn sum_aggregate_over_join() {
        let ctx = Context::with_threads(4);
        let orders: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 10, i)).collect();
        let items: Vec<(u64, f64)> = (0..100u64).map(|i| (i % 10, 2.0)).collect();
        let o = ctx.parallelize(orders.clone(), 4);
        let it = ctx.parallelize(items, 2);
        let agg: JoinAggregate<u64, u64, f64, f64, f64> = JoinAggregate::new(
            "join_sum",
            |_, _, w| Some(*w),
            |a, b| a + b,
            |acc| acc.copied().unwrap_or(0.0),
        );
        let domain = EmpiricalSampler::new(orders);
        let mut u = upa(&ctx, 16);
        let result = u.run_join(&o, &it, &agg, &domain).unwrap();
        // 500 orders × 10 matching items × 2.0 each.
        assert_eq!(result.raw, 500.0 * 10.0 * 2.0);
    }
}
