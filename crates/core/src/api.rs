//! The paper's Table I operator API, as a thin Spark-style facade.
//!
//! The paper exposes UPA to Spark programs through DP-enabled,
//! Spark-compatible operators: `dpread` partitions and samples the input,
//! `dpobject` carries the map/reduce state of the sampled set `S` and the
//! remainder `S′`, and `mapDP`/`reduceDP` (plus the key-value variants)
//! mirror the RDD methods. This module provides the same vocabulary over
//! the [`crate::pipeline::Upa`] engine so that porting a query is a
//! rename, not a rewrite:
//!
//! | Paper (Table I)      | This crate                                  |
//! |----------------------|---------------------------------------------|
//! | `dpread[T](RDD[T])`  | [`DpSession::dpread`]                       |
//! | `mapDP`              | [`DpRead::map_dp`]                          |
//! | `reduceDP`           | [`DpObject::reduce_dp`]                     |
//! | `reduceByKeyDP`      | [`DpReadKv::reduce_by_key_dp`]              |
//! | `dpobjectKV` + `joinDP` | [`DpSession::dpread_kv`] + [`DpReadKv::join_dp`] |
//!
//! `dpread` takes the record-domain sampler up front — mirroring the
//! paper, where the domain `D` is a property of the protected table, not
//! of any particular reduction over it — so every terminal operator
//! (`reduce_dp`, `reduce_by_key_dp`, `join_dp`) needs only its
//! query-specific arguments.
//!
//! # Example
//!
//! ```
//! use dataflow::Context;
//! use upa_core::api::DpSession;
//! use upa_core::domain::EmpiricalSampler;
//! use upa_core::UpaConfig;
//!
//! let ctx = Context::with_threads(2);
//! let data: Vec<f64> = (0..3_000).map(|i| (i % 9) as f64).collect();
//! let ds = ctx.parallelize(data.clone(), 4);
//! let domain = EmpiricalSampler::new(data);
//!
//! let mut session = DpSession::new(ctx, UpaConfig { sample_size: 100, ..UpaConfig::default() });
//! let result = session
//!     .dpread(&ds, &domain)
//!     .map_dp("sum", |x: &f64| *x)
//!     .reduce_dp(|a, b| a + b)
//!     .unwrap();
//! assert!(result.sensitivity[0] > 0.0);
//! // Every successful release leaves an audit behind.
//! assert!(session.last_audit().is_some());
//! ```

use crate::audit::QueryAudit;
use crate::domain::DomainSampler;
use crate::error::UpaError;
use crate::join::JoinAggregate;
use crate::output::DpOutput;
use crate::pipeline::{Upa, UpaResult};
use crate::query::MapReduceQuery;
use crate::UpaConfig;
use dataflow::columnar::ColumnarDataset;
use dataflow::{Context, Data, Dataset};
use std::hash::Hash;
use std::sync::Arc;

/// A UPA session: the `Upa` engine plus the Table I operator vocabulary.
#[derive(Debug)]
pub struct DpSession {
    upa: Upa,
}

impl DpSession {
    /// Creates a session over an engine context.
    pub fn new(ctx: Context, config: UpaConfig) -> Self {
        DpSession {
            upa: Upa::new(ctx, config),
        }
    }

    /// Wraps an existing [`Upa`] instance (shares its enforcer history
    /// and budget).
    pub fn from_upa(upa: Upa) -> Self {
        DpSession { upa }
    }

    /// The underlying engine.
    pub fn upa(&self) -> &Upa {
        &self.upa
    }

    /// Consumes the session, returning the engine.
    pub fn into_upa(self) -> Upa {
        self.upa
    }

    /// The audit of the most recent successful release (see
    /// [`Upa::last_audit`]).
    pub fn last_audit(&self) -> Option<&QueryAudit> {
        self.upa.last_audit()
    }

    /// Audits of every successful release through this session's engine,
    /// oldest first.
    pub fn audits(&self) -> &[QueryAudit] {
        self.upa.audits()
    }

    /// `dpread[T](RDD[T])`: marks a dataset for DP processing, with
    /// `domain` sampling the record domain `D \ x` the paper's *added*
    /// neighbours are drawn from. Sampling itself happens lazily when the
    /// terminal `reduceDP` runs, so that the sample is fresh per query
    /// (as in Algorithm 1).
    pub fn dpread<'s, T: Data>(
        &'s mut self,
        data: &Dataset<T>,
        domain: &'s dyn DomainSampler<T>,
    ) -> DpRead<'s, T> {
        DpRead {
            session: self,
            data: data.clone(),
            domain,
        }
    }

    /// `dpread` over a columnar-backed dataset: phases 1–3 route through
    /// the zero-copy chunk kernels ([`Upa::prepare_columnar`]) instead
    /// of the row engine. Under the same seed the release is
    /// bit-identical to `dpread` over
    /// `ctx.parallelize_default(buf.to_vec())`.
    pub fn dpread_columnar<'s>(
        &'s mut self,
        data: &ColumnarDataset,
        domain: &'s dyn DomainSampler<f64>,
    ) -> DpReadColumnar<'s> {
        DpReadColumnar {
            session: self,
            data: data.clone(),
            domain,
        }
    }

    /// `dpobjectKV`: marks a key-value dataset (the protected side of a
    /// join) for DP processing, with `domain` sampling its record domain.
    pub fn dpread_kv<'s, K: Data, V: Data>(
        &'s mut self,
        data: &Dataset<(K, V)>,
        domain: &'s dyn DomainSampler<(K, V)>,
    ) -> DpReadKv<'s, K, V> {
        DpReadKv {
            session: self,
            data: data.clone(),
            domain,
        }
    }
}

/// The result of `dpread`: a dataset awaiting its `mapDP`.
pub struct DpRead<'s, T> {
    session: &'s mut DpSession,
    data: Dataset<T>,
    domain: &'s dyn DomainSampler<T>,
}

impl<'s, T: Data> DpRead<'s, T> {
    /// `mapDP(T => U)`: attaches the mapper.
    pub fn map_dp<Acc: Data>(
        self,
        name: impl Into<String>,
        map: impl Fn(&T) -> Acc + Send + Sync + 'static,
    ) -> DpObject<'s, T, Acc> {
        DpObject {
            session: self.session,
            data: self.data,
            name: name.into(),
            map: Arc::new(map),
            domain: self.domain,
        }
    }
}

/// `dpobject[U]`: a mapped DP dataset awaiting its terminal reduce.
pub struct DpObject<'s, T, Acc> {
    session: &'s mut DpSession,
    data: Dataset<T>,
    name: String,
    map: Arc<dyn Fn(&T) -> Acc + Send + Sync>,
    domain: &'s dyn DomainSampler<T>,
}

impl<T: Data, Acc: Data> DpObject<'_, T, Acc> {
    /// `reduceDP((T, T) => T)`: runs the full UPA pipeline and releases a
    /// noisy output. The accumulator itself must be the output (scalar
    /// reductions); use [`DpObject::reduce_dp_with`] when a final
    /// projection is needed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run`].
    pub fn reduce_dp(
        self,
        reduce: impl Fn(&Acc, &Acc) -> Acc + Send + Sync + 'static,
    ) -> Result<UpaResult<Acc>, UpaError>
    where
        Acc: DpOutput,
    {
        let map = Arc::clone(&self.map);
        let query = MapReduceQuery::new(
            self.name.clone(),
            move |t: &T| map(t),
            reduce,
            |acc: Option<&Acc>| {
                acc.cloned()
                    .unwrap_or_else(|| Acc::from_components(vec![0.0]))
            },
        );
        self.session.upa.run(&self.data, &query, self.domain)
    }

    /// `reduceDP` with an output projection (`finalize`), for queries
    /// whose released value is derived from the reduction (model updates,
    /// averages).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run`].
    pub fn reduce_dp_with<Out: DpOutput>(
        self,
        reduce: impl Fn(&Acc, &Acc) -> Acc + Send + Sync + 'static,
        finalize: impl Fn(Option<&Acc>) -> Out + Send + Sync + 'static,
    ) -> Result<UpaResult<Out>, UpaError> {
        let map = Arc::clone(&self.map);
        let query = MapReduceQuery::new(self.name.clone(), move |t: &T| map(t), reduce, finalize);
        self.session.upa.run(&self.data, &query, self.domain)
    }
}

/// The result of `dpread_columnar`: a columnar dataset awaiting its
/// `mapDP`.
pub struct DpReadColumnar<'s> {
    session: &'s mut DpSession,
    data: ColumnarDataset,
    domain: &'s dyn DomainSampler<f64>,
}

impl<'s> DpReadColumnar<'s> {
    /// `mapDP(f64 => U)`: attaches the mapper.
    pub fn map_dp<Acc: Data>(
        self,
        name: impl Into<String>,
        map: impl Fn(&f64) -> Acc + Send + Sync + 'static,
    ) -> DpObjectColumnar<'s, Acc> {
        DpObjectColumnar {
            session: self.session,
            data: self.data,
            name: name.into(),
            map: Arc::new(map),
            domain: self.domain,
        }
    }
}

/// `dpobject[U]` over a columnar dataset, awaiting its terminal reduce.
pub struct DpObjectColumnar<'s, Acc> {
    session: &'s mut DpSession,
    data: ColumnarDataset,
    name: String,
    map: Arc<dyn Fn(&f64) -> Acc + Send + Sync>,
    domain: &'s dyn DomainSampler<f64>,
}

impl<Acc: Data> DpObjectColumnar<'_, Acc> {
    /// `reduceDP((T, T) => T)` through the columnar kernels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run_columnar`].
    pub fn reduce_dp(
        self,
        reduce: impl Fn(&Acc, &Acc) -> Acc + Send + Sync + 'static,
    ) -> Result<UpaResult<Acc>, UpaError>
    where
        Acc: DpOutput,
    {
        let map = Arc::clone(&self.map);
        let query = MapReduceQuery::new(
            self.name.clone(),
            move |t: &f64| map(t),
            reduce,
            |acc: Option<&Acc>| {
                acc.cloned()
                    .unwrap_or_else(|| Acc::from_components(vec![0.0]))
            },
        );
        self.session
            .upa
            .run_columnar(&self.data, &query, self.domain)
    }

    /// `reduceDP` with an output projection, columnar.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run_columnar`].
    pub fn reduce_dp_with<Out: DpOutput>(
        self,
        reduce: impl Fn(&Acc, &Acc) -> Acc + Send + Sync + 'static,
        finalize: impl Fn(Option<&Acc>) -> Out + Send + Sync + 'static,
    ) -> Result<UpaResult<Out>, UpaError> {
        let map = Arc::clone(&self.map);
        let query = MapReduceQuery::new(self.name.clone(), move |t: &f64| map(t), reduce, finalize);
        self.session
            .upa
            .run_columnar(&self.data, &query, self.domain)
    }
}

/// The result of `dpread_kv`: a protected key-value dataset.
pub struct DpReadKv<'s, K, V> {
    session: &'s mut DpSession,
    data: Dataset<(K, V)>,
    domain: &'s dyn DomainSampler<(K, V)>,
}

impl<K, V> DpReadKv<'_, K, V>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// `reduceByKeyDP((V, V) => V)`: releases one noisy aggregate per
    /// key, with per-key sensitivity inferred by UPA (the DP word-count /
    /// histogram workload). The key set is taken from the observed data
    /// (category labels are treated as public; only the aggregates are
    /// protected). Values are projected to `f64` by `value_of` and summed
    /// per key.
    ///
    /// Returns a [`KeyedResult`] pairing the sorted key order with the
    /// vector release: component `i` of the underlying result is the
    /// aggregate for key `i`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run`].
    pub fn reduce_by_key_dp(
        self,
        value_of: impl Fn(&V) -> f64 + Send + Sync + 'static,
    ) -> Result<KeyedResult<K>, UpaError>
    where
        K: std::hash::Hash + Ord,
    {
        // Public key domain: the distinct keys, in sorted order for
        // deterministic output components.
        let mut keys: Vec<K> = self.data.map(|(k, _)| k.clone()).distinct().collect();
        keys.sort();
        let index_of: std::collections::HashMap<K, usize> = keys
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, k)| (k, i))
            .collect();
        let bins = keys.len().max(1);
        let index_for_map = std::sync::Arc::new(index_of);
        let index_for_key = std::sync::Arc::clone(&index_for_map);
        let query: MapReduceQuery<(K, V), Vec<f64>, Vec<f64>> = MapReduceQuery::new(
            "reduce_by_key_dp",
            move |(k, v): &(K, V)| {
                let mut out = vec![0.0; bins];
                if let Some(&i) = index_for_map.get(k) {
                    out[i] = value_of(v);
                }
                out
            },
            |a: &Vec<f64>, b: &Vec<f64>| a.iter().zip(b).map(|(x, y)| x + y).collect(),
            move |acc: Option<&Vec<f64>>| acc.cloned().unwrap_or_else(|| vec![0.0; bins]),
        )
        .with_half_key(move |(k, _v): &(K, V)| index_for_key.get(k).copied().unwrap_or(0) as u64);
        let result = self.session.upa.run(&self.data, &query, self.domain)?;
        Ok(KeyedResult { keys, result })
    }

    /// `joinDP(dpobjectKV[K, W])`: joins with another table and runs a
    /// join aggregate under iDP (see [`crate::join`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::run_join`].
    pub fn join_dp<W, A, Out>(
        self,
        other: &Dataset<(K, W)>,
        agg: &JoinAggregate<K, V, W, A, Out>,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        W: Data,
        A: Data,
        Out: DpOutput,
    {
        self.session
            .upa
            .run_join(&self.data, other, agg, self.domain)
    }
}

/// Alias so the paper's name for the KV object appears in the API.
pub type DpObjectKv<'s, K, V> = DpReadKv<'s, K, V>;

/// The release of a `reduceByKeyDP` query: per-key noisy aggregates,
/// addressable by key as well as by component index.
///
/// Keys are in sorted order; component `i` of the underlying
/// [`UpaResult`] (released value, sensitivity, range) belongs to
/// `keys()[i]`.
#[derive(Debug, Clone)]
pub struct KeyedResult<K> {
    keys: Vec<K>,
    result: UpaResult<Vec<f64>>,
}

impl<K: Ord> KeyedResult<K> {
    /// The released (noisy) aggregate for `key`, or `None` for a key that
    /// was not in the observed key set.
    pub fn get(&self, key: &K) -> Option<f64> {
        let i = self.keys.binary_search(key).ok()?;
        self.result.released.get(i).copied()
    }

    /// The keys, in sorted order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Iterates `(key, released aggregate)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, f64)> {
        self.keys.iter().zip(self.result.released.iter().copied())
    }

    /// The underlying vector release: raw/enforced/released values,
    /// per-component sensitivity and range.
    pub fn result(&self) -> &UpaResult<Vec<f64>> {
        &self.result
    }

    /// Consumes the wrapper, returning the key order and the underlying
    /// result.
    pub fn into_parts(self) -> (Vec<K>, UpaResult<Vec<f64>>) {
        (self.keys, self.result)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the key set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::EmpiricalSampler;

    fn session(n: usize) -> (Context, DpSession) {
        let ctx = Context::with_threads(2);
        let s = DpSession::new(
            ctx.clone(),
            UpaConfig {
                sample_size: n,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        (ctx, s)
    }

    #[test]
    fn table1_scalar_flow() {
        let (ctx, mut s) = session(50);
        let data: Vec<f64> = (0..1_000).map(|i| (i % 5) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let domain = EmpiricalSampler::new(data);
        let result = s
            .dpread(&ds, &domain)
            .map_dp("count", |_x: &f64| 1.0)
            .reduce_dp(|a, b| a + b)
            .unwrap();
        assert_eq!(result.raw, 1_000.0);
        let audit = s.last_audit().expect("release leaves an audit");
        assert_eq!(audit.query, "count");
        assert!(audit.stage_nanos("sample") > 0);
    }

    #[test]
    fn table1_finalized_flow() {
        let (ctx, mut s) = session(50);
        let data: Vec<f64> = (0..1_000).map(|i| (i % 5) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let domain = EmpiricalSampler::new(data);
        // Mean via (sum, count) accumulator.
        let result = s
            .dpread(&ds, &domain)
            .map_dp("mean", |x: &f64| vec![*x, 1.0])
            .reduce_dp_with(
                |a: &Vec<f64>, b: &Vec<f64>| vec![a[0] + b[0], a[1] + b[1]],
                |acc: Option<&Vec<f64>>| acc.map(|a| a[0] / a[1]).unwrap_or(0.0),
            )
            .unwrap();
        assert!((result.raw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn columnar_flow_matches_row_flow() {
        use crate::domain::ColumnarEmpiricalSampler;
        use dataflow::columnar::{ColumnarBuf, ColumnarDataset};

        let data: Vec<f64> = (0..1_000).map(|i| (i % 5) as f64).collect();

        let (ctx, mut row) = session(50);
        let ds = ctx.parallelize_default(data.clone());
        let row_domain = EmpiricalSampler::new(data.clone());
        let r1 = row
            .dpread(&ds, &row_domain)
            .map_dp("count", |_x: &f64| 1.0)
            .reduce_dp(|a, b| a + b)
            .unwrap();

        let (ctx2, mut col) = session(50);
        let buf = ColumnarBuf::from_values(&data, 128);
        let cds = ColumnarDataset::new(&ctx2, buf.clone());
        let col_domain = ColumnarEmpiricalSampler::new(buf);
        let r2 = col
            .dpread_columnar(&cds, &col_domain)
            .map_dp("count", |_x: &f64| 1.0)
            .reduce_dp(|a, b| a + b)
            .unwrap();

        assert_eq!(r1.raw, r2.raw);
        assert_eq!(r1.enforced.to_bits(), r2.enforced.to_bits());
        assert_eq!(r1.sensitivity, r2.sensitivity);
        let audit = col.last_audit().expect("columnar release leaves an audit");
        assert_eq!(audit.query, "count");
        assert!(audit.stage_nanos("reduce") > 0);
    }

    #[test]
    fn columnar_flow_with_projection() {
        use crate::domain::ColumnarEmpiricalSampler;
        use dataflow::columnar::{ColumnarBuf, ColumnarDataset};

        let (ctx, mut s) = session(50);
        let data: Vec<f64> = (0..1_000).map(|i| (i % 5) as f64).collect();
        let buf = ColumnarBuf::from_values(&data, 64);
        let cds = ColumnarDataset::new(&ctx, buf.clone());
        let domain = ColumnarEmpiricalSampler::new(buf);
        let result = s
            .dpread_columnar(&cds, &domain)
            .map_dp("mean", |x: &f64| vec![*x, 1.0])
            .reduce_dp_with(
                |a: &Vec<f64>, b: &Vec<f64>| vec![a[0] + b[0], a[1] + b[1]],
                |acc: Option<&Vec<f64>>| acc.map(|a| a[0] / a[1]).unwrap_or(0.0),
            )
            .unwrap();
        assert!((result.raw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table1_join_flow() {
        let (ctx, mut s) = session(20);
        let left: Vec<(u32, u32)> = (0..400).map(|i| (i % 8, i)).collect();
        let right: Vec<(u32, u32)> = (0..80).map(|i| (i % 8, i)).collect();
        let l = ctx.parallelize(left.clone(), 4);
        let r = ctx.parallelize(right, 2);
        let domain = EmpiricalSampler::new(left);
        let agg = JoinAggregate::count("join_count", |_, _, _| true);
        let result = s.dpread_kv(&l, &domain).join_dp(&r, &agg).unwrap();
        assert_eq!(result.raw, 400.0 * 10.0);
        let audit = s.last_audit().expect("join release leaves an audit");
        assert!(audit.stage_nanos("join_remainder") > 0);
        assert!(audit.stage_nanos("join_differing") > 0);
    }

    #[test]
    fn session_shares_enforcer_history_across_queries() {
        let (ctx, mut s) = session(20);
        let data: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let domain = EmpiricalSampler::new(data);
        let _ = s
            .dpread(&ds, &domain)
            .map_dp("count", |_x: &f64| 1.0)
            .reduce_dp(|a, b| a + b)
            .unwrap();
        let _ = s
            .dpread(&ds, &domain)
            .map_dp("count", |_x: &f64| 1.0)
            .reduce_dp(|a, b| a + b)
            .unwrap();
        assert_eq!(s.upa().enforcer().history_len(), 2);
        assert_eq!(s.audits().len(), 2);
    }

    #[test]
    fn table1_reduce_by_key_dp_flow() {
        let (ctx, mut s) = session(40);
        // Word-count-style workload over four keys.
        let pairs: Vec<(u8, f64)> = (0..2_000u32).map(|i| ((i % 4) as u8, 1.0)).collect();
        let ds = ctx.parallelize(pairs.clone(), 4);
        let domain = EmpiricalSampler::new(pairs);
        let keyed = s.dpread_kv(&ds, &domain).reduce_by_key_dp(|v| *v).unwrap();
        assert_eq!(keyed.keys(), &[0, 1, 2, 3]);
        assert_eq!(keyed.len(), 4);
        assert!(!keyed.is_empty());
        let result = keyed.result();
        assert_eq!(result.raw, vec![500.0; 4]);
        // Removing one record changes one key's count by 1.
        for s in &result.empirical_sensitivity {
            assert!((s - 1.0).abs() < 1e-9);
        }
        // The session helper disables noise, so the release is the
        // enforced value.
        assert_eq!(result.released, result.enforced);
        // Keyed access agrees with positional access.
        assert_eq!(keyed.get(&2), Some(result.released[2]));
        assert_eq!(keyed.get(&9), None);
        let collected: Vec<(u8, f64)> = keyed.iter().map(|(k, v)| (*k, v)).collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[0].0, 0);
        let (keys, result) = keyed.into_parts();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        assert_eq!(result.raw, vec![500.0; 4]);
    }
}
