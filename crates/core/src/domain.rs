//! Record-domain samplers.
//!
//! Algorithm 1 samples `n` records "from `D` but not in `x`" — candidate
//! *additions* to the dataset — where `D` is the domain of possible
//! records. The domain is workload knowledge: the TPC-H generator knows
//! what a fresh lineitem can look like, the ML workloads know their
//! feature space. A [`DomainSampler`] encapsulates that knowledge.
//!
//! This replaces the paper's (unspecified) access to the data provider's
//! domain with an explicit interface; the workload crates implement it
//! with the same generators that produce the datasets, so sampled
//! additions follow the true record distribution.

use dataflow::columnar::ColumnarBuf;
use rand::rngs::StdRng;

/// Samples records from the domain `D` of possible dataset records.
pub trait DomainSampler<T>: Send + Sync {
    /// Draws one record from `D`.
    fn sample(&self, rng: &mut StdRng) -> T;

    /// Draws `n` records from `D`.
    fn sample_n(&self, rng: &mut StdRng, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A [`DomainSampler`] backed by a closure.
///
/// ```
/// use upa_core::domain::{DomainSampler, FnSampler};
/// use rand::{rngs::StdRng, Rng, SeedableRng};
/// let s = FnSampler::new(|rng: &mut StdRng| rng.gen_range(0..10));
/// let mut rng = StdRng::seed_from_u64(0);
/// assert!(s.sample(&mut rng) < 10);
/// ```
pub struct FnSampler<F> {
    f: F,
}

impl<F> FnSampler<F> {
    /// Wraps a sampling closure.
    pub fn new(f: F) -> Self {
        FnSampler { f }
    }
}

impl<T, F> DomainSampler<T> for FnSampler<F>
where
    F: Fn(&mut StdRng) -> T + Send + Sync,
{
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(rng)
    }
}

/// A [`DomainSampler`] that resamples uniformly from a pool of existing
/// records — the empirical distribution of the dataset itself. This is the
/// default when no generative model of the domain is available.
#[derive(Debug, Clone)]
pub struct EmpiricalSampler<T> {
    pool: Vec<T>,
}

impl<T: Clone + Send + Sync> EmpiricalSampler<T> {
    /// Builds a sampler over `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn new(pool: Vec<T>) -> Self {
        assert!(!pool.is_empty(), "empirical sampler needs a non-empty pool");
        EmpiricalSampler { pool }
    }

    /// The pool size.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

impl<T: Clone + Send + Sync> DomainSampler<T> for EmpiricalSampler<T> {
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rand::Rng::gen_range(rng, 0..self.pool.len());
        self.pool[i].clone()
    }
}

/// An [`EmpiricalSampler`] over a chunked column buffer: resamples
/// uniformly from the shared store chunks without ever materialising a
/// flat pool. Draws are **bit-identical** to
/// `EmpiricalSampler::new(buf.to_vec())` under the same RNG — both
/// consume one `gen_range(0..len)` per draw and index the same logical
/// row — so the columnar serving path can swap this in without
/// perturbing seeded releases.
#[derive(Debug, Clone)]
pub struct ColumnarEmpiricalSampler {
    pool: ColumnarBuf,
}

impl ColumnarEmpiricalSampler {
    /// Builds a sampler over `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn new(pool: ColumnarBuf) -> Self {
        assert!(!pool.is_empty(), "empirical sampler needs a non-empty pool");
        ColumnarEmpiricalSampler { pool }
    }

    /// The pool size.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

impl DomainSampler<f64> for ColumnarEmpiricalSampler {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let i = rand::Rng::gen_range(rng, 0..self.pool.len());
        self.pool.value(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fn_sampler_delegates() {
        let s = FnSampler::new(|_rng: &mut StdRng| 7u32);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), 7);
        assert_eq!(s.sample_n(&mut rng, 3), vec![7, 7, 7]);
    }

    #[test]
    fn empirical_sampler_draws_from_pool() {
        let s = EmpiricalSampler::new(vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(1);
        let draws = s.sample_n(&mut rng, 100);
        assert!(draws.iter().all(|x| [1, 2, 3].contains(x)));
        // All pool elements eventually appear.
        for v in [1, 2, 3] {
            assert!(draws.contains(&v), "{v} never sampled");
        }
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty pool")]
    fn empirical_sampler_rejects_empty_pool() {
        let _ = EmpiricalSampler::<u8>::new(Vec::new());
    }

    #[test]
    fn columnar_sampler_matches_row_sampler_bit_for_bit() {
        let values: Vec<f64> = (0..257).map(|i| (i as f64) * 0.37 - 40.0).collect();
        let row = EmpiricalSampler::new(values.clone());
        let col = ColumnarEmpiricalSampler::new(ColumnarBuf::from_values(&values, 7));
        assert_eq!(col.len(), 257);
        assert!(!col.is_empty());
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let a = row.sample_n(&mut rng_a, 500);
        let b = col.sample_n(&mut rng_b, 500);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    #[should_panic(expected = "non-empty pool")]
    fn columnar_sampler_rejects_empty_pool() {
        let _ = ColumnarEmpiricalSampler::new(ColumnarBuf::new(Vec::new()));
    }
}
