//! The manual-range baseline (Airavat / GUPT / PINQ style, paper §IV-B
//! and §VII).
//!
//! Before UPA, DP data-mining systems required the **data analyst** to
//! supply an output range `Ô_f` for each query; the system clamps the
//! output into the range and derives a global-sensitivity bound
//! `max(Ô_f) − min(Ô_f)` from it. The guarantee is the same construction
//! UPA's RANGE ENFORCER automates — but the range must cover every
//! possible dataset (it is a *global* bound), so a safe manual range is
//! far wider than UPA's inferred local range and the added noise
//! correspondingly larger. The ablation benchmark compares the two.

use crate::error::UpaError;
use crate::output::{DpOutput, OutputRange};
use crate::query::MapReduceQuery;
use dataflow::{Data, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use upa_stats::LaplaceMechanism;

/// A manual-range DP release.
#[derive(Debug, Clone)]
pub struct ManualRelease<Out> {
    /// The noisy value released to the analyst.
    pub released: Out,
    /// The clamped (pre-noise) output.
    pub clamped: Out,
    /// The exact output `f(x)`.
    pub raw: Out,
    /// The global sensitivity derived from the manual range.
    pub sensitivity: Vec<f64>,
}

/// The Airavat/GUPT-style mechanism: analyst-supplied range, derived
/// global sensitivity, Laplace noise.
#[derive(Debug, Clone)]
pub struct ManualRangeMechanism {
    range: OutputRange,
    epsilon: f64,
    rng: StdRng,
}

impl ManualRangeMechanism {
    /// Creates a mechanism for the analyst-declared output `range` and
    /// budget ε.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is a positive finite number.
    pub fn new(range: OutputRange, epsilon: f64, seed: u64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive"
        );
        ManualRangeMechanism {
            range,
            epsilon,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The declared range.
    pub fn range(&self) -> &OutputRange {
        &self.range
    }

    /// The derived global sensitivity (per component: the range width).
    pub fn sensitivity(&self) -> Vec<f64> {
        self.range.widths()
    }

    /// Evaluates `query` on `data` with the engine and releases it under
    /// DP: clamp into the declared range, add Laplace noise of scale
    /// `width/ε`.
    ///
    /// # Errors
    ///
    /// Returns [`UpaError::InvalidConfig`] if the query output dimension
    /// does not match the declared range.
    pub fn run<T, Acc, Out>(
        &mut self,
        data: &Dataset<T>,
        query: &MapReduceQuery<T, Acc, Out>,
    ) -> Result<ManualRelease<Out>, UpaError>
    where
        T: Data,
        Acc: Data,
        Out: DpOutput,
    {
        let mapper = query.mapper();
        let reducer = query.reducer();
        let acc = data
            .map(move |t| mapper(t))
            .reduce(move |a, b| reducer(a, b));
        let raw = query.finalize(acc.as_ref());
        let mut components = raw.components();
        if components.len() != self.range.dim() {
            return Err(UpaError::InvalidConfig("manual range dimension"));
        }
        self.range.constrain(&mut components, &mut self.rng);
        let clamped = Out::from_components(components.clone());
        let released = Out::from_components(
            components
                .iter()
                .zip(self.range.widths())
                .map(|(&v, width)| {
                    LaplaceMechanism::new(width, self.epsilon)
                        .expect("validated parameters")
                        .release(v, &mut self.rng)
                })
                .collect(),
        );
        Ok(ManualRelease {
            released,
            clamped,
            raw,
            sensitivity: self.sensitivity(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::Context;

    fn count_query() -> MapReduceQuery<f64, f64, f64> {
        MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0)
    }

    #[test]
    fn releases_within_noise_of_truth() {
        let ctx = Context::with_threads(2);
        let data: Vec<f64> = vec![0.0; 5_000];
        let ds = ctx.parallelize(data, 4);
        // Analyst knows counts lie in [0, 10_000].
        let mut mech = ManualRangeMechanism::new(OutputRange::new(vec![(0.0, 10_000.0)]), 1.0, 1);
        let r = mech.run(&ds, &count_query()).unwrap();
        assert_eq!(r.raw, 5_000.0);
        assert_eq!(r.clamped, 5_000.0);
        assert_eq!(r.sensitivity, vec![10_000.0]);
        // Noise scale 10_000; the release is perturbed but finite.
        assert!(r.released.is_finite());
        assert_ne!(r.released, r.raw);
    }

    #[test]
    fn out_of_range_outputs_are_clamped() {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(vec![0.0; 100], 2);
        // Analyst under-declared the range: output is clamped into it, so
        // the DP guarantee holds even though utility is destroyed.
        let mut mech = ManualRangeMechanism::new(OutputRange::new(vec![(0.0, 10.0)]), 1.0, 2);
        let r = mech.run(&ds, &count_query()).unwrap();
        assert_eq!(r.raw, 100.0);
        assert!((0.0..=10.0).contains(&r.clamped));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(vec![1.0], 1);
        let mut mech =
            ManualRangeMechanism::new(OutputRange::new(vec![(0.0, 1.0), (0.0, 1.0)]), 1.0, 3);
        assert!(mech.run(&ds, &count_query()).is_err());
    }

    /// The accuracy gap the ablation bench demonstrates: a *safe* manual
    /// global range is orders of magnitude wider than UPA's inferred
    /// local range, so its noise is orders of magnitude larger.
    #[test]
    fn manual_noise_dwarfs_upa_noise() {
        let ctx = Context::with_threads(2);
        let data: Vec<f64> = (0..5_000).map(|i| (i % 10) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        // UPA run.
        let mut upa = crate::pipeline::Upa::new(
            ctx.clone(),
            crate::UpaConfig {
                sample_size: 100,
                add_noise: false,
                ..crate::UpaConfig::default()
            },
        );
        let domain = crate::domain::EmpiricalSampler::new(data);
        let upa_result = upa.run(&ds, &count_query(), &domain).unwrap();
        // A safe manual range for "count of any dataset this size".
        let manual_width = 1_000_000.0;
        assert!(
            manual_width / upa_result.max_sensitivity() > 1e4,
            "manual global bound should be >4 orders wider than UPA's local one"
        );
    }
}
