//! The UPA pipeline — the paper's Algorithm 1 plus the iDP release.
//!
//! [`Upa::run`] executes the four phases end to end:
//!
//! 1. **Partition & Sample** — the input's partitions are split into two
//!    logical halves `x1`/`x2` (by partition index); `n` differing records
//!    `S` are sampled uniformly from the whole input and `n` candidate
//!    additions from the record domain.
//! 2. **Parallel Map** — the mapper runs over `S′` (the remainder) on the
//!    engine and over the 2·n sampled records inline (they are few).
//! 3. **Union-Preserving Reduce** — the remainder reduces **once**,
//!    per-half, through a real shuffle (this models RANGE ENFORCER's
//!    record exchange and is the engine-visible cost UPA adds to local
//!    queries, cf. Figure 2(b)). Prefix/suffix partial reductions over the
//!    mapped sample then yield every `f(x − sᵢ)` in O(1) each — the
//!    concrete realisation of "reuse `R(M(S′))`".
//! 4. **iDP Enforcement** — per-component MLE normal fit of the 2·n
//!    neighbour outputs, P1–P99 range, RANGE ENFORCER (Algorithm 2),
//!    range clamping, Laplace release.

use crate::audit::QueryAudit;
use crate::budget::BudgetAccountant;
use crate::config::UpaConfig;
use crate::domain::DomainSampler;
use crate::enforcer::{EnforceOutcome, EnforceState, QuerySignature, RangeEnforcer};
use crate::error::UpaError;
use crate::output::{DpOutput, OutputRange};
use crate::query::MapReduceQuery;
use dataflow::columnar::{slab_ranges, ColumnarDataset};
use dataflow::{Context, Data, Dataset, MetricsSnapshot, PairOps, SpanRecorder, StageSpan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::borrow::Cow;
use std::sync::{Arc, OnceLock};
use upa_stats::sampling::sample_indices;
use upa_stats::{LaplaceMechanism, Normal};

/// The result of one UPA query execution.
#[derive(Debug, Clone)]
pub struct UpaResult<Out> {
    /// The value released to the analyst (noisy unless
    /// [`UpaConfig::add_noise`] is off).
    pub released: Out,
    /// The range-enforced output before noise (never released in
    /// production; exposed for the accuracy experiments).
    pub enforced: Out,
    /// The exact query output `f(x)` before enforcement.
    pub raw: Out,
    /// Per-component inferred local sensitivity (`P99 − P1` of the MLE
    /// normal fit to the neighbour outputs) — the width of the enforced
    /// range, and therefore the noise calibration (Algorithm 1, line 20).
    pub sensitivity: Vec<f64>,
    /// Per-component *empirical* local-sensitivity estimate: the largest
    /// observed `|f(x) − f(y)|` over the sampled neighbouring datasets.
    /// This is the quantity the paper's Figure 2(a) compares against the
    /// brute-force ground truth of Definition II.1 (the percentile width
    /// above deliberately over-covers it, so it is not the comparison
    /// target).
    pub empirical_sensitivity: Vec<f64>,
    /// The enforced output range `Ô_f`.
    pub range: OutputRange,
    /// Outputs of the query on `x − sᵢ` for each sampled record.
    pub removal_outputs: Vec<Out>,
    /// Outputs of the query on `x + s̄ᵢ` for each sampled addition.
    pub addition_outputs: Vec<Out>,
    /// What RANGE ENFORCER did.
    pub enforce_outcome: EnforceOutcome,
    /// Effective sample size (min of the configured `n` and `|x|`).
    pub sample_size: usize,
    /// Privacy budget charged for this release.
    pub epsilon: f64,
}

impl<Out: DpOutput> UpaResult<Out> {
    /// The maximum sensitivity component — the scalar the paper reports
    /// for scalar queries.
    pub fn max_sensitivity(&self) -> f64 {
        self.sensitivity.iter().copied().fold(0.0, f64::max)
    }

    /// The maximum empirical-sensitivity component (L∞ over components),
    /// comparable to [`crate::brute::GroundTruth::local_sensitivity`].
    pub fn max_empirical_sensitivity(&self) -> f64 {
        self.empirical_sensitivity
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }
}

/// The UPA system: owns the engine handle, the RANGE ENFORCER history,
/// the privacy-budget accountant and the RNG.
pub struct Upa {
    pub(crate) ctx: Context,
    pub(crate) config: UpaConfig,
    pub(crate) enforcer: RangeEnforcer,
    pub(crate) budget: Option<BudgetAccountant>,
    pub(crate) rng: StdRng,
    pub(crate) audits: Vec<QueryAudit>,
}

impl std::fmt::Debug for Upa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Upa")
            .field("config", &self.config)
            .field("history", &self.enforcer.history_len())
            .finish()
    }
}

impl Upa {
    /// Creates a UPA instance over an engine context.
    pub fn new(ctx: Context, config: UpaConfig) -> Self {
        let seed = config.seed;
        Upa {
            ctx,
            config,
            enforcer: RangeEnforcer::new(),
            budget: None,
            rng: StdRng::seed_from_u64(seed),
            audits: Vec::new(),
        }
    }

    /// Adds a total privacy budget; each [`Upa::run`] charges its ε and
    /// fails with [`UpaError::BudgetExhausted`] once it runs out.
    pub fn with_budget(mut self, total_epsilon: f64) -> Self {
        self.budget = Some(BudgetAccountant::new(total_epsilon));
        self
    }

    /// The engine context.
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// The active configuration.
    pub fn config(&self) -> &UpaConfig {
        &self.config
    }

    /// Changes the per-release ε — serving frontends let each request
    /// override the default budget charge. Takes effect on the next
    /// [`Upa::run`]/[`Upa::release`].
    ///
    /// # Errors
    ///
    /// [`UpaError::InvalidConfig`] if `epsilon` is not finite-positive.
    pub fn set_epsilon(&mut self, epsilon: f64) -> Result<(), UpaError> {
        let candidate = UpaConfig {
            epsilon,
            ..self.config.clone()
        };
        candidate.validate()?;
        self.config = candidate;
        Ok(())
    }

    /// The RANGE ENFORCER (for inspecting history length in tests).
    pub fn enforcer(&self) -> &RangeEnforcer {
        &self.enforcer
    }

    /// Remaining privacy budget, if an accountant is attached.
    pub fn remaining_budget(&self) -> Option<f64> {
        self.budget.as_ref().map(|b| b.remaining())
    }

    /// The audit record of the most recent successful release.
    pub fn last_audit(&self) -> Option<&QueryAudit> {
        self.audits.last()
    }

    /// Audit records of every successful release, in release order.
    pub fn audits(&self) -> &[QueryAudit] {
        &self.audits
    }

    /// Drops all recorded audits (long-lived sessions and benchmarks).
    pub fn clear_audits(&mut self) {
        self.audits.clear();
    }

    /// Runs a query end to end under iDP.
    ///
    /// # Errors
    ///
    /// * [`UpaError::EmptyDataset`] if `data` has no records;
    /// * [`UpaError::InvalidConfig`] if the configuration is invalid;
    /// * [`UpaError::BudgetExhausted`] if an attached budget cannot cover
    ///   this query's ε.
    pub fn run<T, Acc, Out>(
        &mut self,
        data: &Dataset<T>,
        query: &MapReduceQuery<T, Acc, Out>,
        domain: &dyn DomainSampler<T>,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        T: Data,
        Acc: Data,
        Out: DpOutput,
    {
        let prepared = self.prepare(data, query, domain)?;
        self.release(&prepared)
    }

    /// Phases 1–3 only: samples, maps and reduces, returning a
    /// [`PreparedQuery`] whose neighbour-output state can be
    /// [`Upa::release`]d repeatedly. This realises the paper's §VI-E
    /// extension — "reusing the results computed from the sampled
    /// neighbouring datasets across repeated queries": re-releasing costs
    /// no engine work (no new stages or shuffles), only fresh noise and a
    /// fresh ε budget charge.
    ///
    /// # Errors
    ///
    /// * [`UpaError::EmptyDataset`] if `data` has no records;
    /// * [`UpaError::InvalidConfig`] if the configuration is invalid.
    pub fn prepare<T, Acc, Out>(
        &mut self,
        data: &Dataset<T>,
        query: &MapReduceQuery<T, Acc, Out>,
        domain: &dyn DomainSampler<T>,
    ) -> Result<PreparedQuery<T, Acc, Out>, UpaError>
    where
        T: Data,
        Acc: Data,
        Out: DpOutput,
    {
        let spans = SpanRecorder::new();
        let engine_before = self.ctx.metrics();
        let prepare_scope = spans.enter("prepare");

        // ---- Phase 1: Partition & Sample -------------------------------
        let (indices, sampled, remainder, physical_halves, half_split) = {
            let mut scope = spans.enter("partition");
            scope.add_records(data.len() as u64);
            let (indices, physical_halves, half_split) = self.prepare_sample(data)?;
            let (sampled, remainder) = data.split_indices(&indices);
            (indices, sampled, remainder, physical_halves, half_split)
        };
        let n = indices.len();
        let (additions, sampled_halves) = {
            let mut scope = spans.enter("sample");
            scope.add_records(2 * n as u64);
            let additions = domain.sample_n(&mut self.rng, n);
            // Logical halves: by stable record key when the query provides
            // one (content-defined, robust across neighbouring datasets),
            // by physical partition index otherwise.
            let sampled_halves: Vec<usize> = match query.half_key() {
                Some(hk) => sampled.iter().map(|t| (hk(t) % 2) as usize).collect(),
                None => physical_halves,
            };
            (additions, sampled_halves)
        };

        // ---- Phase 2: Parallel Map --------------------------------------
        let mapper = query.mapper();
        let (mapped_sampled, mapped_additions) = {
            let mut scope = spans.enter("map");
            scope.add_records(2 * n as u64);
            let mapped_sampled: Vec<Acc> = sampled.iter().map(|t| query.map(t)).collect();
            let mapped_additions: Vec<Acc> = additions.iter().map(|t| query.map(t)).collect();
            (mapped_sampled, mapped_additions)
        };

        // ---- Phase 3: Union-Preserving Reduce ---------------------------
        // Reduce the remainder per logical half through a real shuffle:
        // this is `ReduceByPar` (Algorithm 1, line 7) and carries RANGE
        // ENFORCER's record-exchange cost.
        let rem_half: [Option<Acc>; 2] = {
            let mut scope = spans.enter("reduce");
            scope.add_records(remainder.len() as u64);
            let reducer = query.reducer();
            let keyed = match query.half_key() {
                Some(hk) => {
                    let hk = std::sync::Arc::clone(hk);
                    let m = mapper.clone();
                    remainder.map(move |t| ((hk(t) % 2) as u8, m(t)))
                }
                None => {
                    let m = mapper.clone();
                    remainder
                        .map(move |t| m(t))
                        .map_with_partition(move |p, acc| (u8::from(p >= half_split), acc.clone()))
                }
            };
            let half_map = {
                let r = reducer.clone();
                keyed.reduce_by_key(move |a, b| r(a, b)).collect_as_map()
            };
            [half_map.get(&0).cloned(), half_map.get(&1).cloned()]
        };

        drop(prepare_scope);
        Ok(PreparedQuery {
            query: query.clone(),
            mapped_sampled: Arc::new(mapped_sampled),
            mapped_additions: Arc::new(mapped_additions),
            sampled_halves: Arc::new(sampled_halves),
            rem_half,
            spans: Arc::new(spans.spans()),
            engine: self.ctx.metrics().since(&engine_before),
            core: OnceLock::new(),
        })
    }

    /// Phases 1–3 over a columnar dataset: the zero-copy cold-prepare
    /// path. Sampling picks `S` by `(chunk, offset)` index straight out
    /// of the shared chunk buffers (no per-record clone or box, and the
    /// remainder `S′` is never materialised); the un-sampled remainder
    /// reduces chunk-parallel on the engine pool as tight loops over
    /// contiguous `f64` slices.
    ///
    /// **Bit-identity contract**: under the same seed and configuration
    /// this produces a [`PreparedQuery`] whose releases are identical —
    /// to the last bit, noise included — to
    /// `self.prepare(&ctx.parallelize_default(buf.to_vec()), …)` with the
    /// engine's default map-side combine enabled. Three invariants carry
    /// the proof:
    ///
    /// 1. RNG draws happen in the row path's exact order: validate (no
    ///    draws), `sample_indices`, then `domain.sample_n`.
    /// 2. The sampled records and their logical halves come from the same
    ///    sorted global indices and the same half rule (stable record key
    ///    when the query provides one, slab index otherwise), where slab
    ///    boundaries are [`slab_ranges`] — provably the boundaries
    ///    [`Context::parallelize`] would produce.
    /// 3. The remainder reduce folds each slab in record order (skipping
    ///    sampled rows) and then merges slab partials in ascending slab
    ///    order — precisely the fold order of the row path's map-side
    ///    combine plus reduce-side concatenation. Floating-point
    ///    accumulation order is therefore identical.
    ///
    /// # Errors
    ///
    /// * [`UpaError::EmptyDataset`] if `data` has no records;
    /// * [`UpaError::InvalidConfig`] if the configuration is invalid.
    pub fn prepare_columnar<Acc, Out>(
        &mut self,
        data: &ColumnarDataset,
        query: &MapReduceQuery<f64, Acc, Out>,
        domain: &dyn DomainSampler<f64>,
    ) -> Result<PreparedQuery<f64, Acc, Out>, UpaError>
    where
        Acc: Data,
        Out: DpOutput,
    {
        let spans = SpanRecorder::new();
        let engine_before = self.ctx.metrics();
        let prepare_scope = spans.enter("prepare");

        // ---- Phase 1: Partition & Sample -------------------------------
        let len = data.len();
        let (indices, sampled, ranges, physical_halves, half_split) = {
            let mut scope = spans.enter("partition");
            scope.add_records(len as u64);
            self.config.validate()?;
            if len == 0 {
                return Err(UpaError::EmptyDataset);
            }
            let n = self.config.sample_size.min(len);
            // Logical slabs where the row path would put its partitions.
            let ranges = slab_ranges(len, self.ctx.config().default_partitions);
            let num_parts = ranges.len();
            let half_split = num_parts.div_ceil(2);
            let indices = sample_indices(&mut self.rng, len, n);
            // S materialises by sorted (chunk, offset) gather; S′ never
            // does — the reduce below walks the chunks in place.
            let sampled = data.buf().gather_sorted(&indices);
            let mut offsets = Vec::with_capacity(num_parts + 1);
            offsets.push(0usize);
            for &(_, end) in &ranges {
                offsets.push(end);
            }
            let half_of_global = |g: usize| -> usize {
                let part = match offsets.binary_search(&g) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                usize::from(part.min(num_parts - 1) >= half_split)
            };
            let halves: Vec<usize> = indices.iter().map(|&g| half_of_global(g)).collect();
            (indices, sampled, ranges, halves, half_split)
        };
        let n = indices.len();
        let (additions, sampled_halves) = {
            let mut scope = spans.enter("sample");
            scope.add_records(2 * n as u64);
            let additions = domain.sample_n(&mut self.rng, n);
            let sampled_halves: Vec<usize> = match query.half_key() {
                Some(hk) => sampled.iter().map(|t| (hk(t) % 2) as usize).collect(),
                None => physical_halves,
            };
            (additions, sampled_halves)
        };

        // ---- Phase 2: Parallel Map --------------------------------------
        let (mapped_sampled, mapped_additions) = {
            let mut scope = spans.enter("map");
            scope.add_records(2 * n as u64);
            let mapped_sampled: Vec<Acc> = sampled.iter().map(|t| query.map(t)).collect();
            let mapped_additions: Vec<Acc> = additions.iter().map(|t| query.map(t)).collect();
            (mapped_sampled, mapped_additions)
        };

        // ---- Phase 3: Union-Preserving Reduce ---------------------------
        // One engine task per slab streams the chunk slices covering it —
        // a tight loop over contiguous `f64`s — folding a partial per
        // logical half in record order while skipping sampled rows. The
        // cross-slab merge then runs in ascending slab order, reproducing
        // the row path's combine + shuffle fold exactly (its map-side
        // combine folds each partition in record order and the reduce
        // side concatenates partials by ascending partition).
        let rem_half: [Option<Acc>; 2] = {
            let mut scope = spans.enter("reduce");
            scope.add_records((len - n) as u64);
            let partials: Vec<[Option<Acc>; 2]> = {
                let q = query.clone();
                let picked = Arc::new(indices);
                data.run_ranges("columnar[reduce]", ranges, move |slab, buf, start, end| {
                    let mut next = picked.partition_point(|&g| g < start);
                    let phys_half = usize::from(slab >= half_split);
                    let mut acc: [Option<Acc>; 2] = [None, None];
                    buf.for_each_slice_in(start, end, |at, slice| {
                        // Fold the uninterrupted runs between sampled
                        // rows — one [`MapReduceQuery::fold_run`] call
                        // per run, so a fused kernel sees a plain
                        // `&[f64]` and the skip test never executes
                        // inside the hot loop. The record-order left
                        // fold is exactly the per-record loop's.
                        let mut pos = 0usize;
                        while pos < slice.len() {
                            let run_end = match picked.get(next) {
                                Some(&g) if g < at + slice.len() => g - at,
                                _ => slice.len(),
                            };
                            q.fold_run(&slice[pos..run_end], phys_half, &mut acc);
                            if run_end < slice.len() {
                                next += 1;
                                pos = run_end + 1;
                            } else {
                                pos = run_end;
                            }
                        }
                    });
                    acc
                })
            };
            // The row path exchanges one combined record per (partition,
            // half) through a real shuffle; the columnar merge below is
            // that exchange, so the shuffle counters stay meaningful.
            let exchanged = 2 * partials.len() as u64;
            self.ctx
                .record_logical_shuffle(exchanged, exchanged * std::mem::size_of::<Acc>() as u64);
            let mut rem: [Option<Acc>; 2] = [None, None];
            for partial in partials {
                for (h, p) in partial.into_iter().enumerate() {
                    if let Some(acc) = p {
                        rem[h] = Some(match rem[h].take() {
                            Some(a) => query.reduce(&a, &acc),
                            None => acc,
                        });
                    }
                }
            }
            rem
        };

        drop(prepare_scope);
        Ok(PreparedQuery {
            query: query.clone(),
            mapped_sampled: Arc::new(mapped_sampled),
            mapped_additions: Arc::new(mapped_additions),
            sampled_halves: Arc::new(sampled_halves),
            rem_half,
            spans: Arc::new(spans.spans()),
            engine: self.ctx.metrics().since(&engine_before),
            core: OnceLock::new(),
        })
    }

    /// [`Upa::prepare_columnar`] followed by one [`Upa::release`] — the
    /// columnar analogue of [`Upa::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Upa::prepare_columnar`] and [`Upa::release`].
    pub fn run_columnar<Acc, Out>(
        &mut self,
        data: &ColumnarDataset,
        query: &MapReduceQuery<f64, Acc, Out>,
        domain: &dyn DomainSampler<f64>,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        Acc: Data,
        Out: DpOutput,
    {
        let prepared = self.prepare_columnar(data, query, domain)?;
        self.release(&prepared)
    }

    /// Releases one noisy output from a prepared query. Each call draws
    /// fresh noise, charges ε and records a RANGE ENFORCER entry; no
    /// engine stages run.
    ///
    /// The first release runs phases 3–4 in full (neighbour outputs, MLE
    /// sensitivity fit, range enforcement) and caches the pre-noise core
    /// on the preparation; every later release of the same preparation
    /// reduces to the budget charge and a fresh Laplace draw over the
    /// cached enforced value — Algorithm 1's expensive fit is paid once
    /// per prepare, not once per release.
    ///
    /// # Errors
    ///
    /// * [`UpaError::BudgetExhausted`] if an attached budget cannot cover
    ///   this release's ε.
    pub fn release<T, Acc, Out>(
        &mut self,
        prepared: &PreparedQuery<T, Acc, Out>,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        T: Data,
        Acc: Data,
        Out: DpOutput,
    {
        if let Some(core) = prepared.core.get() {
            return self.release_cached(prepared, core);
        }
        let result = self.finish(
            &prepared.query,
            Arc::clone(&prepared.mapped_sampled),
            Arc::clone(&prepared.mapped_additions),
            Arc::clone(&prepared.sampled_halves),
            prepared.rem_half.clone(),
            Arc::clone(&prepared.spans),
            prepared.engine,
        )?;
        let signature = self
            .enforcer
            .last_signature()
            .cloned()
            .expect("finish records a signature");
        // A concurrent first release may have won the race; either core
        // is equivalent (same prepared state, same deterministic fit).
        let _ = prepared.core.set(ReleaseCore {
            raw: result.raw.clone(),
            enforced: result.enforced.clone(),
            sensitivity: result.sensitivity.clone(),
            empirical_sensitivity: result.empirical_sensitivity.clone(),
            range: result.range.clone(),
            removal_outputs: result.removal_outputs.clone(),
            addition_outputs: result.addition_outputs.clone(),
            enforce_outcome: result.enforce_outcome,
            group_size: self.config.group_size,
            signature,
        });
        Ok(result)
    }

    /// The cheap repeat-release path: charge ε, draw fresh noise over the
    /// cached enforced output, re-record the enforcer signature, audit.
    /// The separation loop is deliberately skipped — the cached partition
    /// outputs are identical to the already-recorded first release, so it
    /// could only flag the query against its own history and mangle a
    /// legitimate repeat.
    fn release_cached<T, Acc, Out>(
        &mut self,
        prepared: &PreparedQuery<T, Acc, Out>,
        core: &ReleaseCore<Out>,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        T: Data,
        Acc: Data,
        Out: DpOutput,
    {
        let spans = SpanRecorder::new();
        let release_scope = spans.enter("release");
        {
            let _scope = spans.enter("budget");
            if let Some(budget) = &mut self.budget {
                budget.try_spend(self.config.epsilon).map_err(|remaining| {
                    UpaError::BudgetExhausted {
                        remaining,
                        requested: self.config.epsilon,
                    }
                })?;
            }
        }
        let released = {
            let _scope = spans.enter("noise");
            if self.config.add_noise {
                let comps = core
                    .enforced
                    .components()
                    .iter()
                    .zip(core.sensitivity.iter())
                    .map(|(&v, &s)| {
                        LaplaceMechanism::new(s.max(0.0), self.config.epsilon)
                            .expect("validated epsilon and non-negative sensitivity")
                            .release(v, &mut self.rng)
                    })
                    .collect();
                Out::from_components(comps)
            } else {
                core.enforced.clone()
            }
        };
        self.enforcer.record(core.signature.clone());
        drop(release_scope);

        let mut all_spans: Vec<StageSpan> = (*prepared.spans).clone();
        all_spans.extend(spans.spans());
        let total_nanos = all_spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.nanos)
            .sum();
        self.audits.push(QueryAudit {
            query: prepared.query.name().to_string(),
            epsilon: self.config.epsilon,
            budget_remaining: self.budget.as_ref().map(|b| b.remaining()),
            sensitivity: core.sensitivity.clone(),
            range: core.range.bounds.clone(),
            clamped: core.enforce_outcome.clamped,
            attack_detected: core.enforce_outcome.attack_suspected,
            removed_records: core.enforce_outcome.removed_records,
            sample_size: prepared.sample_size(),
            group_size: core.group_size,
            spans: all_spans,
            engine: prepared.engine,
            total_nanos,
        });

        Ok(UpaResult {
            released,
            enforced: core.enforced.clone(),
            raw: core.raw.clone(),
            sensitivity: core.sensitivity.clone(),
            empirical_sensitivity: core.empirical_sensitivity.clone(),
            range: core.range.clone(),
            removal_outputs: core.removal_outputs.clone(),
            addition_outputs: core.addition_outputs.clone(),
            enforce_outcome: core.enforce_outcome,
            sample_size: prepared.sample_size(),
            epsilon: self.config.epsilon,
        })
    }

    /// Phases 3–4 shared between [`Upa::run`] and the joinDP path
    /// ([`crate::join`]): union-preserving reduce over the sampled
    /// accumulators, sensitivity inference, RANGE ENFORCER and release.
    /// `prepare_spans`/`prepare_engine` carry the phase-1–3 cost from the
    /// caller so the recorded [`QueryAudit`] covers the whole query.
    ///
    /// The bulky phase-1–3 state arrives `Arc`-shared so repeated
    /// [`Upa::release`]s never deep-copy the sampled accumulators; only
    /// the two per-half remainder reductions are cloned per call.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish<T, Acc, Out>(
        &mut self,
        query: &MapReduceQuery<T, Acc, Out>,
        mapped_sampled: Arc<Vec<Acc>>,
        mapped_additions: Arc<Vec<Acc>>,
        sampled_halves: Arc<Vec<usize>>,
        rem_half: [Option<Acc>; 2],
        prepare_spans: Arc<Vec<StageSpan>>,
        prepare_engine: MetricsSnapshot,
    ) -> Result<UpaResult<Out>, UpaError>
    where
        T: Data,
        Acc: Data,
        Out: DpOutput,
    {
        let spans = SpanRecorder::new();
        let release_scope = spans.enter("release");
        {
            let _scope = spans.enter("budget");
            if let Some(budget) = &mut self.budget {
                budget.try_spend(self.config.epsilon).map_err(|remaining| {
                    UpaError::BudgetExhausted {
                        remaining,
                        requested: self.config.epsilon,
                    }
                })?;
            }
        }
        let n = mapped_sampled.len();
        // R(M(S′)) — computed once, reused for every neighbour output.
        let r_sprime = query.merge_ref(rem_half[0].as_ref(), rem_half[1].as_ref());

        // Group-level privacy (§VI-E extension): with group_size g > 1
        // the differing records are evaluated in disjoint groups of g, so
        // each neighbour output reflects the joint influence of g
        // records. g = 1 is the paper's iDP setting.
        let g = self.config.group_size;
        let (raw, removal_outputs, addition_outputs) = {
            let mut scope = spans.enter("neighbours");
            scope.add_records(n as u64);
            let grouped_sampled: Vec<Acc> = mapped_sampled
                .chunks(g)
                .map(|chunk| query.reduce_all(chunk).expect("chunks are non-empty"))
                .collect();
            let grouped_additions: Vec<Acc> = mapped_additions
                .chunks(g)
                .map(|chunk| query.reduce_all(chunk).expect("chunks are non-empty"))
                .collect();
            let groups = grouped_sampled.len();

            // Prefix/suffix partial reductions over the grouped sample: the
            // union-preserving trick. R(S \ group_i) = merge(prefix[i],
            // suffix[i+1]). Built by reference — one reduce per step, no
            // accumulator clones along either scan.
            let mut prefix: Vec<Option<Acc>> = Vec::with_capacity(groups + 1);
            prefix.push(None);
            for acc in &grouped_sampled {
                prefix.push(match prefix.last().expect("push above") {
                    Some(p) => Some(query.reduce(p, acc)),
                    None => Some(acc.clone()),
                });
            }
            let mut suffix: Vec<Option<Acc>> = vec![None; groups + 1];
            for i in (0..groups).rev() {
                suffix[i] = match &suffix[i + 1] {
                    Some(s) => Some(query.reduce(&grouped_sampled[i], s)),
                    None => Some(grouped_sampled[i].clone()),
                };
            }
            let r_x = Arc::new(query.merge_ref(r_sprime.as_ref(), prefix[groups].as_ref()));
            let raw: Out = query.finalize(r_x.as_ref().as_ref());

            // The 2·n neighbour finalizations are independent, so they run
            // on the engine's worker pool. `Context::par_map` is
            // driver-side parallelism, not an engine stage — releases keep
            // reporting zero stages and zero shuffles.
            let prefix = Arc::new(prefix);
            let suffix = Arc::new(suffix);
            let r_sprime = Arc::new(r_sprime);

            // f(x − groupᵢ): reuse R(M(S′)) + prefix/suffix.
            let removal_outputs: Vec<Out> = {
                let q = query.clone();
                let prefix = Arc::clone(&prefix);
                let suffix = Arc::clone(&suffix);
                let rsp = Arc::clone(&r_sprime);
                self.ctx
                    .par_map((0..groups).collect(), move |_t, i: usize| {
                        let without_i = q.merge_ref(prefix[i].as_ref(), suffix[i + 1].as_ref());
                        q.finalize(
                            q.merge_ref(rsp.as_ref().as_ref(), without_i.as_ref())
                                .as_ref(),
                        )
                    })
            };
            // f(x + group of additions): reuse R(M(x)).
            let addition_outputs: Vec<Out> = {
                let q = query.clone();
                let r_x = Arc::clone(&r_x);
                let grouped_additions = Arc::new(grouped_additions);
                let indices: Vec<usize> = (0..grouped_additions.len()).collect();
                self.ctx.par_map(indices, move |_t, i: usize| {
                    q.finalize(
                        q.merge_ref(r_x.as_ref().as_ref(), Some(&grouped_additions[i]))
                            .as_ref(),
                    )
                })
            };
            (raw, removal_outputs, addition_outputs)
        };

        // ---- Phase 4: iDP Enforcement -----------------------------------
        let raw_components = raw.components();
        let dims = raw_components.len();
        let (p_lo, p_hi) = self.config.percentiles;
        let (bounds, sensitivity, empirical_sensitivity) = {
            let _scope = spans.enter("mle_fit");
            // One components() projection per neighbour output (not one per
            // component × output), then the per-component fits — mutually
            // independent — run on the worker pool.
            let neighbour_components: Arc<Vec<Vec<f64>>> = Arc::new(
                removal_outputs
                    .iter()
                    .chain(addition_outputs.iter())
                    .map(|o| o.components())
                    .collect(),
            );
            let raws = Arc::new(raw_components.clone());
            let fits: Vec<Result<(f64, f64, f64), UpaError>> = {
                let neigh = Arc::clone(&neighbour_components);
                let raws = Arc::clone(&raws);
                self.ctx.par_map((0..dims).collect(), move |_t, c: usize| {
                    let samples: Vec<f64> = neigh
                        .iter()
                        .filter_map(|comps| comps.get(c).copied())
                        .collect();
                    let fit = Normal::mle(&samples)?;
                    // The enforced range is the envelope of the fit's
                    // percentile interval (Algorithm 1, line 19) and the
                    // *observed* extremes of the sampled neighbour outputs —
                    // the paper's Figure 3 describes the red lines as the
                    // min/max inferred from the sample, and the envelope
                    // guarantees every sampled neighbour is covered even
                    // when the distribution is strongly non-normal
                    // (discrete counts, heavy tails).
                    let sample_min = samples.iter().copied().fold(f64::INFINITY, f64::min);
                    let sample_max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let lo = fit.quantile(p_lo).min(sample_min);
                    let hi = fit.quantile(p_hi).max(sample_max);
                    let emp = samples
                        .iter()
                        .map(|v| (v - raws[c]).abs())
                        .fold(0.0, f64::max);
                    Ok((lo, hi, emp))
                })
            };
            let mut bounds = Vec::with_capacity(dims);
            let mut sensitivity = Vec::with_capacity(dims);
            let mut empirical_sensitivity = Vec::with_capacity(dims);
            for fit in fits {
                let (lo, hi, emp) = fit?;
                bounds.push((lo, hi));
                sensitivity.push(hi - lo);
                empirical_sensitivity.push(emp);
            }
            (bounds, sensitivity, empirical_sensitivity)
        };
        let range = OutputRange::new(bounds);

        let mut state = PipelineState {
            query,
            mapped_sampled: Arc::clone(&mapped_sampled),
            sampled_halves: Arc::clone(&sampled_halves),
            active: vec![true; n],
            rem_half,
            output_components: raw_components,
        };
        let enforce_outcome =
            self.enforcer
                .enforce_traced(&mut state, &range, &mut self.rng, &spans);
        let enforced = Out::from_components(state.output_components.clone());

        let released = {
            let _scope = spans.enter("noise");
            if self.config.add_noise {
                let comps = enforced
                    .components()
                    .iter()
                    .zip(sensitivity.iter())
                    .map(|(&v, &s)| {
                        LaplaceMechanism::new(s.max(0.0), self.config.epsilon)
                            .expect("validated epsilon and non-negative sensitivity")
                            .release(v, &mut self.rng)
                    })
                    .collect();
                Out::from_components(comps)
            } else {
                enforced.clone()
            }
        };

        drop(release_scope);
        // The audit owns its span list; this is the only per-release copy
        // of the shared preparation spans.
        let mut all_spans: Vec<StageSpan> = (*prepare_spans).clone();
        all_spans.extend(spans.spans());
        let total_nanos = all_spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.nanos)
            .sum();
        self.audits.push(QueryAudit {
            query: query.name().to_string(),
            epsilon: self.config.epsilon,
            budget_remaining: self.budget.as_ref().map(|b| b.remaining()),
            sensitivity: sensitivity.clone(),
            range: range.bounds.clone(),
            clamped: enforce_outcome.clamped,
            attack_detected: enforce_outcome.attack_suspected,
            removed_records: enforce_outcome.removed_records,
            sample_size: n,
            group_size: g,
            spans: all_spans,
            engine: prepare_engine,
            total_nanos,
        });

        Ok(UpaResult {
            released,
            enforced,
            raw,
            sensitivity,
            empirical_sensitivity,
            range,
            removal_outputs,
            addition_outputs,
            enforce_outcome,
            sample_size: n,
            epsilon: self.config.epsilon,
        })
    }

    /// Phase-1 helper shared with the join path: validates, charges the
    /// budget, samples `n` indices and computes each sampled record's
    /// logical half plus the partition split point.
    pub(crate) fn prepare_sample<T: Data>(
        &mut self,
        data: &Dataset<T>,
    ) -> Result<(Vec<usize>, Vec<usize>, usize), UpaError> {
        self.config.validate()?;
        let len = data.len();
        if len == 0 {
            return Err(UpaError::EmptyDataset);
        }
        let n = self.config.sample_size.min(len);
        let num_parts = data.num_partitions();
        let half_split = num_parts.div_ceil(2);
        let indices = sample_indices(&mut self.rng, len, n);
        let mut offsets = Vec::with_capacity(num_parts + 1);
        offsets.push(0usize);
        for p in data.partitions() {
            offsets.push(offsets.last().copied().expect("non-empty") + p.len());
        }
        let half_of_global = |g: usize| -> usize {
            let part = match offsets.binary_search(&g) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            usize::from(part.min(num_parts - 1) >= half_split)
        };
        let halves = indices.iter().map(|&g| half_of_global(g)).collect();
        Ok((indices, halves, half_split))
    }
}

/// The deterministic, data-dependent core of a release — everything
/// Algorithm 1 computes *before* the Laplace draw: neighbour outputs,
/// the MLE sensitivity fit, and the range-enforced value. Given the same
/// prepared state it is identical on every release, so the first release
/// caches it and later releases reduce to a budget charge plus a fresh
/// noise draw (this is what makes repeat releases cheap enough to serve
/// without queueing).
struct ReleaseCore<Out> {
    raw: Out,
    enforced: Out,
    sensitivity: Vec<f64>,
    empirical_sensitivity: Vec<f64>,
    range: OutputRange,
    removal_outputs: Vec<Out>,
    addition_outputs: Vec<Out>,
    enforce_outcome: EnforceOutcome,
    /// Group size the core was computed under, stamped into audits of
    /// cached releases.
    group_size: usize,
    /// The post-enforcement partition outputs the first release recorded;
    /// every cached release re-records them so enforcer history keeps one
    /// entry per answered release.
    signature: QuerySignature,
}

/// The reusable phase-1–3 state of a query: sampled/addition accumulators
/// and the per-half remainder reductions. Produced by [`Upa::prepare`],
/// consumed (repeatedly) by [`Upa::release`].
pub struct PreparedQuery<T, Acc, Out> {
    query: MapReduceQuery<T, Acc, Out>,
    // `Arc`-shared so each release borrows the phase-1–3 state instead of
    // deep-copying the sampled accumulators.
    mapped_sampled: Arc<Vec<Acc>>,
    mapped_additions: Arc<Vec<Acc>>,
    sampled_halves: Arc<Vec<usize>>,
    rem_half: [Option<Acc>; 2],
    /// Phase-1–3 stage spans, folded into every release's audit.
    spans: Arc<Vec<StageSpan>>,
    /// Engine counters attributable to the preparation.
    engine: MetricsSnapshot,
    /// Pre-noise release state, filled by the first release. Config
    /// changes that feed the core (percentiles, group size, the
    /// enforcer's history) need a fresh prepare to take effect; ε does
    /// not — noise is calibrated per release.
    core: OnceLock<ReleaseCore<Out>>,
}

impl<T, Acc, Out> std::fmt::Debug for PreparedQuery<T, Acc, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &self.query)
            .field("sample_size", &self.mapped_sampled.len())
            .finish()
    }
}

impl<T, Acc, Out> PreparedQuery<T, Acc, Out> {
    /// Effective sample size of the preparation.
    pub fn sample_size(&self) -> usize {
        self.mapped_sampled.len()
    }
}

/// In-flight query state handed to RANGE ENFORCER.
struct PipelineState<'q, T, Acc, Out> {
    query: &'q MapReduceQuery<T, Acc, Out>,
    mapped_sampled: Arc<Vec<Acc>>,
    sampled_halves: Arc<Vec<usize>>,
    active: Vec<bool>,
    rem_half: [Option<Acc>; 2],
    output_components: Vec<f64>,
}

impl<T: Data, Acc: Data, Out: DpOutput> PipelineState<'_, T, Acc, Out> {
    /// Folds the active accumulators of half `h` by reference: a
    /// `Cow`-carried accumulator means each step is one `reduce` call with
    /// no per-merge clone of the sampled accumulators.
    fn half_outputs(&self) -> [Out; 2] {
        [0usize, 1usize].map(|h| {
            let mut acc: Option<Cow<'_, Acc>> = self.rem_half[h].as_ref().map(Cow::Borrowed);
            for i in 0..self.mapped_sampled.len() {
                if self.active[i] && self.sampled_halves[i] == h {
                    acc = Some(match acc {
                        Some(a) => {
                            Cow::Owned(self.query.reduce(a.as_ref(), &self.mapped_sampled[i]))
                        }
                        None => Cow::Borrowed(&self.mapped_sampled[i]),
                    });
                }
            }
            self.query.finalize(acc.as_deref())
        })
    }

    fn recompute_output(&mut self) {
        let mut acc: Option<Cow<'_, Acc>> = match (&self.rem_half[0], &self.rem_half[1]) {
            (Some(a), Some(b)) => Some(Cow::Owned(self.query.reduce(a, b))),
            (Some(a), None) => Some(Cow::Borrowed(a)),
            (None, b) => b.as_ref().map(Cow::Borrowed),
        };
        for i in 0..self.mapped_sampled.len() {
            if self.active[i] {
                acc = Some(match acc {
                    Some(a) => Cow::Owned(self.query.reduce(a.as_ref(), &self.mapped_sampled[i])),
                    None => Cow::Borrowed(&self.mapped_sampled[i]),
                });
            }
        }
        self.output_components = self.query.finalize(acc.as_deref()).components();
    }
}

impl<T: Data, Acc: Data, Out: DpOutput> EnforceState for PipelineState<'_, T, Acc, Out> {
    fn partition_outputs(&self) -> [Vec<f64>; 2] {
        let [a, b] = self.half_outputs();
        [a.components(), b.components()]
    }

    fn remove_two_records(&mut self) -> bool {
        // Prefer one record from each half so both partition outputs move.
        let pick = |state: &Self, half: Option<usize>, skip: Option<usize>| -> Option<usize> {
            (0..state.mapped_sampled.len()).rev().find(|&i| {
                state.active[i]
                    && Some(i) != skip
                    && half.is_none_or(|h| state.sampled_halves[i] == h)
            })
        };
        let first = pick(self, Some(0), None).or_else(|| pick(self, None, None));
        let first = match first {
            Some(i) => i,
            None => return false,
        };
        let second = pick(self, Some(1), Some(first)).or_else(|| pick(self, None, Some(first)));
        let second = match second {
            Some(i) => i,
            None => return false,
        };
        self.active[first] = false;
        self.active[second] = false;
        self.recompute_output();
        true
    }

    fn output_components(&self) -> Vec<f64> {
        self.output_components.clone()
    }

    fn set_output_components(&mut self, components: Vec<f64>) {
        self.output_components = components;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::EmpiricalSampler;

    fn small_upa(sample_size: usize) -> (Context, Upa) {
        let ctx = Context::with_threads(4);
        let upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        (ctx, upa)
    }

    #[test]
    fn count_query_end_to_end() {
        let (ctx, mut upa) = small_upa(100);
        let data: Vec<f64> = (0..4_000).map(|i| (i % 10) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 8);
        let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0);
        let domain = EmpiricalSampler::new(data);
        let result = upa.run(&ds, &query, &domain).unwrap();
        assert_eq!(result.raw, 4_000.0);
        // Every removal neighbour of a count is exactly total − 1 and every
        // addition neighbour is total + 1.
        assert!(result.removal_outputs.iter().all(|&o| o == 3_999.0));
        assert!(result.addition_outputs.iter().all(|&o| o == 4_001.0));
        // The inferred sensitivity covers the true local sensitivity (1.0)
        // scaled by the percentile width of the bimodal ±1 sample.
        assert!(result.max_sensitivity() >= 2.0 * 0.9);
        assert_eq!(result.sample_size, 100);
    }

    #[test]
    fn neighbour_outputs_match_direct_recomputation() {
        // The union-preservation property: f(x − sᵢ) computed through
        // prefix/suffix reuse equals direct evaluation on x − sᵢ.
        let (ctx, mut upa) = small_upa(50);
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 * 0.5).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data.clone());
        let result = upa.run(&ds, &query, &domain).unwrap();
        let total: f64 = data.iter().sum();
        assert!((result.raw - total).abs() < 1e-6);
        // Each removal output must equal total − s for some record s of x.
        for &o in &result.removal_outputs {
            let removed = total - o;
            assert!(
                data.iter().any(|&v| (v - removed).abs() < 1e-6),
                "removal output {o} does not correspond to any record"
            );
        }
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let (ctx, mut upa) = small_upa(10);
        let ds = ctx.parallelize(Vec::<f64>::new(), 2);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(vec![1.0]);
        assert_eq!(
            upa.run(&ds, &query, &domain).unwrap_err(),
            UpaError::EmptyDataset
        );
    }

    #[test]
    fn small_dataset_samples_every_record() {
        let (ctx, mut upa) = small_upa(1000);
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let ds = ctx.parallelize(data.clone(), 2);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let result = upa.run(&ds, &query, &domain).unwrap();
        assert_eq!(result.sample_size, 5);
        assert_eq!(result.removal_outputs.len(), 5);
        // With every record sampled the removal outputs are exact:
        // {15−1, …, 15−5}.
        let mut removed: Vec<f64> = result.removal_outputs.iter().map(|o| 15.0 - o).collect();
        removed.sort_by(f64::total_cmp);
        for (i, r) in removed.iter().enumerate() {
            assert!((r - (i + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn output_is_clamped_into_range() {
        let (ctx, mut upa) = small_upa(64);
        let data: Vec<f64> = (0..2_000).map(|i| (i % 7) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let result = upa.run(&ds, &query, &domain).unwrap();
        assert!(result.range.contains(&result.enforced.components()));
    }

    #[test]
    fn noise_is_added_when_enabled() {
        let ctx = Context::with_threads(2);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 64,
                add_noise: true,
                ..UpaConfig::default()
            },
        );
        let data: Vec<f64> = (0..2_000).map(|i| (i % 13) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let result = upa.run(&ds, &query, &domain).unwrap();
        assert_ne!(
            result.released, result.enforced,
            "Laplace noise should perturb the output (almost surely)"
        );
    }

    #[test]
    fn budget_is_charged_and_exhausts() {
        let ctx = Context::with_threads(2);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 16,
                epsilon: 0.4,
                add_noise: false,
                ..UpaConfig::default()
            },
        )
        .with_budget(1.0);
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        assert!(upa.run(&ds, &query, &domain).is_ok());
        assert!(upa.run(&ds, &query, &domain).is_ok());
        // Third query needs 0.4 but only 0.2 remains.
        match upa.run(&ds, &query, &domain) {
            Err(UpaError::BudgetExhausted { remaining, .. }) => {
                assert!((remaining - 0.2).abs() < 1e-9);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn repeated_query_on_neighbouring_dataset_is_separated() {
        let ctx = Context::with_threads(4);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 32,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        let data: Vec<f64> = (0..1_000).map(|i| (i % 10) as f64).collect();
        let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0);
        let domain = EmpiricalSampler::new(data.clone());
        let ds = ctx.parallelize(data.clone(), 8);
        let r1 = upa.run(&ds, &query, &domain).unwrap();
        assert!(!r1.enforce_outcome.attack_suspected);
        // The attack: same query, one record removed.
        let mut neighbour = data.clone();
        neighbour.pop();
        let ds2 = ctx.parallelize(neighbour, 8);
        let r2 = upa.run(&ds2, &query, &domain).unwrap();
        assert!(
            r2.enforce_outcome.attack_suspected,
            "neighbouring repeat must be flagged"
        );
        assert!(r2.enforce_outcome.removed_records >= 2);
    }

    #[test]
    fn vector_query_gets_per_component_treatment() {
        let (ctx, mut upa) = small_upa(64);
        let data: Vec<f64> = (0..3_000).map(|i| (i % 11) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        // Output = [count, sum]: components with very different scales.
        let query: MapReduceQuery<f64, (f64, f64), Vec<f64>> = MapReduceQuery::new(
            "count_and_sum",
            |x: &f64| (1.0, *x),
            |a, b| (a.0 + b.0, a.1 + b.1),
            |acc| match acc {
                Some((c, s)) => vec![*c, *s],
                None => vec![0.0, 0.0],
            },
        );
        let domain = EmpiricalSampler::new(data);
        let result = upa.run(&ds, &query, &domain).unwrap();
        assert_eq!(result.sensitivity.len(), 2);
        // Count sensitivity ~2·P99-width of ±1; sum sensitivity larger
        // (records up to 10).
        assert!(result.sensitivity[1] > result.sensitivity[0]);
        assert_eq!(result.range.dim(), 2);
    }

    #[test]
    fn group_size_scales_sensitivity() {
        // For a count, removing a group of g records changes the output
        // by exactly g, so the empirical sensitivity must scale with g.
        let ctx = Context::with_threads(4);
        let data: Vec<f64> = (0..5_000).map(|i| (i % 3) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 8);
        let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0);
        let domain = EmpiricalSampler::new(data);
        let mut results = Vec::new();
        for g in [1usize, 5, 10] {
            let mut upa = Upa::new(
                ctx.clone(),
                UpaConfig {
                    sample_size: 100,
                    add_noise: false,
                    group_size: g,
                    ..UpaConfig::default()
                },
            );
            let r = upa.run(&ds, &query, &domain).unwrap();
            assert_eq!(
                r.max_empirical_sensitivity(),
                g as f64,
                "a count's group influence is exactly g"
            );
            assert_eq!(r.removal_outputs.len(), 100usize.div_ceil(g));
            results.push(r.max_sensitivity());
        }
        assert!(
            results[2] > results[0],
            "group-10 noise must exceed individual noise ({results:?})"
        );
    }

    #[test]
    fn prepare_release_reuses_engine_work() {
        let ctx = Context::with_threads(4);
        let data: Vec<f64> = (0..3_000).map(|i| (i % 7) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 8);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 50,
                add_noise: true,
                ..UpaConfig::default()
            },
        );
        let prepared = upa.prepare(&ds, &query, &domain).unwrap();
        assert_eq!(prepared.sample_size(), 50);
        let before = ctx.metrics();
        let r1 = upa.release(&prepared).unwrap();
        let r2 = upa.release(&prepared).unwrap();
        let delta = ctx.metrics().since(&before);
        assert_eq!(delta.stages, 0, "releases must not run engine stages");
        assert_eq!(delta.shuffles, 0);
        assert_eq!(r1.raw, r2.raw);
        assert_eq!(r1.sensitivity, r2.sensitivity);
        assert_ne!(r1.released, r2.released, "fresh noise per release");
        assert_eq!(upa.enforcer().history_len(), 2);
    }

    /// Repeat releases ride the cached pre-noise core: the deterministic
    /// fit is identical, each draw is fresh, ε responds per release, and
    /// a legitimate repeat is never treated as an attack on itself —
    /// while the enforcer still records one history entry per release.
    #[test]
    fn cached_repeat_releases_draw_fresh_noise_without_self_attack() {
        let ctx = Context::with_threads(4);
        let data: Vec<f64> = (0..3_000).map(|i| (i % 7) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 8);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 50,
                epsilon: 0.2,
                add_noise: true,
                ..UpaConfig::default()
            },
        );
        let prepared = upa.prepare(&ds, &query, &domain).unwrap();
        let r1 = upa.release(&prepared).unwrap();
        let r2 = upa.release(&prepared).unwrap();
        let r3 = upa.release(&prepared).unwrap();

        // The deterministic core is shared…
        assert_eq!(r1.enforced, r2.enforced);
        assert_eq!(r1.sensitivity, r3.sensitivity);
        assert_eq!(r1.range, r3.range);
        // …the noise is not.
        assert_ne!(r2.released, r3.released);
        // A repeat of the same preparation is not an attack on itself.
        assert!(!r2.enforce_outcome.attack_suspected);
        assert_eq!(r2.enforce_outcome.removed_records, 0);
        assert_eq!(r3.enforce_outcome, r1.enforce_outcome);
        // One history entry and one audit per answered release.
        assert_eq!(upa.enforcer().history_len(), 3);
        assert_eq!(upa.audits().len(), 3);
        let audit = upa.last_audit().unwrap();
        assert_eq!(audit.sample_size, 50);
        assert_eq!(audit.epsilon, 0.2);

        // ε is applied per release, not baked into the cache: a tighter
        // budget still scales the cached core's noise.
        upa.set_epsilon(0.9).unwrap();
        let r4 = upa.release(&prepared).unwrap();
        assert_eq!(r4.epsilon, 0.9);
        assert_eq!(r4.sensitivity, r1.sensitivity);
    }

    #[test]
    fn prepare_release_charges_budget_per_release() {
        let ctx = Context::with_threads(2);
        let data: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 20,
                epsilon: 0.4,
                add_noise: false,
                ..UpaConfig::default()
            },
        )
        .with_budget(1.0);
        // Preparation itself is free.
        let prepared = upa.prepare(&ds, &query, &domain).unwrap();
        assert_eq!(upa.remaining_budget(), Some(1.0));
        assert!(upa.release(&prepared).is_ok());
        assert!(upa.release(&prepared).is_ok());
        assert!(matches!(
            upa.release(&prepared),
            Err(UpaError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn set_epsilon_changes_the_next_charge() {
        let ctx = Context::with_threads(2);
        let data: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let mut upa = Upa::new(
            ctx,
            UpaConfig {
                sample_size: 16,
                epsilon: 0.5,
                add_noise: false,
                ..UpaConfig::default()
            },
        )
        .with_budget(1.0);
        let prepared = upa.prepare(&ds, &query, &domain).unwrap();
        upa.set_epsilon(0.25).unwrap();
        let r = upa.release(&prepared).unwrap();
        assert_eq!(r.epsilon, 0.25);
        assert_eq!(upa.remaining_budget(), Some(0.75));
        assert_eq!(
            upa.set_epsilon(f64::NAN).unwrap_err(),
            UpaError::InvalidConfig("epsilon")
        );
        // A failed set leaves the previous value in place.
        assert_eq!(upa.config().epsilon, 0.25);
    }

    #[test]
    fn run_records_audit_with_stage_timings() {
        let (ctx, mut upa) = small_upa(50);
        let data: Vec<f64> = (0..1_000).map(|i| (i % 10) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0);
        let domain = EmpiricalSampler::new(data);
        let _ = upa.run(&ds, &query, &domain).unwrap();
        let audit = upa.last_audit().expect("run records an audit");
        assert_eq!(audit.query, "count");
        assert_eq!(audit.sample_size, 50);
        for stage in [
            "partition",
            "sample",
            "map",
            "reduce",
            "neighbours",
            "mle_fit",
            "enforce",
            "clamp",
            "noise",
        ] {
            assert!(audit.stage_nanos(stage) > 0, "stage {stage} has zero time");
        }
        assert!(audit.engine.stages > 0);
        assert!(audit.engine.shuffles >= 1);
        assert!(audit.engine.shuffle_bytes > 0);
        assert!(audit.total_nanos > 0);
        let _ = upa.run(&ds, &query, &domain).unwrap();
        assert_eq!(upa.audits().len(), 2);
        upa.clear_audits();
        assert!(upa.last_audit().is_none());
    }

    fn result_bits<Out: DpOutput>(r: &UpaResult<Out>) -> Vec<u64> {
        let mut bits: Vec<u64> = Vec::new();
        for v in [&r.released, &r.enforced, &r.raw] {
            bits.extend(v.components().iter().map(|x| x.to_bits()));
        }
        for v in &r.sensitivity {
            bits.push(v.to_bits());
        }
        for v in &r.empirical_sensitivity {
            bits.push(v.to_bits());
        }
        for o in r.removal_outputs.iter().chain(r.addition_outputs.iter()) {
            bits.extend(o.components().iter().map(|x| x.to_bits()));
        }
        for (lo, hi) in &r.range.bounds {
            bits.push(lo.to_bits());
            bits.push(hi.to_bits());
        }
        bits
    }

    fn assert_columnar_matches_row(values: &[f64], chunk_rows: usize, half_key: bool) {
        use crate::domain::ColumnarEmpiricalSampler;
        use dataflow::columnar::ColumnarBuf;

        let ctx = Context::with_threads(4);
        let config = UpaConfig {
            sample_size: 64,
            add_noise: true,
            ..UpaConfig::default()
        };
        let mut query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        if half_key {
            query = query.with_half_key(|x: &f64| x.to_bits());
        }

        let mut row = Upa::new(ctx.clone(), config.clone());
        let ds = ctx.parallelize_default(values.to_vec());
        let row_domain = EmpiricalSampler::new(values.to_vec());
        let p_row = row.prepare(&ds, &query, &row_domain).unwrap();
        let r_row = row.release(&p_row).unwrap();

        let mut col = Upa::new(ctx.clone(), config);
        let buf = ColumnarBuf::from_values(values, chunk_rows);
        let cds = ColumnarDataset::new(&ctx, buf.clone());
        let col_domain = ColumnarEmpiricalSampler::new(buf);
        let p_col = col.prepare_columnar(&cds, &query, &col_domain).unwrap();
        let r_col = col.release(&p_col).unwrap();

        assert_eq!(p_row.sample_size(), p_col.sample_size());
        assert_eq!(
            result_bits(&r_row),
            result_bits(&r_col),
            "columnar release diverged (chunk_rows={chunk_rows}, half_key={half_key})"
        );
    }

    #[test]
    fn columnar_prepare_is_bit_identical_to_row_path() {
        let values: Vec<f64> = (0..3_001)
            .map(|i| ((i * 37) % 113) as f64 * 0.5 - 7.0)
            .collect();
        for chunk_rows in [1usize, 7, 256, 5_000] {
            assert_columnar_matches_row(&values, chunk_rows, true);
            assert_columnar_matches_row(&values, chunk_rows, false);
        }
    }

    #[test]
    fn columnar_prepare_handles_full_sample_and_empty() {
        use crate::domain::ColumnarEmpiricalSampler;
        use dataflow::columnar::ColumnarBuf;

        // Sample size ≥ len: every record sampled, remainder empty.
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_columnar_matches_row(&values, 2, true);
        assert_columnar_matches_row(&values, 2, false);

        // Empty dataset is rejected like the row path.
        let ctx = Context::with_threads(2);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 8,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        let cds = ColumnarDataset::new(&ctx, ColumnarBuf::new(Vec::new()));
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = ColumnarEmpiricalSampler::new(ColumnarBuf::from_values(&[1.0], 1));
        assert_eq!(
            upa.prepare_columnar(&cds, &query, &domain).unwrap_err(),
            UpaError::EmptyDataset
        );
    }

    #[test]
    fn columnar_prepare_records_stages_and_shuffles() {
        use crate::domain::ColumnarEmpiricalSampler;
        use dataflow::columnar::ColumnarBuf;

        let ctx = Context::with_threads(4);
        let values: Vec<f64> = (0..2_000).map(|i| (i % 11) as f64).collect();
        let buf = ColumnarBuf::from_values(&values, 128);
        let cds = ColumnarDataset::new(&ctx, buf.clone());
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 32,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        let query =
            MapReduceQuery::scalar_sum("sum", |x: &f64| *x).with_half_key(|x: &f64| x.to_bits());
        let domain = ColumnarEmpiricalSampler::new(buf);
        let prepared = upa.prepare_columnar(&cds, &query, &domain).unwrap();
        assert!(prepared.engine.stages >= 1, "reduce must run on the engine");
        assert!(prepared.engine.shuffles >= 1, "half-exchange must count");
        assert!(prepared.engine.records_processed >= 2_000);
        let _ = upa.release(&prepared).unwrap();
        let audit = upa.last_audit().unwrap();
        for stage in ["partition", "sample", "map", "reduce", "noise"] {
            assert!(audit.stage_nanos(stage) > 0, "stage {stage} has zero time");
        }
    }

    #[test]
    fn release_audits_include_prepare_spans() {
        let ctx = Context::with_threads(2);
        let data: Vec<f64> = (0..800).map(|i| (i % 5) as f64).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let mut upa = Upa::new(
            ctx,
            UpaConfig {
                sample_size: 20,
                add_noise: true,
                ..UpaConfig::default()
            },
        );
        let prepared = upa.prepare(&ds, &query, &domain).unwrap();
        assert!(upa.last_audit().is_none(), "prepare alone releases nothing");
        let _ = upa.release(&prepared).unwrap();
        let _ = upa.release(&prepared).unwrap();
        assert_eq!(upa.audits().len(), 2);
        for audit in upa.audits() {
            // Every release's audit carries the (shared) preparation cost.
            assert!(audit.stage_nanos("sample") > 0);
            assert!(audit.stage_nanos("reduce") > 0);
            assert!(audit.stage_nanos("noise") > 0);
        }
    }
}
