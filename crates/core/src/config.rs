//! UPA configuration.

/// Configuration of the UPA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct UpaConfig {
    /// Number of sampled differing records `n`. The paper defaults to
    /// 1000, which statistics theory shows is sufficient for the MLE
    /// normal fit (§IV-A); for datasets smaller than `n` the pipeline
    /// automatically samples every record, obtaining the exact local
    /// sensitivity.
    pub sample_size: usize,
    /// Privacy budget ε per query. The paper's evaluation uses 0.1
    /// (matching FLEX's setup).
    pub epsilon: f64,
    /// Percentile pair defining the inferred output range; the paper uses
    /// (P1, P99).
    pub percentiles: (f64, f64),
    /// RNG seed for sampling, range clamping and noise — fixed for
    /// reproducible experiments.
    pub seed: u64,
    /// Whether the final Laplace noise is added. Disabled only by the
    /// accuracy harness, which needs the pre-noise sensitivity values; the
    /// release is **not** differentially private with noise disabled.
    pub add_noise: bool,
    /// Group size `g` for group-level privacy (the paper's §VI-E future
    /// work). With `g > 1`, neighbouring datasets differ by up to `g`
    /// records: the sampled differing records are evaluated in disjoint
    /// groups of `g`, so the inferred sensitivity covers the joint
    /// influence of `g` records. The default 1 is the paper's iDP
    /// setting.
    pub group_size: usize,
}

impl Default for UpaConfig {
    fn default() -> Self {
        UpaConfig {
            sample_size: 1000,
            epsilon: 0.1,
            percentiles: (0.01, 0.99),
            seed: 0xDA7A,
            add_noise: true,
            group_size: 1,
        }
    }
}

impl UpaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::UpaError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), crate::UpaError> {
        if self.sample_size == 0 {
            return Err(crate::UpaError::InvalidConfig("sample_size"));
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(crate::UpaError::InvalidConfig("epsilon"));
        }
        let (lo, hi) = self.percentiles;
        if !(0.0 < lo && lo < hi && hi < 1.0) {
            return Err(crate::UpaError::InvalidConfig("percentiles"));
        }
        if self.group_size == 0 {
            return Err(crate::UpaError::InvalidConfig("group_size"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = UpaConfig::default();
        assert_eq!(c.sample_size, 1000);
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.percentiles, (0.01, 0.99));
        assert!(c.add_noise);
        assert_eq!(c.group_size, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_flags_each_field() {
        let mut c = UpaConfig {
            sample_size: 0,
            ..UpaConfig::default()
        };
        assert!(c.validate().is_err());
        c.sample_size = 10;
        c.epsilon = 0.0;
        assert!(c.validate().is_err());
        c.epsilon = 0.1;
        c.percentiles = (0.99, 0.01);
        assert!(c.validate().is_err());
        c.percentiles = (0.0, 0.99);
        assert!(c.validate().is_err());
        c.percentiles = (0.01, 0.99);
        c.group_size = 0;
        assert!(c.validate().is_err());
    }
}
