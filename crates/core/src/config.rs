//! UPA configuration.

/// Configuration of the UPA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct UpaConfig {
    /// Number of sampled differing records `n`. The paper defaults to
    /// 1000, which statistics theory shows is sufficient for the MLE
    /// normal fit (§IV-A); for datasets smaller than `n` the pipeline
    /// automatically samples every record, obtaining the exact local
    /// sensitivity.
    pub sample_size: usize,
    /// Privacy budget ε per query. The paper's evaluation uses 0.1
    /// (matching FLEX's setup).
    pub epsilon: f64,
    /// Percentile pair defining the inferred output range; the paper uses
    /// (P1, P99).
    pub percentiles: (f64, f64),
    /// RNG seed for sampling, range clamping and noise — fixed for
    /// reproducible experiments.
    pub seed: u64,
    /// Whether the final Laplace noise is added. Disabled only by the
    /// accuracy harness, which needs the pre-noise sensitivity values; the
    /// release is **not** differentially private with noise disabled.
    pub add_noise: bool,
    /// Group size `g` for group-level privacy (the paper's §VI-E future
    /// work). With `g > 1`, neighbouring datasets differ by up to `g`
    /// records: the sampled differing records are evaluated in disjoint
    /// groups of `g`, so the inferred sensitivity covers the joint
    /// influence of `g` records. The default 1 is the paper's iDP
    /// setting.
    pub group_size: usize,
}

impl Default for UpaConfig {
    fn default() -> Self {
        UpaConfig {
            sample_size: 1000,
            epsilon: 0.1,
            percentiles: (0.01, 0.99),
            seed: 0xDA7A,
            add_noise: true,
            group_size: 1,
        }
    }
}

impl UpaConfig {
    /// Starts a validating builder seeded with the paper's defaults.
    ///
    /// Unlike struct-update syntax, [`UpaConfigBuilder::build`] rejects
    /// invalid settings (`sample_size == 0`, non-positive or non-finite
    /// ε, percentile bounds outside `0 < lo < hi < 1`, `group_size == 0`)
    /// with [`crate::UpaError::InvalidConfig`] instead of letting them
    /// reach the pipeline.
    ///
    /// ```
    /// use upa_core::UpaConfig;
    /// let config = UpaConfig::builder()
    ///     .sample_size(200)
    ///     .epsilon(0.5)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.sample_size, 200);
    /// assert!(UpaConfig::builder().epsilon(-1.0).build().is_err());
    /// ```
    pub fn builder() -> UpaConfigBuilder {
        UpaConfigBuilder {
            config: UpaConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::UpaError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), crate::UpaError> {
        if self.sample_size == 0 {
            return Err(crate::UpaError::InvalidConfig("sample_size"));
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(crate::UpaError::InvalidConfig("epsilon"));
        }
        let (lo, hi) = self.percentiles;
        if !(0.0 < lo && lo < hi && hi < 1.0) {
            return Err(crate::UpaError::InvalidConfig("percentiles"));
        }
        if self.group_size == 0 {
            return Err(crate::UpaError::InvalidConfig("group_size"));
        }
        Ok(())
    }
}

/// Builder for [`UpaConfig`] returned by [`UpaConfig::builder`]; `build`
/// validates before handing the configuration out.
#[derive(Debug, Clone)]
pub struct UpaConfigBuilder {
    config: UpaConfig,
}

impl UpaConfigBuilder {
    /// Sets the number of sampled differing records `n`.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the per-query privacy budget ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the percentile pair defining the inferred output range.
    pub fn percentiles(mut self, lo: f64, hi: f64) -> Self {
        self.config.percentiles = (lo, hi);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables or disables the final Laplace noise. The release is not
    /// differentially private with noise disabled.
    pub fn add_noise(mut self, add_noise: bool) -> Self {
        self.config.add_noise = add_noise;
        self
    }

    /// Sets the group size `g` for group-level privacy.
    pub fn group_size(mut self, g: usize) -> Self {
        self.config.group_size = g;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::UpaError::InvalidConfig`] naming the first invalid
    /// field.
    pub fn build(self) -> Result<UpaConfig, crate::UpaError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = UpaConfig::default();
        assert_eq!(c.sample_size, 1000);
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.percentiles, (0.01, 0.99));
        assert!(c.add_noise);
        assert_eq!(c.group_size, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_flags_each_field() {
        let mut c = UpaConfig {
            sample_size: 0,
            ..UpaConfig::default()
        };
        assert!(c.validate().is_err());
        c.sample_size = 10;
        c.epsilon = 0.0;
        assert!(c.validate().is_err());
        c.epsilon = 0.1;
        c.percentiles = (0.99, 0.01);
        assert!(c.validate().is_err());
        c.percentiles = (0.0, 0.99);
        assert!(c.validate().is_err());
        c.percentiles = (0.01, 0.99);
        c.group_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_applies_settings_and_validates() {
        let c = UpaConfig::builder()
            .sample_size(250)
            .epsilon(0.5)
            .percentiles(0.05, 0.95)
            .seed(7)
            .add_noise(false)
            .group_size(2)
            .build()
            .unwrap();
        assert_eq!(c.sample_size, 250);
        assert_eq!(c.epsilon, 0.5);
        assert_eq!(c.percentiles, (0.05, 0.95));
        assert_eq!(c.seed, 7);
        assert!(!c.add_noise);
        assert_eq!(c.group_size, 2);
    }

    #[test]
    fn builder_rejects_invalid_settings() {
        use crate::UpaError;
        for (builder, field) in [
            (UpaConfig::builder().sample_size(0), "sample_size"),
            (UpaConfig::builder().epsilon(0.0), "epsilon"),
            (UpaConfig::builder().epsilon(f64::NAN), "epsilon"),
            (UpaConfig::builder().percentiles(0.99, 0.01), "percentiles"),
            (UpaConfig::builder().percentiles(0.0, 0.99), "percentiles"),
            (UpaConfig::builder().group_size(0), "group_size"),
        ] {
            match builder.build() {
                Err(UpaError::InvalidConfig(f)) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(UpaConfig::builder().build().unwrap(), UpaConfig::default());
    }
}
