//! Queries as Map/Reduce decompositions.
//!
//! UPA requires only that a query be expressed as a **mapper** applied
//! independently per record, a **commutative and associative reducer**
//! over the mapped values, and a final output projection. That is exactly
//! the contract MapReduce frameworks already impose on user code to enable
//! parallelism and fault tolerance (paper §II-C) — which is the paper's key
//! observation.

use crate::output::DpOutput;
use dataflow::Data;
use std::sync::Arc;

/// Shared handle to a query mapper `M : T → Acc`.
pub type MapFn<T, Acc> = Arc<dyn Fn(&T) -> Acc + Send + Sync>;
/// Shared handle to a commutative, associative reducer `R`.
pub type ReduceFn<Acc> = Arc<dyn Fn(&Acc, &Acc) -> Acc + Send + Sync>;
/// Shared handle to the output projection `finalize`.
pub type FinalizeFn<Acc, Out> = Arc<dyn Fn(Option<&Acc>) -> Out + Send + Sync>;
/// Shared handle to a stable half key (see
/// [`MapReduceQuery::with_half_key`]).
pub type HalfKeyFn<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;
/// Shared handle to a fused slice-fold kernel (see
/// [`MapReduceQuery::with_slice_fold`]). Arguments: the record run, the
/// physical half for queries without a half key, and the two per-half
/// accumulators to fold into.
pub type SliceFoldFn<T, Acc> = Arc<dyn Fn(&[T], usize, &mut [Option<Acc>; 2]) + Send + Sync>;

/// A query `f = finalize ∘ R ∘ M` over records of type `T`.
///
/// * `M : T → Acc` (the mapper, applied per record);
/// * `R : Acc × Acc → Acc` (the reducer — **must** be commutative and
///   associative; the engine and UPA both rely on it);
/// * `finalize : Option<Acc> → Out` (output projection — e.g. the model
///   update step of Linear Regression; receives `None` for an empty
///   dataset).
///
/// Cloning is cheap: the closures are shared through `Arc`s.
pub struct MapReduceQuery<T, Acc, Out> {
    name: String,
    map: MapFn<T, Acc>,
    reduce: ReduceFn<Acc>,
    finalize: FinalizeFn<Acc, Out>,
    half_key: Option<HalfKeyFn<T>>,
    slice_fold: Option<SliceFoldFn<T, Acc>>,
}

impl<T, Acc, Out> Clone for MapReduceQuery<T, Acc, Out> {
    fn clone(&self) -> Self {
        MapReduceQuery {
            name: self.name.clone(),
            map: Arc::clone(&self.map),
            reduce: Arc::clone(&self.reduce),
            finalize: Arc::clone(&self.finalize),
            half_key: self.half_key.clone(),
            slice_fold: self.slice_fold.clone(),
        }
    }
}

impl<T, Acc, Out> std::fmt::Debug for MapReduceQuery<T, Acc, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapReduceQuery")
            .field("name", &self.name)
            .finish()
    }
}

impl<T: Data, Acc: Data, Out: DpOutput> MapReduceQuery<T, Acc, Out> {
    /// Creates a query from its three components.
    pub fn new(
        name: impl Into<String>,
        map: impl Fn(&T) -> Acc + Send + Sync + 'static,
        reduce: impl Fn(&Acc, &Acc) -> Acc + Send + Sync + 'static,
        finalize: impl Fn(Option<&Acc>) -> Out + Send + Sync + 'static,
    ) -> Self {
        MapReduceQuery {
            name: name.into(),
            map: Arc::new(map),
            reduce: Arc::new(reduce),
            finalize: Arc::new(finalize),
            half_key: None,
            slice_fold: None,
        }
    }

    /// Attaches a **stable half key**: a content-derived key whose low bit
    /// assigns each record to one of RANGE ENFORCER's two logical dataset
    /// partitions `x1`/`x2` (the paper's `D1`/`D2`).
    ///
    /// The paper's enforcer compares a query's outputs on the two halves
    /// against previous queries to recognise a repeat on a *neighbouring*
    /// dataset. That comparison is only meaningful if a record keeps its
    /// half when other records are added or removed, so the assignment
    /// must depend on record **content** (a natural key such as
    /// `suppkey`, or a hash of the feature bits), not on physical
    /// position. Queries without a half key fall back to physical
    /// partition halves, which still enforce the output range but can
    /// miss repeats whose layout shifted.
    pub fn with_half_key(mut self, key: impl Fn(&T) -> u64 + Send + Sync + 'static) -> Self {
        self.half_key = Some(Arc::new(key));
        self
    }

    /// The stable half key, if one is attached.
    pub fn half_key(&self) -> Option<&HalfKeyFn<T>> {
        self.half_key.as_ref()
    }

    /// Attaches a **fused slice-fold kernel**: a monomorphic loop that
    /// folds an uninterrupted run of records into the two per-half
    /// accumulators in one call, instead of paying three dynamic
    /// dispatches (`half_key`, `map`, `reduce`) per record.
    ///
    /// The columnar prepare path calls the kernel once per run between
    /// sampled rows; every other path (and any run the kernel is absent
    /// for) goes through the generic closures, so the kernel is purely
    /// an optimisation hook.
    ///
    /// **Contract:** `kernel(slice, phys_half, acc)` must leave `acc`
    /// exactly as the generic composition would — for each record in
    /// order, pick half `h` as `half_key(x) % 2` (or `phys_half` when
    /// the query has no half key), then fold `map(x)` into `acc[h]`
    /// with `reduce` as a left fold. Same operations, same order:
    /// bit-identical floating-point results. A kernel that disagrees
    /// silently changes released values, so pair every kernel with an
    /// equivalence test against [`MapReduceQuery::fold_run_generic`].
    pub fn with_slice_fold(
        mut self,
        kernel: impl Fn(&[T], usize, &mut [Option<Acc>; 2]) + Send + Sync + 'static,
    ) -> Self {
        self.slice_fold = Some(Arc::new(kernel));
        self
    }

    /// The fused slice-fold kernel, if one is attached.
    pub fn slice_fold(&self) -> Option<&SliceFoldFn<T, Acc>> {
        self.slice_fold.as_ref()
    }

    /// Folds a record run through the generic closures — the reference
    /// semantics every [`MapReduceQuery::with_slice_fold`] kernel must
    /// reproduce bit for bit.
    pub fn fold_run_generic(&self, slice: &[T], phys_half: usize, acc: &mut [Option<Acc>; 2]) {
        for v in slice {
            let h = match self.half_key() {
                Some(hk) => (hk(v) % 2) as usize,
                None => phys_half,
            };
            let m = self.map(v);
            match &mut acc[h] {
                Some(a) => *a = self.reduce(a, &m),
                None => acc[h] = Some(m),
            }
        }
    }

    /// Folds a record run into `acc`, through the fused kernel when one
    /// is attached and the generic closures otherwise.
    pub fn fold_run(&self, slice: &[T], phys_half: usize, acc: &mut [Option<Acc>; 2]) {
        match &self.slice_fold {
            Some(kernel) => kernel(slice, phys_half, acc),
            None => self.fold_run_generic(slice, phys_half, acc),
        }
    }

    /// The query name (used in reports and benchmark output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the mapper to one record.
    pub fn map(&self, record: &T) -> Acc {
        (self.map)(record)
    }

    /// Combines two accumulators with the reducer.
    pub fn reduce(&self, a: &Acc, b: &Acc) -> Acc {
        (self.reduce)(a, b)
    }

    /// Merges two optional partial reductions.
    pub fn merge_opt(&self, a: Option<Acc>, b: Option<Acc>) -> Option<Acc> {
        match (a, b) {
            (Some(a), Some(b)) => Some(self.reduce(&a, &b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Merges two optional partial reductions **by reference**, cloning
    /// only when a single side is present. The pipeline's prefix/suffix
    /// reuse calls this O(n) times per release, so avoiding an
    /// accumulator clone per merge matters for vector-valued queries
    /// (histograms, gradient accumulators).
    pub fn merge_ref(&self, a: Option<&Acc>, b: Option<&Acc>) -> Option<Acc> {
        match (a, b) {
            (Some(a), Some(b)) => Some(self.reduce(a, b)),
            (Some(a), None) => Some(a.clone()),
            (None, b) => b.cloned(),
        }
    }

    /// Projects a final reduction to the query output.
    pub fn finalize(&self, acc: Option<&Acc>) -> Out {
        (self.finalize)(acc)
    }

    /// Reduces a slice of accumulators left to right.
    pub fn reduce_all(&self, accs: &[Acc]) -> Option<Acc> {
        let mut it = accs.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |a, b| self.reduce(&a, b)))
    }

    /// Evaluates the query sequentially over a record slice — the
    /// reference semantics used by tests and the brute-force ground truth.
    pub fn evaluate_slice(&self, records: &[T]) -> Out {
        let mut acc: Option<Acc> = None;
        for r in records {
            let m = self.map(r);
            acc = Some(match acc {
                Some(a) => self.reduce(&a, &m),
                None => m,
            });
        }
        self.finalize(acc.as_ref())
    }

    /// A shared handle to the mapper, for handing to engine stages.
    pub fn mapper(&self) -> MapFn<T, Acc> {
        Arc::clone(&self.map)
    }

    /// A shared handle to the reducer, for handing to engine stages.
    pub fn reducer(&self) -> ReduceFn<Acc> {
        Arc::clone(&self.reduce)
    }
}

impl<T: Data> MapReduceQuery<T, f64, f64> {
    /// Convenience constructor for scalar SUM-style queries: the reducer
    /// is `+` and the output is the sum itself (`0` for an empty input).
    /// Counting queries are sums of per-record indicator values.
    pub fn scalar_sum(
        name: impl Into<String>,
        map: impl Fn(&T) -> f64 + Send + Sync + 'static,
    ) -> Self {
        MapReduceQuery::new(name, map, |a, b| a + b, |acc| acc.copied().unwrap_or(0.0))
    }
}

impl<T: Data> MapReduceQuery<T, Vec<f64>, Vec<f64>> {
    /// A histogram query: per-bucket counts as a vector output, so UPA
    /// infers a per-bucket sensitivity and adds per-bucket noise — the
    /// classic DP histogram, expressed as a Map/Reduce decomposition.
    /// Records for which `bucket_of` returns `None` (or an out-of-range
    /// index) count toward no bucket.
    pub fn histogram(
        name: impl Into<String>,
        bins: usize,
        bucket_of: impl Fn(&T) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        MapReduceQuery::new(
            name,
            move |t: &T| {
                let mut counts = vec![0.0; bins];
                if let Some(b) = bucket_of(t) {
                    if b < bins {
                        counts[b] = 1.0;
                    }
                }
                counts
            },
            |a: &Vec<f64>, b: &Vec<f64>| a.iter().zip(b).map(|(x, y)| x + y).collect(),
            move |acc: Option<&Vec<f64>>| acc.cloned().unwrap_or_else(|| vec![0.0; bins]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sum_counts() {
        let q =
            MapReduceQuery::scalar_sum("count_even", |x: &i64| if x % 2 == 0 { 1.0 } else { 0.0 });
        let data: Vec<i64> = (0..10).collect();
        assert_eq!(q.evaluate_slice(&data), 5.0);
        assert_eq!(q.evaluate_slice(&[]), 0.0);
        assert_eq!(q.name(), "count_even");
    }

    #[test]
    fn vector_query_with_finalize() {
        // Mean vector: accumulate (sum, count), finalize divides.
        let q: MapReduceQuery<Vec<f64>, (Vec<f64>, u64), Vec<f64>> = MapReduceQuery::new(
            "mean_vec",
            |rec: &Vec<f64>| (rec.clone(), 1u64),
            |a, b| {
                (
                    a.0.iter().zip(b.0.iter()).map(|(x, y)| x + y).collect(),
                    a.1 + b.1,
                )
            },
            |acc| match acc {
                Some((sum, n)) => sum.iter().map(|s| s / *n as f64).collect(),
                None => Vec::new(),
            },
        );
        let data = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
        assert_eq!(q.evaluate_slice(&data), vec![2.0, 20.0]);
    }

    #[test]
    fn merge_opt_handles_absence() {
        let q = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        assert_eq!(q.merge_opt(None, None), None);
        assert_eq!(q.merge_opt(Some(1.0), None), Some(1.0));
        assert_eq!(q.merge_opt(None, Some(2.0)), Some(2.0));
        assert_eq!(q.merge_opt(Some(1.0), Some(2.0)), Some(3.0));
    }

    #[test]
    fn merge_ref_matches_merge_opt() {
        let q = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        assert_eq!(q.merge_ref(None, None), None);
        assert_eq!(q.merge_ref(Some(&1.0), None), Some(1.0));
        assert_eq!(q.merge_ref(None, Some(&2.0)), Some(2.0));
        assert_eq!(q.merge_ref(Some(&1.0), Some(&2.0)), Some(3.0));
    }

    #[test]
    fn reduce_all_matches_iterated_reduce() {
        let q = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        assert_eq!(q.reduce_all(&[1.0, 2.0, 3.0]), Some(6.0));
        assert_eq!(q.reduce_all(&[]), None);
    }

    #[test]
    fn clone_shares_closures() {
        let q = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let q2 = q.clone();
        assert_eq!(q2.evaluate_slice(&[1.0, 2.0]), 3.0);
        assert_eq!(q2.name(), "sum");
    }

    #[test]
    fn histogram_counts_buckets() {
        let q = MapReduceQuery::histogram("ages", 3, |age: &f64| Some((*age as usize) / 30));
        let data = vec![5.0, 25.0, 35.0, 65.0, 95.0];
        // Buckets: [0,30) -> 2, [30,60) -> 1, [60,90) -> 1; 95 maps to
        // bucket 3 which is out of range and dropped.
        assert_eq!(q.evaluate_slice(&data), vec![2.0, 1.0, 1.0]);
        assert_eq!(q.evaluate_slice(&[]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn histogram_none_counts_nowhere() {
        let q =
            MapReduceQuery::histogram(
                "opt",
                2,
                |x: &i64| {
                    if *x >= 0 {
                        Some(*x as usize % 2)
                    } else {
                        None
                    }
                },
            );
        assert_eq!(q.evaluate_slice(&[-5, 0, 1, 2]), vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = MapReduceQuery::histogram("bad", 0, |_: &f64| Some(0));
    }
}
