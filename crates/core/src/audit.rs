//! Per-query audit records — `EXPLAIN ANALYZE` for the UPA pipeline.
//!
//! Every successful release ([`crate::Upa::run`], [`crate::Upa::release`],
//! [`crate::Upa::run_join`]) produces a [`QueryAudit`]: where the wall
//! clock went (one [`StageSpan`] per Algorithm 1 phase), what the engine
//! did (stages, shuffles, shuffle bytes, retries), what RANGE ENFORCER
//! decided, and what the release cost in privacy budget. Scalable DP
//! query systems treat per-query cost/budget accounting as a first-class
//! output; the audit is this reproduction's version of that, and the
//! substrate later performance work is measured against.
//!
//! The record is retrievable from [`crate::Upa::last_audit`] /
//! [`crate::api::DpSession::last_audit`], rendered by `upa-cli --stats`,
//! and serialised to JSON by the bench harness (`stage_audit` binary).

use dataflow::{MetricsSnapshot, StageSpan};

/// The audit record of one released query.
#[derive(Debug, Clone)]
pub struct QueryAudit {
    /// The query name (from [`crate::query::MapReduceQuery::name`]).
    pub query: String,
    /// Privacy budget ε charged for this release.
    pub epsilon: f64,
    /// Budget remaining after the charge, when an accountant is attached.
    pub budget_remaining: Option<f64>,
    /// Per-component inferred local sensitivity.
    pub sensitivity: Vec<f64>,
    /// The enforced output range `Ô_f`, per component.
    pub range: Vec<(f64, f64)>,
    /// Whether RANGE ENFORCER clamped the output into the range.
    pub clamped: bool,
    /// Whether a repeated query on a neighbouring dataset was suspected.
    pub attack_detected: bool,
    /// Records removed by RANGE ENFORCER to separate the datasets.
    pub removed_records: usize,
    /// Effective sample size `n`.
    pub sample_size: usize,
    /// Group size `g` (1 = the paper's iDP setting).
    pub group_size: usize,
    /// Stage spans in completion order (a child scope closes before its
    /// parent, so children precede parents).
    pub spans: Vec<StageSpan>,
    /// Engine counters attributable to this query. Counters are
    /// per-[`dataflow::Context`], so sessions sharing one context see
    /// each other's stages in this delta.
    pub engine: MetricsSnapshot,
    /// Total wall-clock nanoseconds across the root stage spans.
    pub total_nanos: u64,
}

impl QueryAudit {
    /// Cumulative nanoseconds of every span whose *leaf* name is `name`
    /// (e.g. `"sample"` matches `prepare/sample`), or 0 when absent.
    pub fn stage_nanos(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.nanos)
            .sum()
    }

    /// The spans re-rooted under `prefix` (each path becomes
    /// `prefix/path`, depth + 1), for grafting the engine's stage tree
    /// under an outer trace — e.g. a server request trace.
    pub fn spans_rebased(&self, prefix: &str) -> Vec<StageSpan> {
        self.spans.iter().map(|s| s.rebased(prefix)).collect()
    }

    /// The spans reordered depth-first, parents before children, for
    /// display. Recorded order is completion order (children first).
    fn display_order(&self) -> Vec<&StageSpan> {
        fn emit<'a>(span: &'a StageSpan, all: &'a [StageSpan], out: &mut Vec<&'a StageSpan>) {
            out.push(span);
            let prefix = format!("{}/", span.path);
            for child in all
                .iter()
                .filter(|c| c.depth == span.depth + 1 && c.path.starts_with(&prefix))
            {
                emit(child, all, out);
            }
        }
        let mut out = Vec::new();
        for root in self.spans.iter().filter(|s| s.depth == 0) {
            emit(root, &self.spans, &mut out);
        }
        out
    }

    /// Renders the audit as an `EXPLAIN ANALYZE`-style report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Query: {}  (ε = {}, n = {}, g = {})\n",
            self.query, self.epsilon, self.sample_size, self.group_size
        ));
        out.push_str(&format!("  total: {}\n", fmt_ms(self.total_nanos)));
        out.push_str(&format!(
            "  sensitivity: {:?}\n  range: {:?}\n",
            self.sensitivity, self.range
        ));
        out.push_str(&format!(
            "  enforcer: attack={} removed={} clamped={}\n",
            yn(self.attack_detected),
            self.removed_records,
            yn(self.clamped)
        ));
        match self.budget_remaining {
            Some(rem) => out.push_str(&format!("  budget remaining: {rem}\n")),
            None => out.push_str("  budget remaining: (no accountant)\n"),
        }
        out.push_str("  stages:\n");
        for span in self.display_order() {
            let indent = "  ".repeat(span.depth + 2);
            let mut line = format!("{indent}{:<24}{:>12}", span.name, fmt_ms(span.nanos));
            if span.records > 0 {
                line.push_str(&format!("  {} records", span.records));
            }
            if span.calls > 1 {
                line.push_str(&format!("  ({} calls)", span.calls));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!("  engine: {}\n", self.engine));
        out
    }

    /// Serialises the audit as a JSON object (hand-rolled; this workspace
    /// deliberately has no serde dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"query\":{},", json_str(&self.query)));
        s.push_str(&format!("\"epsilon\":{},", json_num(self.epsilon)));
        match self.budget_remaining {
            Some(rem) => s.push_str(&format!("\"budget_remaining\":{},", json_num(rem))),
            None => s.push_str("\"budget_remaining\":null,"),
        }
        s.push_str(&format!(
            "\"sensitivity\":[{}],",
            self.sensitivity
                .iter()
                .map(|v| json_num(*v))
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!(
            "\"range\":[{}],",
            self.range
                .iter()
                .map(|(lo, hi)| format!("[{},{}]", json_num(*lo), json_num(*hi)))
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!("\"clamped\":{},", self.clamped));
        s.push_str(&format!("\"attack_detected\":{},", self.attack_detected));
        s.push_str(&format!("\"removed_records\":{},", self.removed_records));
        s.push_str(&format!("\"sample_size\":{},", self.sample_size));
        s.push_str(&format!("\"group_size\":{},", self.group_size));
        s.push_str(&format!("\"total_nanos\":{},", self.total_nanos));
        s.push_str(&format!(
            "\"spans\":[{}],",
            self.display_order()
                .iter()
                .map(|sp| {
                    format!(
                        "{{\"name\":{},\"path\":{},\"depth\":{},\"nanos\":{},\"records\":{},\"calls\":{}}}",
                        json_str(&sp.name),
                        json_str(&sp.path),
                        sp.depth,
                        sp.nanos,
                        sp.records,
                        sp.calls
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!(
            "\"engine\":{{\"stages\":{},\"tasks\":{},\"task_retries\":{},\"shuffles\":{},\"shuffle_records\":{},\"shuffle_bytes\":{},\"records_processed\":{}}}",
            self.engine.stages,
            self.engine.tasks,
            self.engine.task_retries,
            self.engine.shuffles,
            self.engine.shuffle_records,
            self.engine.shuffle_bytes,
            self.engine.records_processed
        ));
        s.push('}');
        s
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3} ms", nanos as f64 / 1e6)
}

/// JSON string literal with escaping for quotes, backslashes and control
/// characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite floats (which JSON cannot represent) become
/// `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, path: &str, depth: usize, nanos: u64) -> StageSpan {
        StageSpan {
            name: name.to_string(),
            path: path.to_string(),
            depth,
            nanos,
            records: 0,
            calls: 1,
        }
    }

    fn sample_audit() -> QueryAudit {
        QueryAudit {
            query: "count".to_string(),
            epsilon: 0.1,
            budget_remaining: Some(0.9),
            sensitivity: vec![2.0],
            range: vec![(10.0, 20.0)],
            clamped: true,
            attack_detected: false,
            removed_records: 0,
            sample_size: 100,
            group_size: 1,
            spans: vec![
                span("sample", "prepare/sample", 1, 50),
                span("map", "prepare/map", 1, 60),
                span("prepare", "prepare", 0, 200),
                span("enforce", "release/enforce", 1, 10),
                span("release", "release", 0, 40),
            ],
            engine: MetricsSnapshot {
                stages: 3,
                tasks: 12,
                task_retries: 0,
                shuffles: 1,
                shuffle_records: 500,
                shuffle_bytes: 4000,
                records_processed: 1000,
            },
            total_nanos: 240,
        }
    }

    #[test]
    fn stage_nanos_sums_by_leaf_name() {
        let a = sample_audit();
        assert_eq!(a.stage_nanos("sample"), 50);
        assert_eq!(a.stage_nanos("enforce"), 10);
        assert_eq!(a.stage_nanos("missing"), 0);
    }

    #[test]
    fn render_orders_parents_before_children() {
        let a = sample_audit();
        let text = a.render();
        let prepare = text.find("prepare").expect("prepare span shown");
        let sample = text.find("sample").expect("sample span shown");
        assert!(prepare < sample, "parent precedes child in {text}");
        assert!(text.contains("Query: count"));
        assert!(text.contains("attack=no"));
        assert!(text.contains("clamped=yes"));
        assert!(text.contains("shuffle_bytes=4000"));
    }

    #[test]
    fn json_has_expected_fields() {
        let a = sample_audit();
        let json = a.to_json();
        for needle in [
            "\"query\":\"count\"",
            "\"epsilon\":0.1",
            "\"budget_remaining\":0.9",
            "\"sensitivity\":[2]",
            "\"range\":[[10,20]]",
            "\"clamped\":true",
            "\"attack_detected\":false",
            "\"sample_size\":100",
            "\"shuffle_bytes\":4000",
            "\"path\":\"prepare/sample\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_escapes_and_handles_non_finite() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(1.5), "1.5");
        let mut a = sample_audit();
        a.budget_remaining = None;
        a.range = vec![(f64::NEG_INFINITY, f64::INFINITY)];
        let json = a.to_json();
        assert!(json.contains("\"budget_remaining\":null"));
        assert!(json.contains("\"range\":[[null,null]]"));
    }
}
