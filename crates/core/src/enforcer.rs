//! RANGE ENFORCER — the paper's Algorithm 2.
//!
//! UPA's inferred local sensitivity is estimated from *sampled* neighbour
//! outputs, so by itself it may under-estimate the true local sensitivity.
//! RANGE ENFORCER restores the iDP guarantee (§IV-C) by:
//!
//! 1. detecting whether the current query is a repeat of a previously
//!    answered query on a *neighbouring* dataset — the attack in UPA's
//!    threat model. Detection compares the query's outputs on the two
//!    logical partitions of its input against every previous query's
//!    partition outputs: if **fewer than two** partition outputs differ,
//!    the inputs may differ by a single record;
//! 2. when an attack is suspected, removing two records at a time from the
//!    sampled set and recomputing the partition outputs until both differ
//!    from the suspicious previous query (forcing the datasets to be
//!    non-neighbouring);
//! 3. constraining the final output into the inferred output range `Ô_f`,
//!    replacing any out-of-range component with a uniform draw from the
//!    range (Algorithm 2, lines 17–18). This clamping is what makes the
//!    inferred sensitivity a *sound* upper bound: after clamping, no two
//!    neighbouring outputs can differ by more than `max(Ô_f) − min(Ô_f)`.

use crate::output::OutputRange;
use dataflow::SpanRecorder;
use rand::rngs::StdRng;

/// The per-query record RANGE ENFORCER keeps: the query's output on each
/// of the two logical partitions of its input dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySignature {
    /// Output components on partition `x1` and `x2`.
    pub partition_outputs: [Vec<f64>; 2],
}

/// Mutable view of an in-flight query that RANGE ENFORCER can manipulate.
///
/// The pipeline implements this; Algorithm 2 needs to (re)read partition
/// outputs, drop sampled records and recompute.
pub trait EnforceState {
    /// Current output components on the two logical partitions.
    fn partition_outputs(&self) -> [Vec<f64>; 2];

    /// Removes two records from the sampled set — one from **each**
    /// logical partition, so that both partition outputs move away from
    /// the suspicious previous query — and recomputes partition outputs
    /// and the final output. Returns `false` when no more records can be
    /// removed (the enforcer then gives up on separating further — with a
    /// 1000-record sample this is unreachable in practice).
    fn remove_two_records(&mut self) -> bool;

    /// Current final output components.
    fn output_components(&self) -> Vec<f64>;

    /// Overwrites the final output components (range clamping).
    fn set_output_components(&mut self, components: Vec<f64>);
}

/// What RANGE ENFORCER did to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnforceOutcome {
    /// Records removed to break suspected neighbouring inputs.
    pub removed_records: usize,
    /// Whether the final output was clamped into the range.
    pub clamped: bool,
    /// Whether any previous query looked like the same query on a
    /// neighbouring dataset.
    pub attack_suspected: bool,
}

/// The stateful enforcer; one per UPA deployment (it must observe every
/// query answered from the protected datasets).
#[derive(Debug, Default)]
pub struct RangeEnforcer {
    history: Vec<QuerySignature>,
}

/// Component comparison with a tight relative tolerance.
///
/// The paper compares partition outputs exactly; this reproduction's
/// pipeline folds partial reductions in an order that depends on the
/// random sample, so two evaluations of the *same* partition can differ in
/// the last few ULPs. A relative tolerance of `1e-9` (absolute `1e-12`)
/// absorbs that float jitter while still distinguishing any real
/// one-record change, which is many orders of magnitude larger for every
/// evaluated query.
fn component_eq(x: f64, y: f64) -> bool {
    let diff = (x - y).abs();
    diff <= 1e-12 || diff <= 1e-9 * x.abs().max(y.abs())
}

fn vec_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| component_eq(*x, *y))
}

impl RangeEnforcer {
    /// Creates an enforcer with empty history.
    pub fn new() -> Self {
        RangeEnforcer::default()
    }

    /// Number of queries recorded so far.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Runs Algorithm 2 on an in-flight query and records its signature.
    pub fn enforce<S: EnforceState>(
        &mut self,
        state: &mut S,
        range: &OutputRange,
        rng: &mut StdRng,
    ) -> EnforceOutcome {
        self.enforce_traced(state, range, rng, &SpanRecorder::new())
    }

    /// [`RangeEnforcer::enforce`] with stage timing: the detection loop is
    /// recorded as an `enforce` span (its record count is the number of
    /// removed records) and the range constraint as a `clamp` span, nested
    /// under whatever scope is open on `spans`. The pipeline passes its
    /// per-query recorder so audits break the enforcer's cost out.
    pub fn enforce_traced<S: EnforceState>(
        &mut self,
        state: &mut S,
        range: &OutputRange,
        rng: &mut StdRng,
        spans: &SpanRecorder,
    ) -> EnforceOutcome {
        let mut outcome = EnforceOutcome::default();

        // Lines 2–15: compare against every previous query; force at least
        // two differing partition outputs.
        {
            let mut scope = spans.enter("enforce");
            for prior in &self.history {
                loop {
                    let current = state.partition_outputs();
                    let diff_num = current
                        .iter()
                        .zip(prior.partition_outputs.iter())
                        .filter(|(c, p)| !vec_eq(c, p))
                        .count();
                    if diff_num >= 2 {
                        break;
                    }
                    outcome.attack_suspected = true;
                    if !state.remove_two_records() {
                        // Sample exhausted; stop separating (outputs are still
                        // range-clamped below, so the release stays within Ô_f).
                        break;
                    }
                    outcome.removed_records += 2;
                }
            }
            scope.add_records(outcome.removed_records as u64);
        }

        // Lines 16–18: constrain the final output into Ô_f.
        {
            let _scope = spans.enter("clamp");
            let mut components = state.output_components();
            outcome.clamped = range.constrain(&mut components, rng);
            state.set_output_components(components);
        }

        // Lines 19–21: record this query's partition outputs.
        self.history.push(QuerySignature {
            partition_outputs: state.partition_outputs(),
        });
        outcome
    }

    /// Records a query signature without running the separation loop.
    ///
    /// Used for *cached* re-releases of an already-enforced query: the
    /// partition outputs are byte-identical to the recorded first
    /// release, so the loop in [`RangeEnforcer::enforce`] could only
    /// flag the query against its own history and mangle a legitimate
    /// repeat. The signature is still recorded so genuinely new queries
    /// keep being compared against every answered release.
    pub fn record(&mut self, signature: QuerySignature) {
        self.history.push(signature);
    }

    /// The most recently recorded signature (what the release that just
    /// ran pushed), if any.
    pub fn last_signature(&self) -> Option<&QuerySignature> {
        self.history.last()
    }

    /// Clears the history (test/bench helper; production deployments must
    /// never clear it).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A toy state over a vector of numbers: partitions are the two
    /// halves, output is the sum, sampled-record removal pops from the
    /// first half.
    struct SumState {
        half1: Vec<f64>,
        half2: Vec<f64>,
        output: Vec<f64>,
    }

    impl SumState {
        fn new(half1: Vec<f64>, half2: Vec<f64>) -> Self {
            let output = vec![half1.iter().sum::<f64>() + half2.iter().sum::<f64>()];
            SumState {
                half1,
                half2,
                output,
            }
        }
    }

    impl EnforceState for SumState {
        fn partition_outputs(&self) -> [Vec<f64>; 2] {
            [
                vec![self.half1.iter().sum::<f64>()],
                vec![self.half2.iter().sum::<f64>()],
            ]
        }
        fn remove_two_records(&mut self) -> bool {
            if self.half1.is_empty() || self.half2.is_empty() {
                return false;
            }
            self.half1.pop();
            self.half2.pop();
            self.output = vec![self.half1.iter().sum::<f64>() + self.half2.iter().sum::<f64>()];
            true
        }
        fn output_components(&self) -> Vec<f64> {
            self.output.clone()
        }
        fn set_output_components(&mut self, components: Vec<f64>) {
            self.output = components;
        }
    }

    fn wide_range() -> OutputRange {
        OutputRange::new(vec![(f64::NEG_INFINITY, f64::INFINITY)])
    }

    #[test]
    fn first_query_passes_untouched() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = SumState::new(vec![1.0, 2.0], vec![3.0]);
        let out = enforcer.enforce(&mut state, &wide_range(), &mut rng);
        assert_eq!(out.removed_records, 0);
        assert!(!out.attack_suspected);
        assert_eq!(enforcer.history_len(), 1);
        assert_eq!(state.output_components(), vec![6.0]);
    }

    #[test]
    fn disjoint_queries_are_not_attacks() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut q1 = SumState::new(vec![1.0, 2.0], vec![3.0]);
        enforcer.enforce(&mut q1, &wide_range(), &mut rng);
        // Both partitions differ: not neighbouring.
        let mut q2 = SumState::new(vec![10.0, 20.0], vec![30.0]);
        let out = enforcer.enforce(&mut q2, &wide_range(), &mut rng);
        assert!(!out.attack_suspected);
        assert_eq!(out.removed_records, 0);
    }

    #[test]
    fn neighbouring_repeat_triggers_removal() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut q1 = SumState::new(vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0]);
        enforcer.enforce(&mut q1, &wide_range(), &mut rng);
        // Same second half (partition output equal) and first half
        // differing by one record: the attack case.
        let mut q2 = SumState::new(vec![1.0, 2.0, 3.0], vec![5.0, 6.0]);
        let out = enforcer.enforce(&mut q2, &wide_range(), &mut rng);
        assert!(out.attack_suspected);
        assert!(out.removed_records >= 2);
        // After enforcement, both partition outputs differ from q1's.
        let sig1 = [vec![10.0], vec![11.0]];
        let cur = q2.partition_outputs();
        let diff = cur
            .iter()
            .zip(sig1.iter())
            .filter(|(c, p)| !vec_eq(c, p))
            .count();
        assert_eq!(diff, 2);
    }

    #[test]
    fn component_comparison_tolerates_float_jitter() {
        assert!(component_eq(1.0e6, 1.0e6 + 1e-5));
        assert!(!component_eq(100.0, 101.0));
        assert!(component_eq(0.0, 0.0));
        assert!(component_eq(0.0, 1e-13));
        assert!(!component_eq(0.0, 1.0));
    }

    #[test]
    fn clamping_pulls_output_into_range() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = SumState::new(vec![100.0], vec![200.0]);
        let range = OutputRange::new(vec![(0.0, 10.0)]);
        let out = enforcer.enforce(&mut state, &range, &mut rng);
        assert!(out.clamped);
        let v = state.output_components()[0];
        assert!((0.0..=10.0).contains(&v));
    }

    #[test]
    fn exhausted_sample_stops_gracefully() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut q1 = SumState::new(Vec::new(), Vec::new());
        enforcer.enforce(&mut q1, &wide_range(), &mut rng);
        // Identical query with nothing left to remove: the enforcer must
        // stop gracefully rather than loop.
        let mut q2 = SumState::new(Vec::new(), Vec::new());
        let out = enforcer.enforce(&mut q2, &wide_range(), &mut rng);
        assert!(out.attack_suspected);
        assert_eq!(out.removed_records, 0);
        assert_eq!(enforcer.history_len(), 2);
    }

    #[test]
    fn enforce_traced_records_enforce_and_clamp_spans() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = SumState::new(vec![1.0], vec![2.0]);
        let spans = SpanRecorder::new();
        enforcer.enforce_traced(&mut state, &wide_range(), &mut rng, &spans);
        assert!(spans.nanos_of("enforce") >= 1);
        assert!(spans.nanos_of("clamp") >= 1);
    }

    #[test]
    fn reset_clears_history() {
        let mut enforcer = RangeEnforcer::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut q = SumState::new(vec![1.0], vec![2.0]);
        enforcer.enforce(&mut q, &wide_range(), &mut rng);
        enforcer.reset();
        assert_eq!(enforcer.history_len(), 0);
    }
}
