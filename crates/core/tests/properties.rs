//! Property-based tests of UPA's soundness invariants.

use dataflow::Context;
use proptest::prelude::*;
use upa_core::domain::EmpiricalSampler;
use upa_core::query::MapReduceQuery;
use upa_core::{DpOutput, Upa, UpaConfig};

fn ctx() -> Context {
    Context::with_threads(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The enforced output always lies inside the inferred range — the
    /// prerequisite of the §IV-C iDP proof — for arbitrary data,
    /// partitionings and seeds.
    #[test]
    fn enforced_output_always_in_range(
        values in prop::collection::vec(-1000.0f64..1000.0, 2..300),
        partitions in 1usize..6,
        sample_size in 2usize..64,
        seed in 0u64..500,
    ) {
        let c = ctx();
        let ds = c.parallelize(values.clone(), partitions);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x)
            .with_half_key(|x: &f64| x.to_bits());
        let domain = EmpiricalSampler::new(values);
        let mut upa = Upa::new(
            c.clone(),
            UpaConfig { sample_size, seed, add_noise: false, ..UpaConfig::default() },
        );
        let r = upa.run(&ds, &query, &domain).unwrap();
        prop_assert!(r.range.contains(&r.enforced.components()));
        prop_assert!(r.sensitivity.iter().all(|s| *s >= 0.0 && s.is_finite()));
        prop_assert!(r.max_empirical_sensitivity() <= r.max_sensitivity() + 1e-9,
            "the enforced width dominates the observed neighbour spread");
    }

    /// Sensitivity of a scaled query scales linearly (Laplace mechanism
    /// equivariance through the whole pipeline).
    #[test]
    fn sensitivity_is_scale_equivariant(
        values in prop::collection::vec(0.0f64..100.0, 10..200),
        factor in 1.0f64..50.0,
        seed in 0u64..100,
    ) {
        let c = ctx();
        let ds = c.parallelize(values.clone(), 4);
        let domain = EmpiricalSampler::new(values);
        let config = UpaConfig { sample_size: 32, seed, add_noise: false, ..UpaConfig::default() };
        let base = MapReduceQuery::scalar_sum("sum", |x: &f64| *x)
            .with_half_key(|x: &f64| x.to_bits());
        let scaled = MapReduceQuery::scalar_sum("sum_scaled", move |x: &f64| *x * factor)
            .with_half_key(|x: &f64| x.to_bits());
        let mut u1 = Upa::new(c.clone(), config.clone());
        let mut u2 = Upa::new(c.clone(), config);
        let r1 = u1.run(&ds, &base, &domain).unwrap();
        let r2 = u2.run(&ds, &scaled, &domain).unwrap();
        // Same seed → same sample → exactly proportional estimates.
        prop_assert!((r2.max_empirical_sensitivity() - factor * r1.max_empirical_sensitivity()).abs()
            <= 1e-6 * (1.0 + r2.max_empirical_sensitivity()));
    }

    /// Repeated enforcement over many random queries never loops and the
    /// history grows by exactly one entry per query.
    #[test]
    fn enforcer_history_grows_linearly(
        datasets in prop::collection::vec(
            prop::collection::vec(0.0f64..50.0, 4..60),
            1..6
        ),
        seed in 0u64..100,
    ) {
        let c = ctx();
        let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0)
            .with_half_key(|x: &f64| x.to_bits());
        let mut upa = Upa::new(
            c.clone(),
            UpaConfig { sample_size: 8, seed, add_noise: false, ..UpaConfig::default() },
        );
        let total = datasets.len();
        for values in datasets {
            let domain = EmpiricalSampler::new(values.clone());
            let ds = c.parallelize(values, 2);
            let _ = upa.run(&ds, &query, &domain).unwrap();
        }
        prop_assert_eq!(upa.enforcer().history_len(), total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The columnar scan path releases bit-identical results to the row
    /// path on arbitrary chunked datasets — NaN/±inf payloads and
    /// single-record chunks included — with and without a stable half
    /// key. Chunk layout must never leak into results: fold boundaries
    /// come from the logical slab ranges, not from the chunks.
    #[test]
    fn columnar_release_is_bit_identical_to_row(
        base_values in prop::collection::vec(-1000.0f64..1000.0, 1..200),
        cuts in prop::collection::vec(1usize..16, 1..24),
        sample_size in 1usize..48,
        seed in 0u64..500,
        threads in 1usize..4,
        half_key in 0usize..2,
        salt in 0usize..17,
    ) {
        // Splice NaN/±inf payloads in at salt-derived positions — the
        // stub proptest has no weighted unions, so specials are injected
        // deterministically from the generated inputs.
        let mut values = base_values;
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        for (i, v) in values.iter_mut().enumerate() {
            if (i + salt) % 13 == 0 && salt % 3 != 0 {
                *v = specials[(i + salt) % specials.len()];
            }
        }
        let half_key = half_key == 1;
        use dataflow::columnar::{ColumnChunk, ColumnarBuf, ColumnarDataset};
        use std::sync::Arc as StdArc;
        use upa_core::domain::ColumnarEmpiricalSampler;

        let c = Context::with_threads(threads);
        let config = UpaConfig { sample_size, seed, add_noise: false, ..UpaConfig::default() };
        let base = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let query = if half_key {
            base.with_half_key(|x: &f64| x.to_bits())
        } else {
            base
        };

        // Row path: the values as one flat buffer, engine-default slabs.
        let ds = c.parallelize_default(values.clone());
        let mut u_row = Upa::new(c.clone(), config.clone());
        let r_row = u_row.run(&ds, &query, &EmpiricalSampler::new(values.clone()));

        // Columnar path: the same values split at arbitrary points —
        // `cuts` cycles, so layouts include runs of single-record chunks.
        let mut chunks = Vec::new();
        let mut at = 0usize;
        let mut i = 0usize;
        while at < values.len() {
            let len = cuts[i % cuts.len()].min(values.len() - at);
            chunks.push(ColumnChunk::with_stats(StdArc::from(
                values[at..at + len].to_vec(),
            )));
            at += len;
            i += 1;
        }
        let buf = ColumnarBuf::new(chunks);
        prop_assert_eq!(buf.len(), values.len());
        let data = ColumnarDataset::new(&c, buf.clone());
        let mut u_col = Upa::new(c.clone(), config);
        let r_col = u_col.run_columnar(&data, &query, &ColumnarEmpiricalSampler::new(buf));

        match (r_row, r_col) {
            (Ok(r_row), Ok(r_col)) => {
                prop_assert_eq!(r_col.released.to_bits(), r_row.released.to_bits());
                prop_assert_eq!(r_col.enforced.to_bits(), r_row.enforced.to_bits());
                prop_assert_eq!(r_col.raw.to_bits(), r_row.raw.to_bits());
                prop_assert_eq!(r_col.sample_size, r_row.sample_size);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&r_col.sensitivity), bits(&r_row.sensitivity));
                prop_assert_eq!(
                    bits(&r_col.empirical_sensitivity),
                    bits(&r_row.empirical_sensitivity)
                );
                prop_assert_eq!(bits(&r_col.removal_outputs), bits(&r_row.removal_outputs));
                prop_assert_eq!(bits(&r_col.addition_outputs), bits(&r_row.addition_outputs));
            }
            // Non-finite payloads can make the sensitivity fit refuse the
            // release — legitimately. The paths must still agree on it.
            (Err(row_err), Err(col_err)) => {
                prop_assert_eq!(col_err.to_string(), row_err.to_string());
            }
            (row, col) => {
                prop_assert!(false, "paths diverge: row {:?} vs columnar {:?}", row, col);
            }
        }
    }
}
