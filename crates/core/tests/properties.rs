//! Property-based tests of UPA's soundness invariants.

use dataflow::Context;
use proptest::prelude::*;
use upa_core::domain::EmpiricalSampler;
use upa_core::query::MapReduceQuery;
use upa_core::{DpOutput, Upa, UpaConfig};

fn ctx() -> Context {
    Context::with_threads(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The enforced output always lies inside the inferred range — the
    /// prerequisite of the §IV-C iDP proof — for arbitrary data,
    /// partitionings and seeds.
    #[test]
    fn enforced_output_always_in_range(
        values in prop::collection::vec(-1000.0f64..1000.0, 2..300),
        partitions in 1usize..6,
        sample_size in 2usize..64,
        seed in 0u64..500,
    ) {
        let c = ctx();
        let ds = c.parallelize(values.clone(), partitions);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x)
            .with_half_key(|x: &f64| x.to_bits());
        let domain = EmpiricalSampler::new(values);
        let mut upa = Upa::new(
            c.clone(),
            UpaConfig { sample_size, seed, add_noise: false, ..UpaConfig::default() },
        );
        let r = upa.run(&ds, &query, &domain).unwrap();
        prop_assert!(r.range.contains(&r.enforced.components()));
        prop_assert!(r.sensitivity.iter().all(|s| *s >= 0.0 && s.is_finite()));
        prop_assert!(r.max_empirical_sensitivity() <= r.max_sensitivity() + 1e-9,
            "the enforced width dominates the observed neighbour spread");
    }

    /// Sensitivity of a scaled query scales linearly (Laplace mechanism
    /// equivariance through the whole pipeline).
    #[test]
    fn sensitivity_is_scale_equivariant(
        values in prop::collection::vec(0.0f64..100.0, 10..200),
        factor in 1.0f64..50.0,
        seed in 0u64..100,
    ) {
        let c = ctx();
        let ds = c.parallelize(values.clone(), 4);
        let domain = EmpiricalSampler::new(values);
        let config = UpaConfig { sample_size: 32, seed, add_noise: false, ..UpaConfig::default() };
        let base = MapReduceQuery::scalar_sum("sum", |x: &f64| *x)
            .with_half_key(|x: &f64| x.to_bits());
        let scaled = MapReduceQuery::scalar_sum("sum_scaled", move |x: &f64| *x * factor)
            .with_half_key(|x: &f64| x.to_bits());
        let mut u1 = Upa::new(c.clone(), config.clone());
        let mut u2 = Upa::new(c.clone(), config);
        let r1 = u1.run(&ds, &base, &domain).unwrap();
        let r2 = u2.run(&ds, &scaled, &domain).unwrap();
        // Same seed → same sample → exactly proportional estimates.
        prop_assert!((r2.max_empirical_sensitivity() - factor * r1.max_empirical_sensitivity()).abs()
            <= 1e-6 * (1.0 + r2.max_empirical_sensitivity()));
    }

    /// Repeated enforcement over many random queries never loops and the
    /// history grows by exactly one entry per query.
    #[test]
    fn enforcer_history_grows_linearly(
        datasets in prop::collection::vec(
            prop::collection::vec(0.0f64..50.0, 4..60),
            1..6
        ),
        seed in 0u64..100,
    ) {
        let c = ctx();
        let query = MapReduceQuery::scalar_sum("count", |_x: &f64| 1.0)
            .with_half_key(|x: &f64| x.to_bits());
        let mut upa = Upa::new(
            c.clone(),
            UpaConfig { sample_size: 8, seed, add_noise: false, ..UpaConfig::default() },
        );
        let total = datasets.len();
        for values in datasets {
            let domain = EmpiricalSampler::new(values.clone());
            let ds = c.parallelize(values, 2);
            let _ = upa.run(&ds, &query, &domain).unwrap();
        }
        prop_assert_eq!(upa.enforcer().history_len(), total);
    }
}
