//! Timing and table-formatting helpers for the reproduction binaries.

use std::time::Instant;

/// Runs `f`, returning its result and the elapsed milliseconds.
pub fn time_millis<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Runs `f` `reps` times, returning the last result and the **median**
/// elapsed milliseconds (robust to warm-up noise).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(reps > 0, "need at least one repetition");
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (out, ms) = time_millis(&mut f);
        times.push(ms);
        last = Some(out);
    }
    times.sort_by(f64::total_cmp);
    (last.expect("reps > 0"), times[times.len() / 2])
}

/// A plain-text table printer with right-padded columns.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Scientific notation with three significant digits, `"n/a"` for `None`.
pub fn sci(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.3e}"),
        None => "n/a".to_string(),
    }
}

/// Percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["query", "value"]);
        t.row(vec!["TPCH1".into(), "1.0".into()]);
        t.row(vec!["LinearRegression".into(), "0.5".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[3].starts_with("LinearRegression"));
        // All value cells start at the same column.
        let col = lines[2].find("1.0").unwrap();
        assert_eq!(lines[3].find("0.5").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn timing_returns_positive_duration() {
        let (v, ms) = time_millis(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(ms >= 4.0);
        let (_, med) = time_median(3, || ());
        assert!(med >= 0.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(sci(None), "n/a");
        assert!(sci(Some(12345.0)).contains('e'));
        assert_eq!(pct(0.5), "50.00%");
    }
}
