//! Timing, table-formatting and report-emission helpers for the
//! reproduction binaries.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Schema version stamped into every `BENCH_*.json` document. Bump when
/// the wrapper shape (not an individual experiment's payload) changes.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Every file written through [`write_bench_json`] this process, in
/// emission order.
static EMITTED: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Writes one bench report as JSON. Every machine-readable artefact the
/// harness emits goes through here so they all share one wrapper:
///
/// ```json
/// {"schema_version": 1, "report": "<name>", "data": <body>}
/// ```
///
/// `name` is the report's upper-snake tag (e.g. `STAGES`): the file is
/// `BENCH_<name>.json` unless `UPA_BENCH_<name>_OUT` overrides the
/// path. `body` must already be valid JSON (object or array). Returns
/// the path written; the caller prints its own success line. All writes
/// are recorded for [`emitted_files`].
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_bench_json(name: &str, body: &str) -> std::io::Result<PathBuf> {
    let path = std::env::var(format!("UPA_BENCH_{name}_OUT"))
        .unwrap_or_else(|_| format!("BENCH_{name}.json"));
    let payload = format!(
        "{{\"schema_version\": {BENCH_SCHEMA_VERSION}, \"report\": \"{}\", \"data\": {}}}\n",
        name.to_lowercase(),
        body.trim_end()
    );
    std::fs::write(&path, payload)?;
    EMITTED
        .lock()
        .expect("emitted registry poisoned")
        .push(path.clone());
    Ok(PathBuf::from(path))
}

/// The files written through [`write_bench_json`] so far, in order —
/// `reproduce_all` lists them at the end of a run.
pub fn emitted_files() -> Vec<String> {
    EMITTED.lock().expect("emitted registry poisoned").clone()
}

/// Runs `f`, returning its result and the elapsed milliseconds.
pub fn time_millis<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Runs `f` `reps` times, returning the last result and the **median**
/// elapsed milliseconds (robust to warm-up noise).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(reps > 0, "need at least one repetition");
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (out, ms) = time_millis(&mut f);
        times.push(ms);
        last = Some(out);
    }
    times.sort_by(f64::total_cmp);
    (last.expect("reps > 0"), times[times.len() / 2])
}

/// A plain-text table printer with right-padded columns.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Scientific notation with three significant digits, `"n/a"` for `None`.
pub fn sci(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.3e}"),
        None => "n/a".to_string(),
    }
}

/// Percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["query", "value"]);
        t.row(vec!["TPCH1".into(), "1.0".into()]);
        t.row(vec!["LinearRegression".into(), "0.5".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[3].starts_with("LinearRegression"));
        // All value cells start at the same column.
        let col = lines[2].find("1.0").unwrap();
        assert_eq!(lines[3].find("0.5").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn timing_returns_positive_duration() {
        let (v, ms) = time_millis(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(ms >= 4.0);
        let (_, med) = time_median(3, || ());
        assert!(med >= 0.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(sci(None), "n/a");
        assert!(sci(Some(12345.0)).contains('e'));
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn bench_json_wraps_with_schema_version_and_registers() {
        let dir = std::env::temp_dir().join("upa_report_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("test_report_{}.json", std::process::id()));
        std::env::set_var("UPA_BENCH_TESTREPORT_OUT", &path);
        let written = write_bench_json("TESTREPORT", "[1, 2, 3]").unwrap();
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(text.contains("\"report\": \"testreport\""));
        assert!(text.contains("\"data\": [1, 2, 3]"));
        assert!(emitted_files().contains(&path.to_string_lossy().into_owned()));
        std::env::remove_var("UPA_BENCH_TESTREPORT_OUT");
        let _ = std::fs::remove_file(&path);
    }
}
