//! Per-query stage-level audit; see `upa_bench::experiments::stage_audit`.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    upa_bench::experiments::stage_audit(&cfg);
}
