//! Runs every table/figure reproduction in sequence (Table II, Figures
//! 2(a), 2(b), 3, 4(a), 4(b)). Scale via UPA_BENCH_* env vars.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    println!("configuration: {cfg:?}\n");
    upa_bench::experiments::table2(&cfg);
    println!();
    upa_bench::experiments::fig2a(&cfg);
    println!();
    upa_bench::experiments::fig2b(&cfg);
    println!();
    upa_bench::experiments::fig3(&cfg);
    println!();
    upa_bench::experiments::fig4a(&cfg);
    println!();
    upa_bench::experiments::fig4b(&cfg);
    println!();
    upa_bench::experiments::stage_audit(&cfg);
    println!();
    upa_bench::experiments::perf_hotpath(&cfg);
}
