//! Runs every table/figure reproduction in sequence (Table II, Figures
//! 2(a), 2(b), 3, 4(a), 4(b)), the stage audit, the hot-path perf
//! benchmark and the serving benchmark. Scale via UPA_BENCH_* env vars.
//! Ends with the list of machine-readable files the run emitted.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    println!("configuration: {cfg:?}\n");
    upa_bench::experiments::table2(&cfg);
    println!();
    upa_bench::experiments::fig2a(&cfg);
    println!();
    upa_bench::experiments::fig2b(&cfg);
    println!();
    upa_bench::experiments::fig3(&cfg);
    println!();
    upa_bench::experiments::fig4a(&cfg);
    println!();
    upa_bench::experiments::fig4b(&cfg);
    println!();
    upa_bench::experiments::stage_audit(&cfg);
    println!();
    upa_bench::experiments::perf_hotpath(&cfg);
    println!();
    upa_bench::experiments::serve_throughput(&cfg);

    let emitted = upa_bench::report::emitted_files();
    println!("\n== emitted files ==");
    if emitted.is_empty() {
        println!("(none)");
    } else {
        for path in emitted {
            println!("  {path}");
        }
    }
}
