//! Ablation: noise scales of UPA versus the alternative mechanisms the
//! paper discusses — the manual-range systems it automates away (Airavat
//! / GUPT / PINQ, §IV-B), FLEX's local bound, and FLEX's smooth
//! sensitivity (§II-B). All at the paper's ε = 0.1 on the five
//! FLEX-supported count queries.

use upa_bench::report::{sci, Table};
use upa_repro::suite::{build_queries, EvalData, EvalScale};
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_flex::SmoothMechanism;
use upa_repro::upa_tpch::queries as tq;

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    let ctx = dataflow::Context::with_threads(cfg.threads);
    let data = EvalData::generate(
        &ctx,
        EvalScale {
            orders: cfg.orders,
            ml_records: cfg.ml_records,
            partitions: cfg.partitions,
            seed: cfg.seed,
        },
    );
    let queries = build_queries(&data);
    let epsilon = 0.1;
    let smooth_mech = SmoothMechanism::new(epsilon, 1e-6);

    println!("== Ablation: noise scale per mechanism (ε = {epsilon}, lower is better) ==");
    println!("(UPA infers a local range dynamically; FLEX bounds it statically; smooth");
    println!(" sensitivity additionally covers groups; manual-range systems make the");
    println!(" analyst declare a dataset-independent global range — here a conservative");
    println!(" 10× the vanilla output, which a cautious analyst without data access");
    println!(" would have to pick)\n");

    let flex_plans = [
        ("TPCH1", tq::Q1::flex_plan()),
        ("TPCH4", tq::Q4::flex_plan()),
        ("TPCH13", tq::Q13::flex_plan()),
        ("TPCH16", tq::Q16::flex_plan()),
        ("TPCH21", tq::Q21::flex_plan()),
    ];

    let mut t = Table::new(&[
        "Query",
        "ground truth LS",
        "UPA noise scale",
        "FLEX noise scale",
        "smooth noise scale",
        "manual-range noise scale",
    ]);
    for q in queries.iter().filter(|q| q.flex_supported()) {
        let gt = q.ground_truth(&data, 500, cfg.seed ^ 0xAB);
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 1_000,
                epsilon,
                add_noise: false,
                ..UpaConfig::default()
            },
        );
        let result = q.run_upa(&mut upa, &data).expect("query runs");
        let upa_scale = result.max_sensitivity() / epsilon;
        let plan = &flex_plans
            .iter()
            .find(|(n, _)| *n == q.name())
            .expect("count query has a plan")
            .1;
        let flex_scale =
            upa_repro::upa_flex::analyze(plan, &data.metadata).expect("count query") / epsilon;
        let smooth_scale = smooth_mech
            .noise_scale(plan, &data.metadata)
            .expect("count query");
        // A cautious analyst's manual global range: [0, 10 × f(x)].
        let manual_scale = 10.0 * q.run_plain(&data)[0] / epsilon;
        t.row(vec![
            q.name().into(),
            sci(Some(gt.local_sensitivity)),
            sci(Some(upa_scale)),
            sci(Some(flex_scale)),
            sci(Some(smooth_scale)),
            sci(Some(manual_scale)),
        ]);
    }
    t.print();
    println!("\n(UPA's noise tracks the ground-truth sensitivity within a small constant");
    println!(" on every query; the static bounds blow up by orders of magnitude exactly");
    println!(" where joins stack (TPCH16/21), smooth sensitivity amplifies that further,");
    println!(" and analyst-declared manual ranges are uniformly the worst — the paper's");
    println!(" motivation for automated dynamic inference)");
}
