//! Hot-path perf microbenchmark: map-side combining, stage fusion and
//! the pool-parallel phase-4 release. Writes `BENCH_PERF.json` (override
//! the path with `UPA_BENCH_PERF_OUT`); scale via `UPA_BENCH_*` env vars.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    println!("configuration: {cfg:?}\n");
    upa_bench::experiments::perf_hotpath(&cfg);
}
