//! Regenerates the paper artefact; see `upa_bench::experiments::fig4a`.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    upa_bench::experiments::fig4a(&cfg);
}
