//! Store ingest/load benchmark: is serving from columnar chunks
//! actually faster than re-parsing the CSV every start?
//!
//! Measures, over the same dataset:
//!
//! * `csv_parse_ms` — parsing the CSV text and extracting every numeric
//!   column (what a CSV-backed server pays per restart);
//! * `chunk_load_ms` — [`upa_store::Store::load`] with a thread pool
//!   (checksummed fixed-width chunks, parallel per-chunk decode);
//! * `cold_attach_ms` — a fresh [`upa_store::Catalog`] open + attach,
//!   i.e. the wire `attach` op's end-to-end cold latency;
//! * `ingest_ms` — the one-off cost of publishing the CSV into the
//!   store (crash-safe: per-file fsync + atomic rename).
//!
//! Writes `BENCH_STORE.json` (override with `UPA_BENCH_STORE_OUT`).
//! Scale with `UPA_BENCH_STORE_ROWS` (default 200000) and
//! `UPA_BENCH_STORE_COLS` (default 4); `UPA_BENCH_THREADS` sizes the
//! load pool. The headline number is `speedup` = csv/chunk — the store
//! earns its place when this is comfortably above 2x.

use upa_bench::report::{time_millis, write_bench_json};
use upa_store::{csv, Catalog, IngestOptions, Store};

fn read_env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic synthetic CSV: one monotone integer column (a
/// timestamp-like key, so chunk min/max statistics actually separate
/// the chunks) and the rest fractional, so the text is representative
/// (varied widths, decimal points) rather than best-case.
fn synth_csv(rows: usize, cols: usize) -> String {
    let mut text = String::with_capacity(rows * cols * 8);
    for c in 0..cols {
        if c > 0 {
            text.push(',');
        }
        text.push_str(&format!("c{c}"));
    }
    text.push('\n');
    let mut state = 0x9E37_79B9u64;
    for i in 0..rows {
        for c in 0..cols {
            if c > 0 {
                text.push(',');
            }
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 33) as u32;
            if c == 0 {
                text.push_str(&format!("{i}"));
            } else {
                text.push_str(&format!("{}.{:03}", (i % 500), v % 1_000));
            }
        }
        text.push('\n');
    }
    text
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let rows = read_env("UPA_BENCH_STORE_ROWS", 200_000).max(1_000);
    let cols = read_env("UPA_BENCH_STORE_COLS", 4).max(1);
    let threads = read_env("UPA_BENCH_THREADS", 4).max(1);
    let iters = read_env("UPA_BENCH_STORE_ITERS", 5).max(1);

    println!("== Store ingest/load: columnar chunks vs CSV re-parse ==");
    println!("({rows} rows x {cols} columns, {threads} load threads, median of {iters})\n");

    let text = synth_csv(rows, cols);
    let csv_bytes = text.len();

    let root = std::env::temp_dir().join(format!("upa-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir bench store");
    let store = Store::open(&root).expect("open store");

    // One-off publish cost (fsyncs included).
    let (report, ingest_ms) = time_millis(|| {
        store
            .ingest_csv("bench", &text, &IngestOptions::default())
            .expect("ingest")
    });
    println!(
        "ingest: {} rows, {} chunks, {} bytes in {ingest_ms:.1} ms",
        report.rows, report.chunks, report.bytes
    );

    // What a CSV-backed server pays per restart: full parse + numeric
    // extraction of every column.
    let mut csv_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (loaded, ms) = time_millis(|| {
            let doc = csv::parse(&text).expect("parse");
            let columns: Vec<Vec<f64>> = doc
                .header
                .iter()
                .map(|h| doc.numeric_column(h).expect("numeric"))
                .collect();
            columns
        });
        assert_eq!(loaded.len(), cols);
        assert_eq!(loaded[0].len(), rows);
        csv_samples.push(ms);
    }
    let csv_parse_ms = median(&mut csv_samples);

    // What the store pays: parallel chunk decode + checksum verify.
    let pool = dataflow::pool::ThreadPool::new(threads);
    let mut load_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (loaded, ms) = time_millis(|| store.load("bench", Some(&pool)).expect("load"));
        assert_eq!(loaded.rows, rows);
        assert_eq!(loaded.columns.len(), cols);
        load_samples.push(ms);
    }
    let chunk_load_ms = median(&mut load_samples);

    // The wire `attach` op's cold path: fresh catalog, nothing resident.
    let mut attach_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let catalog = Catalog::open(&root, threads).expect("catalog");
        let (resident, ms) = time_millis(|| catalog.attach("bench").expect("attach"));
        assert_eq!(resident.0.rows, rows);
        attach_samples.push(ms);
    }
    let cold_attach_ms = median(&mut attach_samples);

    // Columnar vs row scan over resident chunks: the row path pays the
    // `Vec<f64>` re-materialisation the serving layer used to do before
    // every prepare; the columnar path sums the shared chunk slices in
    // place. Same data, same result, no copy.
    let loaded = store.load("bench", Some(&pool)).expect("load for scan");
    let (_, buf) = &loaded.columns[0];
    let mut row_scan_samples = Vec::with_capacity(iters);
    let mut col_scan_samples = Vec::with_capacity(iters);
    let mut checksum = (0.0f64, 0.0f64);
    for _ in 0..iters {
        let (row_sum, ms) = time_millis(|| {
            let values = buf.to_vec();
            values.iter().sum::<f64>()
        });
        row_scan_samples.push(ms);
        let (col_sum, ms) = time_millis(|| {
            // One running accumulator across chunk slices — the same
            // fold order as the flat scan, so the sums match bit for
            // bit; only the copy disappears.
            let mut acc = 0.0f64;
            for c in buf.chunks() {
                for v in c.values.iter() {
                    acc += *v;
                }
            }
            acc
        });
        col_scan_samples.push(ms);
        checksum = (row_sum, col_sum);
    }
    assert_eq!(
        checksum.0.to_bits(),
        checksum.1.to_bits(),
        "scan paths must agree bit-for-bit"
    );
    let row_scan_ms = median(&mut row_scan_samples);
    let col_scan_ms = median(&mut col_scan_samples);
    let scan_speedup = row_scan_ms / col_scan_ms.max(1e-9);

    // Predicate pushdown over the monotone key column: chunk min/max
    // statistics discard whole chunks before any value is read. The
    // predicate selects the first ~10% of the keyspace.
    let pred = dataflow::columnar::RangePredicate {
        lo: 0.0,
        hi: (rows / 10) as f64,
    };
    let (kept, prune) = buf.prune(&pred);
    let prune_rate = prune.rate();
    assert!(
        kept.len() as u64 + prune.pruned_rows == rows as u64,
        "pruned and kept rows partition the column"
    );

    let speedup = csv_parse_ms / chunk_load_ms;
    println!("csv parse   : {csv_parse_ms:>9.1} ms  ({csv_bytes} bytes of text)");
    println!(
        "chunk load  : {chunk_load_ms:>9.1} ms  ({} bytes of chunks)",
        report.bytes
    );
    println!("cold attach : {cold_attach_ms:>9.1} ms");
    println!("speedup     : {speedup:>9.2}x  (chunk load vs csv re-parse)");
    if speedup < 2.0 {
        println!("WARNING: speedup below the 2x bar");
    }
    println!("row scan    : {row_scan_ms:>9.2} ms  (materialise Vec, then sum)");
    println!("column scan : {col_scan_ms:>9.2} ms  (sum chunk slices in place)");
    println!("scan speedup: {scan_speedup:>9.2}x  (columnar vs row, bit-identical sums)");
    println!(
        "prune rate  : {:>9.1}%  ({} of {} chunks, {} rows never scanned)",
        prune_rate * 100.0,
        prune.pruned_chunks,
        prune.chunks,
        prune.pruned_rows
    );

    let body = format!(
        "{{\"rows\": {rows}, \"cols\": {cols}, \"threads\": {threads}, \"iters\": {iters}, \
         \"csv_bytes\": {csv_bytes}, \"chunk_bytes\": {}, \"chunks\": {}, \
         \"ingest_ms\": {ingest_ms:.3}, \"csv_parse_ms\": {csv_parse_ms:.3}, \
         \"chunk_load_ms\": {chunk_load_ms:.3}, \"cold_attach_ms\": {cold_attach_ms:.3}, \
         \"speedup\": {speedup:.3}, \
         \"row_scan_ms\": {row_scan_ms:.3}, \"columnar_scan_ms\": {col_scan_ms:.3}, \
         \"scan_speedup\": {scan_speedup:.3}, \
         \"prune\": {{\"rate\": {prune_rate:.4}, \"pruned_chunks\": {}, \"chunks\": {}, \
         \"pruned_rows\": {}}}}}",
        report.bytes, report.chunks, prune.pruned_chunks, prune.chunks, prune.pruned_rows
    );
    let path = write_bench_json("STORE", &body).expect("write BENCH_STORE.json");
    println!("\nwrote {}", path.display());

    let _ = std::fs::remove_dir_all(&root);
}
