//! Store ingest/load benchmark: is serving from columnar chunks
//! actually faster than re-parsing the CSV every start?
//!
//! Measures, over the same dataset:
//!
//! * `csv_parse_ms` — parsing the CSV text and extracting every numeric
//!   column (what a CSV-backed server pays per restart);
//! * `chunk_load_ms` — [`upa_store::Store::load`] with a thread pool
//!   (checksummed fixed-width chunks, parallel per-chunk decode);
//! * `cold_attach_ms` — a fresh [`upa_store::Catalog`] open + attach,
//!   i.e. the wire `attach` op's end-to-end cold latency;
//! * `ingest_ms` — the one-off cost of publishing the CSV into the
//!   store (crash-safe: per-file fsync + atomic rename).
//!
//! Writes `BENCH_STORE.json` (override with `UPA_BENCH_STORE_OUT`).
//! Scale with `UPA_BENCH_STORE_ROWS` (default 200000) and
//! `UPA_BENCH_STORE_COLS` (default 4); `UPA_BENCH_THREADS` sizes the
//! load pool. The headline number is `speedup` = csv/chunk — the store
//! earns its place when this is comfortably above 2x.

use upa_bench::report::{time_millis, write_bench_json};
use upa_store::{csv, Catalog, IngestOptions, Store};

fn read_env(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic synthetic CSV: one integer-ish and the rest fractional
/// columns, so the text is representative (varied widths, decimal
/// points) rather than best-case.
fn synth_csv(rows: usize, cols: usize) -> String {
    let mut text = String::with_capacity(rows * cols * 8);
    for c in 0..cols {
        if c > 0 {
            text.push(',');
        }
        text.push_str(&format!("c{c}"));
    }
    text.push('\n');
    let mut state = 0x9E37_79B9u64;
    for i in 0..rows {
        for c in 0..cols {
            if c > 0 {
                text.push(',');
            }
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 33) as u32;
            if c == 0 {
                text.push_str(&format!("{}", v % 10_000));
            } else {
                text.push_str(&format!("{}.{:03}", (i % 500), v % 1_000));
            }
        }
        text.push('\n');
    }
    text
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let rows = read_env("UPA_BENCH_STORE_ROWS", 200_000).max(1_000);
    let cols = read_env("UPA_BENCH_STORE_COLS", 4).max(1);
    let threads = read_env("UPA_BENCH_THREADS", 4).max(1);
    let iters = read_env("UPA_BENCH_STORE_ITERS", 5).max(1);

    println!("== Store ingest/load: columnar chunks vs CSV re-parse ==");
    println!("({rows} rows x {cols} columns, {threads} load threads, median of {iters})\n");

    let text = synth_csv(rows, cols);
    let csv_bytes = text.len();

    let root = std::env::temp_dir().join(format!("upa-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir bench store");
    let store = Store::open(&root).expect("open store");

    // One-off publish cost (fsyncs included).
    let (report, ingest_ms) = time_millis(|| {
        store
            .ingest_csv("bench", &text, &IngestOptions::default())
            .expect("ingest")
    });
    println!(
        "ingest: {} rows, {} chunks, {} bytes in {ingest_ms:.1} ms",
        report.rows, report.chunks, report.bytes
    );

    // What a CSV-backed server pays per restart: full parse + numeric
    // extraction of every column.
    let mut csv_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (loaded, ms) = time_millis(|| {
            let doc = csv::parse(&text).expect("parse");
            let columns: Vec<Vec<f64>> = doc
                .header
                .iter()
                .map(|h| doc.numeric_column(h).expect("numeric"))
                .collect();
            columns
        });
        assert_eq!(loaded.len(), cols);
        assert_eq!(loaded[0].len(), rows);
        csv_samples.push(ms);
    }
    let csv_parse_ms = median(&mut csv_samples);

    // What the store pays: parallel chunk decode + checksum verify.
    let pool = dataflow::pool::ThreadPool::new(threads);
    let mut load_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (loaded, ms) = time_millis(|| store.load("bench", Some(&pool)).expect("load"));
        assert_eq!(loaded.rows, rows);
        assert_eq!(loaded.columns.len(), cols);
        load_samples.push(ms);
    }
    let chunk_load_ms = median(&mut load_samples);

    // The wire `attach` op's cold path: fresh catalog, nothing resident.
    let mut attach_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let catalog = Catalog::open(&root, threads).expect("catalog");
        let (resident, ms) = time_millis(|| catalog.attach("bench").expect("attach"));
        assert_eq!(resident.0.rows, rows);
        attach_samples.push(ms);
    }
    let cold_attach_ms = median(&mut attach_samples);

    let speedup = csv_parse_ms / chunk_load_ms;
    println!("csv parse   : {csv_parse_ms:>9.1} ms  ({csv_bytes} bytes of text)");
    println!(
        "chunk load  : {chunk_load_ms:>9.1} ms  ({} bytes of chunks)",
        report.bytes
    );
    println!("cold attach : {cold_attach_ms:>9.1} ms");
    println!("speedup     : {speedup:>9.2}x  (chunk load vs csv re-parse)");
    if speedup < 2.0 {
        println!("WARNING: speedup below the 2x bar");
    }

    let body = format!(
        "{{\"rows\": {rows}, \"cols\": {cols}, \"threads\": {threads}, \"iters\": {iters}, \
         \"csv_bytes\": {csv_bytes}, \"chunk_bytes\": {}, \"chunks\": {}, \
         \"ingest_ms\": {ingest_ms:.3}, \"csv_parse_ms\": {csv_parse_ms:.3}, \
         \"chunk_load_ms\": {chunk_load_ms:.3}, \"cold_attach_ms\": {cold_attach_ms:.3}, \
         \"speedup\": {speedup:.3}}}",
        report.bytes, report.chunks
    );
    let path = write_bench_json("STORE", &body).expect("write BENCH_STORE.json");
    println!("\nwrote {}", path.display());

    let _ = std::fs::remove_dir_all(&root);
}
