//! Serving-path benchmark: an in-process `upa-server` on a loopback
//! socket under concurrent clients. Writes `BENCH_SERVE.json` (override
//! the path with `UPA_BENCH_SERVE_OUT`); scale via `UPA_BENCH_CLIENTS`,
//! `UPA_BENCH_SERVE_REQUESTS` and the usual `UPA_BENCH_*` env vars.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    println!("configuration: {cfg:?}\n");
    upa_bench::experiments::serve_throughput(&cfg);
}
