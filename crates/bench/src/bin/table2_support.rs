//! Regenerates the paper artefact; see `upa_bench::experiments::table2`.

fn main() {
    let cfg = upa_bench::ExpConfig::from_env();
    upa_bench::experiments::table2(&cfg);
}
