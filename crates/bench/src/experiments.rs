//! The six experiments of the paper's evaluation (§VI), as callable
//! functions. Each prints the paper's reference claim next to measured
//! values so a reader can check the *shape* of the result directly.

use crate::report::{pct, sci, time_median, Table};
use dataflow::{Config, Context};
use std::time::Instant;
use upa_repro::suite::{build_queries, EvalData, EvalQuery, EvalScale};
use upa_repro::upa_core::{Upa, UpaConfig};
use upa_repro::upa_stats::rmse::rmse;

/// Experiment configuration (environment-overridable scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// TPC-H orders (drives all table sizes).
    pub orders: usize,
    /// ML records.
    pub ml_records: usize,
    /// Partitions per dataset.
    pub partitions: usize,
    /// Engine worker threads.
    pub threads: usize,
    /// Timing repetitions / accuracy trials.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Simulated per-record scan cost (ns) applied to the *timing*
    /// experiments (Fig. 2b, 4a, 4b) to stand in for Spark's I/O-bound
    /// scans; accuracy experiments run without it.
    pub scan_cost_ns: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExpConfig {
            orders: 4_000,
            ml_records: 8_000,
            partitions: 8,
            threads: avail.clamp(4, 8),
            trials: 3,
            seed: 7,
            scan_cost_ns: 150,
        }
    }
}

impl ExpConfig {
    /// Reads `UPA_BENCH_ORDERS`, `UPA_BENCH_ML_RECORDS`,
    /// `UPA_BENCH_TRIALS`, `UPA_BENCH_THREADS` env overrides.
    pub fn from_env() -> Self {
        let mut cfg = ExpConfig::default();
        let read = |name: &str| std::env::var(name).ok().and_then(|v| v.parse().ok());
        if let Some(v) = read("UPA_BENCH_ORDERS") {
            cfg.orders = v;
        }
        if let Some(v) = read("UPA_BENCH_ML_RECORDS") {
            cfg.ml_records = v;
        }
        if let Some(v) = read("UPA_BENCH_TRIALS") {
            cfg.trials = v;
        }
        if let Some(v) = read("UPA_BENCH_THREADS") {
            cfg.threads = v;
        }
        if let Some(v) = std::env::var("UPA_BENCH_SCAN_NS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.scan_cost_ns = v;
        }
        cfg
    }

    fn scale(&self) -> EvalScale {
        EvalScale {
            orders: self.orders,
            ml_records: self.ml_records,
            partitions: self.partitions,
            seed: self.seed,
        }
    }
}

fn setup(cfg: &ExpConfig) -> (Context, EvalData, Vec<Box<dyn EvalQuery>>) {
    setup_with_scan(cfg, 0)
}

/// Like [`setup`] but with the simulated per-record scan cost enabled —
/// used by the timing experiments so the vanilla baseline carries an
/// I/O-like cost per record, as the paper's 114 GB Spark scans do.
fn setup_with_scan(
    cfg: &ExpConfig,
    scan_cost_ns: u64,
) -> (Context, EvalData, Vec<Box<dyn EvalQuery>>) {
    let ctx = Context::new(Config {
        threads: cfg.threads,
        default_partitions: cfg.partitions,
        shuffle_partitions: cfg.partitions,
        scan_cost_ns,
        ..Config::default()
    });
    let data = EvalData::generate(&ctx, cfg.scale());
    let queries = build_queries(&data);
    (ctx, data, queries)
}

fn upa_for(ctx: &Context, sample_size: usize, seed: u64, noise: bool) -> Upa {
    Upa::new(
        ctx.clone(),
        UpaConfig {
            sample_size,
            seed,
            add_noise: noise,
            ..UpaConfig::default()
        },
    )
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

/// Table II: the query/dataset support matrix.
pub fn table2(cfg: &ExpConfig) {
    let (_ctx, data, queries) = setup(cfg);
    println!("== Table II: evaluated queries and support matrix ==");
    println!(
        "(paper: 114-133 GB TPC-H / life-science datasets; here: generated at orders={}, ml={})\n",
        cfg.orders, cfg.ml_records
    );
    let mut t = Table::new(&[
        "Query Name",
        "Protected table",
        "Protected rows",
        "Query Type",
        "Support by UPA",
        "Support by FLEX",
    ]);
    for q in &queries {
        let rows = match q.protected() {
            "lineitem" => data.tables.lineitem.len(),
            "orders" => data.tables.orders.len(),
            "partsupp" => data.tables.partsupp.len(),
            "supplier" => data.tables.supplier.len(),
            _ => data.scale.ml_records,
        };
        t.row(vec![
            q.name().into(),
            q.protected().into(),
            rows.to_string(),
            q.kind().into(),
            "yes".into(),
            if q.flex_supported() { "yes" } else { "NO" }.into(),
        ]);
    }
    t.print();
    let flex_count = queries.iter().filter(|q| q.flex_supported()).count();
    println!(
        "\nUPA supports {}/9 queries; FLEX supports {}/9 (paper: 9/9 vs 5/9).",
        queries.len(),
        flex_count
    );
}

// ---------------------------------------------------------------------------
// Figure 2(a): sensitivity RMSE, UPA vs FLEX
// ---------------------------------------------------------------------------

/// Figure 2(a): RMSE of inferred local sensitivity vs brute-force ground
/// truth, UPA vs FLEX, log scale.
pub fn fig2a(cfg: &ExpConfig) {
    let (ctx, data, queries) = setup(cfg);
    println!("== Figure 2(a): sensitivity RMSE vs ground truth (lower is better) ==");
    println!("(paper: UPA averages 3.81% RMSE; FLEX is 1-5 orders of magnitude worse;");
    println!(" FLEX is exact on TPCH1, worst on the multi-join TPCH16/TPCH21)\n");

    let mut t = Table::new(&[
        "Query",
        "ground truth LS",
        "UPA estimate",
        "UPA RMSE",
        "FLEX bound",
        "FLEX RMSE",
        "FLEX/UPA error",
    ]);
    let mut upa_rel_sum = 0.0;
    let mut upa_rel_count = 0usize;
    for q in &queries {
        let gt = q.ground_truth(&data, 1_000, cfg.seed ^ 0xA11);
        let truth = gt.local_sensitivity;
        let mut estimates = Vec::with_capacity(cfg.trials);
        for trial in 0..cfg.trials {
            let mut upa = upa_for(&ctx, 1_000, cfg.seed + 100 + trial as u64, false);
            let result = q.run_upa(&mut upa, &data).expect("query runs");
            estimates.push(result.max_empirical_sensitivity());
        }
        let truths = vec![truth; estimates.len()];
        let upa_abs = rmse(&estimates, &truths).expect("non-empty");
        let denom = truth.abs().max(1e-12);
        let upa_rel = upa_abs / denom;
        upa_rel_sum += upa_rel;
        upa_rel_count += 1;
        let mean_est = estimates.iter().sum::<f64>() / estimates.len() as f64;

        let (flex_cell, flex_rmse_cell, ratio_cell) = match q.flex_sensitivity(&data) {
            Ok(flex) => {
                let flex_rel = (flex - truth).abs() / denom;
                let ratio = if upa_rel > 0.0 {
                    format!("{:.1e}x", flex_rel / upa_rel)
                } else if flex_rel == 0.0 {
                    "1x".to_string()
                } else {
                    "inf".to_string()
                };
                (sci(Some(flex)), pct(flex_rel), ratio)
            }
            Err(_) => ("unsupported".into(), "n/a".into(), "n/a".into()),
        };
        t.row(vec![
            q.name().into(),
            sci(Some(truth)),
            sci(Some(mean_est)),
            pct(upa_rel),
            flex_cell,
            flex_rmse_cell,
            ratio_cell,
        ]);
    }
    t.print();
    println!(
        "\nUPA average RMSE across all nine queries: {} (paper: 3.81%)",
        pct(upa_rel_sum / upa_rel_count as f64)
    );
}

// ---------------------------------------------------------------------------
// Figure 2(b): runtime normalized to vanilla
// ---------------------------------------------------------------------------

/// Figure 2(b): UPA end-to-end runtime normalized to the vanilla
/// dataflow execution.
pub fn fig2b(cfg: &ExpConfig) {
    let (ctx, data, queries) = setup_with_scan(cfg, cfg.scan_cost_ns);
    println!("== Figure 2(b): UPA runtime normalized to vanilla execution ==");
    println!("(paper: 19.1%-130.9% overhead, avg 77.6%; join queries TPCH4/13 exceed");
    println!(" 100% because joinDP shuffles twice; TPCH16/21 stay lower because their");
    println!(" filters drop most sampled-neighbour work. Without Spark's I/O and");
    println!(" cluster costs the vanilla baseline here is much cheaper, so absolute");
    println!(" ratios run higher — the per-query ordering is the reproduction target.)\n");

    let mut t = Table::new(&[
        "Query",
        "vanilla ms",
        "UPA ms",
        "normalized",
        "extra shuffles",
        "shuffle-time share",
    ]);
    let mut ratios = Vec::new();
    for q in &queries {
        let (_, vanilla_ms) = time_median(cfg.trials, || q.run_plain(&data));
        ctx.reset_metrics();
        let before = ctx.metrics();
        let mut upa = upa_for(&ctx, 1_000, cfg.seed + 500, true);
        let (_, upa_ms) = time_median(cfg.trials, || {
            q.run_upa(&mut upa, &data).expect("query runs")
        });
        let shuffles = ctx.metrics().since(&before).shuffles;
        let shuffle_share = ctx.shuffle_time_share();
        let ratio = upa_ms / vanilla_ms.max(1e-6);
        ratios.push((q.name(), ratio));
        t.row(vec![
            q.name().into(),
            format!("{vanilla_ms:.2}"),
            format!("{upa_ms:.2}"),
            format!("{ratio:.2}x"),
            shuffles.to_string(),
            pct(shuffle_share),
        ]);
    }
    t.print();
    let avg: f64 = ratios.iter().map(|(_, r)| r).sum::<f64>() / ratios.len() as f64;
    println!("\naverage normalized runtime: {avg:.2}x vanilla");
    let join_avg = avg_of(&ratios, &["TPCH4", "TPCH13"]);
    let filtered_join_avg = avg_of(&ratios, &["TPCH16", "TPCH21"]);
    println!(
        "join queries (TPCH4/13) average {join_avg:.2}x vs multi-join-filtered (TPCH16/21) {filtered_join_avg:.2}x\n(paper shape: the former exceed the latter; the paper also reports >42.8% of\n execution time in shuffling for the local queries — compare the\n shuffle-time-share column)"
    );
}

fn avg_of(ratios: &[(&str, f64)], names: &[&str]) -> f64 {
    let sel: Vec<f64> = ratios
        .iter()
        .filter(|(n, _)| names.contains(n))
        .map(|(_, r)| *r)
        .collect();
    sel.iter().sum::<f64>() / sel.len().max(1) as f64
}

// ---------------------------------------------------------------------------
// Figure 3: neighbour-output coverage vs sample size
// ---------------------------------------------------------------------------

/// Figure 3: how much of the true neighbour-output distribution the
/// inferred range covers, per sample size.
pub fn fig3(cfg: &ExpConfig) {
    let (ctx, data, queries) = setup(cfg);
    println!("== Figure 3: neighbour-output coverage of the inferred range ==");
    println!("(paper: with n=1000 the inferred range covers 98.9%-100% of all");
    println!(" neighbour outputs for 8 of 9 queries; TPCH21 is the outlier-heavy");
    println!(" exception. Red lines = inferred range, blue = true extremes.)\n");

    let sample_sizes = [100usize, 1_000, 10_000];
    let mut t = Table::new(&[
        "Query",
        "true min..max (comp 0)",
        "inferred range @n=1000",
        "cov @100",
        "cov @1000",
        "cov @10000",
        "KS vs normal",
        "distribution",
    ]);
    for q in &queries {
        let gt = q.ground_truth(&data, 1_000, cfg.seed ^ 0xF13);
        let extremes = gt.neighbour_extremes();
        let mut coverages = Vec::new();
        let mut range_at_1000 = String::new();
        for (si, &n) in sample_sizes.iter().enumerate() {
            let mut upa = upa_for(&ctx, n, cfg.seed + 900 + si as u64, false);
            let result = q.run_upa(&mut upa, &data).expect("query runs");
            // Coverage: fraction of ALL true neighbour outputs inside the
            // inferred per-component range.
            let mut inside = 0usize;
            let mut total = 0usize;
            for o in gt.removal_outputs.iter().chain(gt.addition_outputs.iter()) {
                for (c, v) in o.iter().enumerate() {
                    let (lo, hi) = result.range.bounds[c];
                    total += 1;
                    if *v >= lo && *v <= hi {
                        inside += 1;
                    }
                }
            }
            coverages.push(inside as f64 / total.max(1) as f64);
            if n == 1_000 {
                let (lo, hi) = result.range.bounds[0];
                range_at_1000 = format!("[{lo:.4}, {hi:.4}]");
            }
        }
        // §VI-C normality analysis: KS distance of the true
        // neighbour-output distribution (component 0) against its own
        // normal fit, plus a sparkline of the distribution itself.
        let comp0: Vec<f64> = gt
            .removal_outputs
            .iter()
            .chain(gt.addition_outputs.iter())
            .filter_map(|o| o.first().copied())
            .collect();
        let ks = upa_repro::upa_stats::ks::ks_vs_normal_fit(&comp0)
            .map(|d| format!("{d:.3}"))
            .unwrap_or_else(|_| "n/a".into());
        let spark = upa_repro::upa_stats::ks::Histogram::from_samples(&comp0, 16).sparkline();
        t.row(vec![
            q.name().into(),
            format!("[{:.4}, {:.4}]", extremes[0].0, extremes[0].1),
            range_at_1000,
            pct(coverages[0]),
            pct(coverages[1]),
            pct(coverages[2]),
            ks,
            spark,
        ]);
    }
    t.print();
    println!(
        "
(large KS = strongly non-normal neighbour outputs, the paper's"
    );
    println!(" §VI-C explanation for residual inaccuracy; TPCH21's outliers show");
    println!(" as a heavy-tailed sparkline)");
}

// ---------------------------------------------------------------------------
// Figure 4(a): scalability with dataset size
// ---------------------------------------------------------------------------

/// Figure 4(a): normalized overhead as the dataset grows (the cost of
/// sensitivity inference is constant in `n`, so overhead falls).
pub fn fig4a(cfg: &ExpConfig) {
    println!("== Figure 4(a): UPA overhead vs dataset size ==");
    println!("(paper: overhead decreases as datasets grow, because inferring");
    println!(" sensitivity costs O(n)=O(1000) regardless of dataset size)\n");

    let selected = ["TPCH1", "TPCH4", "TPCH6", "TPCH21", "LinearRegression"];
    let factors = [1usize, 2, 4, 8];
    let mut t = Table::new(&{
        let mut h = vec!["dataset scale"];
        h.extend(selected);
        h
    });
    for &f in &factors {
        let scaled = ExpConfig {
            orders: cfg.orders * f,
            ml_records: cfg.ml_records * f,
            ..*cfg
        };
        let (ctx, data, queries) = setup_with_scan(&scaled, cfg.scan_cost_ns);
        let mut cells = vec![format!("{}x ({} lineitems)", f, data.tables.lineitem.len())];
        for name in &selected {
            let q = queries
                .iter()
                .find(|q| q.name() == *name)
                .expect("query exists");
            let (_, vanilla_ms) = time_median(cfg.trials, || q.run_plain(&data));
            let mut upa = upa_for(&ctx, 1_000, cfg.seed + 1_700 + f as u64, true);
            let (_, upa_ms) = time_median(cfg.trials, || {
                q.run_upa(&mut upa, &data).expect("query runs")
            });
            cells.push(format!("{:.2}x", upa_ms / vanilla_ms.max(1e-6)));
        }
        t.row(cells);
    }
    t.print();
    println!("\n(each column should trend downward as the scale factor grows)");
}

// ---------------------------------------------------------------------------
// Stage-level audit (observability layer)
// ---------------------------------------------------------------------------

/// Stage-level audit: runs every suite query once and reports where
/// Algorithm 1 spends its time, from each release's [`QueryAudit`]
/// (`upa_core::QueryAudit`). The full audits are also written as a JSON
/// array to `BENCH_STAGES.json` (override the path with
/// `UPA_BENCH_STAGES_OUT`) for downstream tooling.
pub fn stage_audit(cfg: &ExpConfig) {
    let (ctx, data, queries) = setup(cfg);
    println!("== Stage-level audit: per-phase wall-clock of Algorithm 1 ==");
    println!("(all times in ms; prefix stages prepare/*, suffix stages release/*)\n");

    let stages = [
        "partition",
        "sample",
        "map",
        "reduce",
        "neighbours",
        "mle_fit",
        "enforce",
        "clamp",
        "noise",
    ];
    let mut t = Table::new(&{
        let mut h = vec!["Query", "total"];
        h.extend(stages);
        h
    });
    let mut jsons = Vec::new();
    for q in &queries {
        let mut upa = upa_for(&ctx, 1_000, cfg.seed + 3_100, true);
        q.run_upa(&mut upa, &data).expect("query runs");
        let audit = upa
            .last_audit()
            .expect("every successful release leaves an audit")
            .clone();
        let mut cells = vec![
            q.name().to_string(),
            format!("{:.2}", audit.total_nanos as f64 / 1e6),
        ];
        for s in &stages {
            cells.push(format!("{:.2}", audit.stage_nanos(s) as f64 / 1e6));
        }
        t.row(cells);
        jsons.push(audit.to_json());
    }
    t.print();

    let payload = format!("[{}]", jsons.join(",\n"));
    match crate::report::write_bench_json("STAGES", &payload) {
        Ok(path) => println!("\nwrote {} query audits to {}", jsons.len(), path.display()),
        Err(e) => eprintln!("\ncannot write BENCH_STAGES.json: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Hot-path microbenchmark: combining, fusion, parallel phase 4
// ---------------------------------------------------------------------------

/// Hot-path perf benchmark: measures the wall-clock and shuffle-volume
/// effect of map-side combining on (i) a scalar-sum UPA query and (ii) a
/// keyed `reduce_by_key` workload, plus the cost of a repeated release
/// (phases 3–4 only: pool-parallel, engine-free). Results are printed
/// and written as JSON to `BENCH_PERF.json` (override the path with
/// `UPA_BENCH_PERF_OUT`).
pub fn perf_hotpath(cfg: &ExpConfig) {
    use dataflow::PairOps;
    use upa_repro::upa_core::domain::EmpiricalSampler;
    use upa_repro::upa_core::query::MapReduceQuery;

    let records = cfg.orders.max(1) * 25;
    let parts = cfg.partitions;
    println!("== Hot-path perf: map-side combining, fused stages, parallel phase 4 ==");
    println!(
        "({records} records, {parts} partitions, median of {} trials)\n",
        cfg.trials
    );

    let engine = |combine: bool| {
        Context::new(Config {
            threads: cfg.threads,
            default_partitions: parts,
            shuffle_partitions: parts,
            map_side_combine: combine,
            ..Config::default()
        })
    };
    let variant = |combine: bool| if combine { "combine_on" } else { "combine_off" };

    // (workload, variant, wall ms, shuffle records, shuffle bytes)
    let mut rows: Vec<(String, String, f64, u64, u64)> = Vec::new();

    // (i) Scalar-sum UPA query: the per-half remainder reduce is the
    // engine-visible shuffle the combiner compresses to ≤2 records per
    // map partition.
    for combine in [true, false] {
        let ctx = engine(combine);
        let data: Vec<f64> = (0..records).map(|i| (i % 97) as f64).collect();
        let ds = ctx.parallelize(data.clone(), parts);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let before = ctx.metrics();
        let mut upa = upa_for(&ctx, 1_000, cfg.seed + 4_100, true);
        upa.run(&ds, &query, &domain).expect("query runs");
        let delta = ctx.metrics().since(&before);
        let (_, ms) = time_median(cfg.trials, || {
            upa.run(&ds, &query, &domain).expect("query runs")
        });
        rows.push((
            "scalar_sum_upa".into(),
            variant(combine).into(),
            ms,
            delta.shuffle_records,
            delta.shuffle_bytes,
        ));
    }

    // (ii) Keyed count: a pure engine workload with many records per key.
    for combine in [true, false] {
        let ctx = engine(combine);
        let pairs: Vec<(u64, u64)> = (0..records as u64).map(|i| (i % 64, 1)).collect();
        let ds = ctx.parallelize(pairs, parts);
        let before = ctx.metrics();
        let counted = ds.reduce_by_key(|a, b| a + b).collect();
        assert_eq!(counted.len(), 64.min(records));
        let delta = ctx.metrics().since(&before);
        let (_, ms) = time_median(cfg.trials, || ds.reduce_by_key(|a, b| a + b).collect());
        rows.push((
            "keyed_count".into(),
            variant(combine).into(),
            ms,
            delta.shuffle_records,
            delta.shuffle_bytes,
        ));
    }

    // (iii) Repeated release off a prepared query: phase 4 runs its 2·n
    // neighbour finalizations and MLE fits on the worker pool without
    // touching the engine — zero stages, zero shuffled records.
    {
        let ctx = engine(true);
        let data: Vec<f64> = (0..records).map(|i| (i % 97) as f64).collect();
        let ds = ctx.parallelize(data.clone(), parts);
        let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
        let domain = EmpiricalSampler::new(data);
        let mut upa = upa_for(&ctx, 1_000, cfg.seed + 4_300, true);
        let prepared = upa.prepare(&ds, &query, &domain).expect("prepare runs");
        let before = ctx.metrics();
        let (_, ms) = time_median(cfg.trials, || upa.release(&prepared).expect("release runs"));
        let delta = ctx.metrics().since(&before);
        rows.push((
            "repeated_release".into(),
            "combine_on".into(),
            ms,
            delta.shuffle_records,
            delta.shuffle_bytes,
        ));
    }

    let mut t = Table::new(&[
        "workload",
        "variant",
        "wall ms",
        "shuffle records",
        "shuffle KiB",
    ]);
    for (w, v, ms, recs, bytes) in &rows {
        t.row(vec![
            w.clone(),
            v.clone(),
            format!("{ms:.2}"),
            recs.to_string(),
            format!("{:.1}", *bytes as f64 / 1024.0),
        ]);
    }
    t.print();

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(w, v, ms, recs, bytes)| {
            format!(
                "    {{\"workload\": \"{w}\", \"variant\": \"{v}\", \"wall_ms\": {ms:.3}, \
                 \"shuffle_records\": {recs}, \"shuffle_bytes\": {bytes}}}"
            )
        })
        .collect();
    let payload = format!(
        "{{\n  \"records\": {records},\n  \"partitions\": {parts},\n  \"threads\": {},\n  \
         \"trials\": {},\n  \"workloads\": [\n{}\n  ]\n}}",
        cfg.threads,
        cfg.trials,
        json_rows.join(",\n")
    );
    match crate::report::write_bench_json("PERF", &payload) {
        Ok(path) => println!(
            "\nwrote {} workload measurements to {}",
            rows.len(),
            path.display()
        ),
        Err(e) => eprintln!("\ncannot write BENCH_PERF.json: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Serving throughput: upa-server under concurrent clients
// ---------------------------------------------------------------------------

/// Serving benchmark: an in-process `upa-server` on a loopback socket,
/// hammered by concurrent clients in three phases. The steady and
/// contended phases carry a generous `deadline_ms` so every request
/// takes the scheduler (queue, coalescing, worker pool) — the contended
/// phase quadruples the clients so coalescing is what keeps latency
/// bounded. The fast-path phase then drops the deadline: cached releases
/// are served on their connection threads (zero queue) with spends
/// group-committed, and its qps/p99 plus the fsyncs-per-release ratio
/// are the headline numbers. Everything is printed and written to
/// `BENCH_SERVE.json` (override with `UPA_BENCH_SERVE_OUT`; client and
/// request counts with `UPA_BENCH_CLIENTS` / `UPA_BENCH_SERVE_REQUESTS` /
/// `UPA_BENCH_FASTPATH_REQUESTS`).
pub fn serve_throughput(cfg: &ExpConfig) {
    use upa_server::{AggKind, Client, DatasetSpec, Server, ServerConfig, ServerState};
    use upa_store::{IngestOptions, Store};

    let read_env = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = read_env("UPA_BENCH_CLIENTS", 4).max(1);
    let contended_clients = (clients * 4).max(8);
    let requests = read_env("UPA_BENCH_SERVE_REQUESTS", 64).max(1);
    let fastpath_requests = read_env("UPA_BENCH_FASTPATH_REQUESTS", 400).max(1);
    let records = cfg.orders.max(1) * 25;

    println!("== Serving throughput: upa-server under concurrent clients ==");
    println!(
        "({records} records, {clients} steady / {contended_clients} contended clients x \
         {requests} scheduled releases each, then {contended_clients} x {fastpath_requests} \
         fast-path releases, {} engine threads)\n",
        cfg.threads
    );

    // A real (temp) ledger puts the append+fsync on the release path, so
    // the scraped `upa_ledger_fsync_us` histogram measures actual I/O.
    let ledger_path =
        std::env::temp_dir().join(format!("upa-bench-serve-{}.ledger", std::process::id()));
    let _ = std::fs::remove_file(&ledger_path);
    let server = Server::bind(
        ServerConfig {
            datasets: vec![DatasetSpec::synthetic("data", records, 97)],
            epsilon: 0.1,
            ledger_path: Some(ledger_path.clone()),
            sample_size: 1_000.min(records),
            seed: cfg.seed,
            threads: cfg.threads,
            max_connections: contended_clients + 4,
            queue_capacity: contended_clients * 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind loopback server");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());

    // Pay the one-off prepare outside any measured window so the
    // percentiles describe steady-state (cached, zero-stage) serving,
    // then warm the serving path itself — connections, the prepared
    // cache, the group committer — with a short unmeasured burst.
    {
        let mut warm = Client::connect(&addr).expect("warm-up connect");
        for _ in 0..8 {
            warm.release("data", "sum", "v", None, false)
                .expect("warm-up release");
        }
    }

    // One flood of `n` clients x `per_client` releases; a deadline opts
    // every request into the scheduler, `None` rides the zero-queue fast
    // path once cached. Returns the sorted latencies and the wall time.
    let flood = |n: usize, per_client: usize, deadline_ms: Option<u64>| -> (Vec<f64>, f64) {
        let phase_start = Instant::now();
        let mut workers = Vec::new();
        for _ in 0..n {
            let addr = addr.clone();
            workers.push(std::thread::spawn(move || {
                let mut client = Client::builder()
                    .retry_busy(8)
                    .connect(&addr)
                    .expect("client connect");
                let mut latencies_us = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let start = Instant::now();
                    client
                        .release_with_deadline("data", "sum", "v", None, false, deadline_ms)
                        .expect("release delivers");
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                }
                latencies_us
            }));
        }
        let mut latencies_us: Vec<f64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        latencies_us.sort_by(f64::total_cmp);
        (latencies_us, phase_start.elapsed().as_secs_f64())
    };
    let percentile = |sorted: &[f64], p: f64| -> f64 {
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    };
    let counter = |m: &upa_server::MetricsReply, name: &str| -> u64 {
        m.snapshot.counters.get(name).copied().unwrap_or(0)
    };

    let (steady, wall_s) = flood(clients, requests, Some(600_000));
    let (contended, contended_wall_s) = flood(contended_clients, requests, Some(600_000));

    // Snapshot the fsync counter on the phase boundary so the fast-path
    // phase's batching ratio is isolated from the scheduled phases.
    let fsyncs_before_fastpath = {
        let mut observer = Client::connect(&addr).expect("pre-fastpath connect");
        let m = observer.metrics().expect("metrics reply");
        counter(&m, "upa_ledger_fsyncs_total")
    };
    let (fastpath, fastpath_wall_s) = flood(contended_clients, fastpath_requests, None);

    let (stats, metrics) = {
        let mut observer = Client::connect(&addr).expect("stats connect");
        let stats = observer.stats().expect("stats reply");
        let metrics = observer.metrics().expect("metrics reply");
        (stats, metrics)
    };
    handle.shutdown();
    join.join().expect("server thread").expect("server exits");
    let _ = std::fs::remove_file(&ledger_path);

    // Cold-prepare phase: one store-backed dataset attached into two
    // in-process states over the *same* chunks — one serving through the
    // columnar zero-copy kernels, one forced down the row path (which
    // re-materialises a `Vec<f64>` and walks it record by record). Each
    // iteration purges the prepared cache so every prepare is cold; the
    // two paths are bit-identical under the shared seed, so the speedup
    // buys latency, never a different answer.
    let cold_iters = read_env("UPA_BENCH_COLD_ITERS", 9).max(3);
    let cold_rows = read_env("UPA_BENCH_COLD_ROWS", 400_000).max(records);
    let store_dir = std::env::temp_dir().join(format!("upa-bench-coldprep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("mkdir cold store");
    {
        let store = Store::open(&store_dir).expect("open cold store");
        let values: Vec<f64> = (0..cold_rows).map(|i| (i % 97) as f64).collect();
        let columns = vec![("v".to_string(), values)];
        store
            .ingest("cold", &columns, &IngestOptions::default())
            .expect("ingest cold dataset");
    }
    let cold_state = |columnar: bool| {
        ServerState::new(ServerConfig {
            datasets: vec![],
            epsilon: 0.1,
            sample_size: 1_000.min(cold_rows),
            seed: cfg.seed,
            threads: cfg.threads,
            store_path: Some(store_dir.clone()),
            attach: vec!["cold".to_string()],
            columnar,
            ..ServerConfig::default()
        })
        .expect("cold-prepare state")
    };
    let col_state = cold_state(true);
    let row_state = cold_state(false);
    let time_cold = |state: &ServerState| -> Vec<f64> {
        let mut us = Vec::with_capacity(cold_iters);
        for _ in 0..cold_iters {
            state.invalidate_prepared("cold");
            let start = Instant::now();
            let (_, _, hit) = state
                .prepare("cold", AggKind::Sum, "v")
                .expect("cold prepare");
            assert!(!hit, "invalidation makes every prepare cold");
            us.push(start.elapsed().as_secs_f64() * 1e6);
        }
        us.sort_by(f64::total_cmp);
        us
    };
    let cold_col = time_cold(&col_state);
    let cold_row = time_cold(&row_state);
    // Both engines consumed identical RNG draws, so one release each
    // must agree to the last bit — the speedup changes nothing else.
    let a = col_state
        .release("cold", AggKind::Sum, "v", None, false)
        .expect("columnar release");
    let b = row_state
        .release("cold", AggKind::Sum, "v", None, false)
        .expect("row release");
    assert_eq!(
        a.released.to_bits(),
        b.released.to_bits(),
        "columnar and row cold prepares must release identical bits"
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    let (cold_col_p50, cold_col_p99) = (percentile(&cold_col, 50.0), percentile(&cold_col, 99.0));
    let (cold_row_p50, cold_row_p99) = (percentile(&cold_row, 50.0), percentile(&cold_row, 99.0));
    let cold_speedup = cold_row_p50 / cold_col_p50.max(1e-9);

    // Server-side latency breakdowns, from the same registry the
    // `metrics` op scrapes (microsecond histograms).
    let hist_pcts = |name: &str| -> (u64, u64) {
        metrics
            .snapshot
            .histograms
            .get(name)
            .map(|h| (h.quantile(0.50), h.quantile(0.99)))
            .unwrap_or((0, 0))
    };
    let (queue_p50, queue_p99) = hist_pcts("upa_queue_wait_us");
    let (fsync_p50, fsync_p99) = hist_pcts("upa_ledger_fsync_us");
    let (batch_p50, _) = hist_pcts("upa_ledger_batch_size");
    let (commit_wait_p50, commit_wait_p99) = hist_pcts("upa_ledger_commit_wait_us");
    let batch_max = metrics
        .snapshot
        .histograms
        .get("upa_ledger_batch_size")
        .map(|h| h.max())
        .unwrap_or(0);

    let total = steady.len();
    let qps = total as f64 / wall_s.max(1e-9);
    let contended_qps = contended.len() as f64 / contended_wall_s.max(1e-9);
    let (p50, p90, p99, max) = (
        percentile(&steady, 50.0),
        percentile(&steady, 90.0),
        percentile(&steady, 99.0),
        steady[total - 1],
    );
    let (c_p50, c_p99) = (percentile(&contended, 50.0), percentile(&contended, 99.0));
    let fastpath_total = fastpath.len();
    let fastpath_qps = fastpath_total as f64 / fastpath_wall_s.max(1e-9);
    let (f_p50, f_p99) = (percentile(&fastpath, 50.0), percentile(&fastpath, 99.0));
    let fastpath_hits = counter(&metrics, "upa_fastpath_hits_total");
    let fastpath_fsyncs =
        counter(&metrics, "upa_ledger_fsyncs_total").saturating_sub(fsyncs_before_fastpath);
    let sched = &stats.sched;
    let coalesce_rate = sched.coalesce_rate();

    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["steady releases".into(), total.to_string()]);
    t.row(vec!["steady throughput (qps)".into(), format!("{qps:.0}")]);
    t.row(vec!["steady p50 latency (µs)".into(), format!("{p50:.0}")]);
    t.row(vec!["steady p90 latency (µs)".into(), format!("{p90:.0}")]);
    t.row(vec!["steady p99 latency (µs)".into(), format!("{p99:.0}")]);
    t.row(vec!["steady max latency (µs)".into(), format!("{max:.0}")]);
    t.row(vec![
        "contended releases".into(),
        contended.len().to_string(),
    ]);
    t.row(vec![
        "contended throughput (qps)".into(),
        format!("{contended_qps:.0}"),
    ]);
    t.row(vec![
        "contended p50 latency (µs)".into(),
        format!("{c_p50:.0}"),
    ]);
    t.row(vec![
        "contended p99 latency (µs)".into(),
        format!("{c_p99:.0}"),
    ]);
    t.row(vec![
        "fast-path releases".into(),
        fastpath_total.to_string(),
    ]);
    t.row(vec![
        "fast-path throughput (qps)".into(),
        format!("{fastpath_qps:.0}"),
    ]);
    t.row(vec![
        "fast-path p50 latency (µs)".into(),
        format!("{f_p50:.0}"),
    ]);
    t.row(vec![
        "fast-path p99 latency (µs)".into(),
        format!("{f_p99:.0}"),
    ]);
    t.row(vec![
        "fast-path fsyncs".into(),
        format!(
            "{fastpath_fsyncs} ({:.1} spends/fsync)",
            fastpath_total as f64 / (fastpath_fsyncs.max(1)) as f64
        ),
    ]);
    t.row(vec!["coalesce rate".into(), format!("{coalesce_rate:.4}")]);
    t.row(vec!["engine prepares".into(), sched.prepares.to_string()]);
    t.row(vec![
        "busy rejections".into(),
        sched.busy_rejected.to_string(),
    ]);
    t.row(vec![
        "peak queue depth".into(),
        sched.peak_queued.to_string(),
    ]);
    t.row(vec!["peak batch".into(), sched.peak_batch.to_string()]);
    t.row(vec!["queue wait p50 (µs)".into(), queue_p50.to_string()]);
    t.row(vec!["queue wait p99 (µs)".into(), queue_p99.to_string()]);
    t.row(vec!["ledger fsync p50 (µs)".into(), fsync_p50.to_string()]);
    t.row(vec!["ledger fsync p99 (µs)".into(), fsync_p99.to_string()]);
    t.row(vec!["ledger batch p50".into(), batch_p50.to_string()]);
    t.row(vec!["ledger batch max".into(), batch_max.to_string()]);
    t.row(vec![
        "commit wait p50 (µs)".into(),
        commit_wait_p50.to_string(),
    ]);
    t.row(vec![
        "commit wait p99 (µs)".into(),
        commit_wait_p99.to_string(),
    ]);
    t.row(vec![
        "cold prepare p50, columnar (µs)".into(),
        format!("{cold_col_p50:.0}"),
    ]);
    t.row(vec![
        "cold prepare p99, columnar (µs)".into(),
        format!("{cold_col_p99:.0}"),
    ]);
    t.row(vec![
        "cold prepare p50, row (µs)".into(),
        format!("{cold_row_p50:.0}"),
    ]);
    t.row(vec![
        "cold prepare p99, row (µs)".into(),
        format!("{cold_row_p99:.0}"),
    ]);
    t.row(vec![
        "cold prepare speedup".into(),
        format!("{cold_speedup:.2}x"),
    ]);
    t.print();

    let payload = format!(
        "{{\n  \"records\": {records},\n  \"clients\": {clients},\n  \
         \"contended_clients\": {contended_clients},\n  \
         \"requests_per_client\": {requests},\n  \"threads\": {},\n  \
         \"total_releases\": {total},\n  \"wall_seconds\": {wall_s:.4},\n  \
         \"qps\": {qps:.1},\n  \"latency_us\": {{\"p50\": {p50:.1}, \"p90\": {p90:.1}, \
         \"p99\": {p99:.1}, \"max\": {max:.1}}},\n  \
         \"contended\": {{\"qps\": {contended_qps:.1}, \"p50_us\": {c_p50:.1}, \
         \"p99_us\": {c_p99:.1}}},\n  \
         \"fastpath\": {{\"releases\": {fastpath_total}, \"qps\": {fastpath_qps:.1}, \
         \"p50_us\": {f_p50:.1}, \"p99_us\": {f_p99:.1}, \"hits\": {fastpath_hits}, \
         \"fsyncs\": {fastpath_fsyncs}}},\n  \
         \"sched\": {{\"coalesce_rate\": {coalesce_rate:.4}, \"prepares\": {}, \
         \"coalesced\": {}, \"batches\": {}, \"peak_batch\": {}, \"peak_queued\": {}, \
         \"busy_rejected\": {}, \"shed_deadline\": {}}},\n  \
         \"server_side_us\": {{\"queue_wait\": {{\"p50\": {queue_p50}, \"p99\": {queue_p99}}}, \
         \"ledger_fsync\": {{\"p50\": {fsync_p50}, \"p99\": {fsync_p99}}}, \
         \"commit_wait\": {{\"p50\": {commit_wait_p50}, \"p99\": {commit_wait_p99}}}}},\n  \
         \"ledger_batch\": {{\"p50\": {batch_p50}, \"max\": {batch_max}}},\n  \
         \"cold_prepare_us\": {{\"rows\": {cold_rows}, \"iters\": {cold_iters}, \
         \"columnar\": {{\"p50\": {cold_col_p50:.1}, \"p99\": {cold_col_p99:.1}}}, \
         \"row\": {{\"p50\": {cold_row_p50:.1}, \"p99\": {cold_row_p99:.1}}}, \
         \"speedup\": {cold_speedup:.3}}}\n}}",
        cfg.threads,
        sched.prepares,
        sched.coalesced,
        sched.batches,
        sched.peak_batch,
        sched.peak_queued,
        sched.busy_rejected,
        sched.shed_deadline
    );
    match crate::report::write_bench_json("SERVE", &payload) {
        Ok(path) => println!("\nwrote serving metrics to {}", path.display()),
        Err(e) => eprintln!("\ncannot write BENCH_SERVE.json: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Figure 4(b): runtime vs sample size
// ---------------------------------------------------------------------------

/// Figure 4(b): UPA runtime as the sample size `n` grows (near-flat up
/// to 10^5 in the paper thanks to reuse of cached intermediate results).
pub fn fig4b(cfg: &ExpConfig) {
    let (ctx, data, queries) = setup_with_scan(cfg, cfg.scan_cost_ns);
    println!("== Figure 4(b): UPA runtime vs sample size n ==");
    println!("(paper: runtime stays near-constant up to n=10^5 because the");
    println!(" union-preserving reduce reuses R(M(S')) and cached sample state)\n");

    let selected = ["TPCH1", "TPCH6", "TPCH4", "KMeans", "LinearRegression"];
    let sample_sizes = [100usize, 1_000, 10_000, 100_000];
    let mut t = Table::new(&{
        let mut h = vec!["sample size n"];
        h.extend(selected);
        h
    });
    for (si, &n) in sample_sizes.iter().enumerate() {
        let mut cells = vec![n.to_string()];
        for name in &selected {
            let q = queries
                .iter()
                .find(|q| q.name() == *name)
                .expect("query exists");
            let mut upa = upa_for(&ctx, n, cfg.seed + 2_500 + si as u64, true);
            let (_, upa_ms) = time_median(cfg.trials, || {
                q.run_upa(&mut upa, &data).expect("query runs")
            });
            cells.push(format!("{upa_ms:.1}ms"));
        }
        t.row(cells);
    }
    t.print();
    println!("\n(n larger than a table samples every record of that table)");
}
