//! Reproduction harness for the UPA paper's evaluation section.
//!
//! One binary per table/figure regenerates the corresponding result:
//!
//! | Binary             | Paper artefact                               |
//! |--------------------|----------------------------------------------|
//! | `table2_support`   | Table II — query/dataset support matrix      |
//! | `fig2a_rmse`       | Figure 2(a) — sensitivity RMSE, UPA vs FLEX  |
//! | `fig2b_overhead`   | Figure 2(b) — runtime normalized to vanilla  |
//! | `fig3_coverage`    | Figure 3 — neighbour-output coverage vs `n`  |
//! | `fig4a_scalability`| Figure 4(a) — overhead vs dataset size       |
//! | `fig4b_samplesize` | Figure 4(b) — runtime vs sample size `n`     |
//! | `stage_audit`      | per-stage wall-clock + JSON query audits     |
//! | `reproduce_all`    | everything above, in sequence                |
//!
//! Scale is configurable through environment variables
//! (`UPA_BENCH_ORDERS`, `UPA_BENCH_ML_RECORDS`, `UPA_BENCH_TRIALS`,
//! `UPA_BENCH_THREADS`); defaults are laptop-sized. Absolute numbers are
//! not expected to match the paper's 5-node/40 GbE cluster — the *shape*
//! (who wins, by what order of magnitude, where overhead rises and falls)
//! is the reproduction target, and each experiment prints the paper's
//! reference claim next to the measured value.

pub mod experiments;
pub mod report;

pub use experiments::ExpConfig;
