//! Criterion benchmarks of the UPA pipeline against its baselines:
//! vanilla execution (what Figure 2(b) normalizes to) and the engine's
//! plain reduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::Context;
use upa_core::domain::EmpiricalSampler;
use upa_core::query::MapReduceQuery;
use upa_core::{Upa, UpaConfig};

fn workload(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 + 5) % 101) as f64).collect()
}

fn sum_query() -> MapReduceQuery<f64, f64, f64> {
    MapReduceQuery::scalar_sum("sum", |x: &f64| *x).with_half_key(|x: &f64| x.to_bits())
}

fn bench_upa_vs_vanilla(c: &mut Criterion) {
    let ctx = Context::with_threads(4);
    let data = workload(100_000);
    let ds = ctx.parallelize(data.clone(), 8);
    let query = sum_query();
    let domain = EmpiricalSampler::new(data);

    let mut group = c.benchmark_group("upa/sum_100k");
    group.sample_size(15);
    group.bench_function("vanilla", |b| {
        let m = query.mapper();
        b.iter(|| {
            let m = m.clone();
            ds.map(move |t| m(t)).reduce(|a, b| a + b)
        })
    });
    group.bench_function("upa_full_pipeline", |b| {
        let mut upa = Upa::new(
            ctx.clone(),
            UpaConfig {
                sample_size: 1_000,
                ..UpaConfig::default()
            },
        );
        b.iter(|| upa.run(&ds, &query, &domain).expect("runs"))
    });
    group.finish();
}

fn bench_sample_size_scaling(c: &mut Criterion) {
    let ctx = Context::with_threads(4);
    let data = workload(100_000);
    let ds = ctx.parallelize(data.clone(), 8);
    let query = sum_query();
    let domain = EmpiricalSampler::new(data);

    let mut group = c.benchmark_group("upa/sample_size");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut upa = Upa::new(
                ctx.clone(),
                UpaConfig {
                    sample_size: n,
                    ..UpaConfig::default()
                },
            );
            b.iter(|| upa.run(&ds, &query, &domain).expect("runs"))
        });
    }
    group.finish();
}

fn bench_dataset_size_scaling(c: &mut Criterion) {
    let ctx = Context::with_threads(4);
    let query = sum_query();
    let mut group = c.benchmark_group("upa/dataset_size");
    group.sample_size(10);
    for size in [25_000usize, 100_000, 400_000] {
        let data = workload(size);
        let ds = ctx.parallelize(data.clone(), 8);
        let domain = EmpiricalSampler::new(data);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut upa = Upa::new(
                ctx.clone(),
                UpaConfig {
                    sample_size: 1_000,
                    ..UpaConfig::default()
                },
            );
            b.iter(|| upa.run(&ds, &query, &domain).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_upa_vs_vanilla,
    bench_sample_size_scaling,
    bench_dataset_size_scaling
);
criterion_main!(benches);
