//! Ablation: the union-preserving reuse (prefix/suffix partial
//! reductions over `R(M(S′))`) versus the literal brute force the paper
//! contrasts against. This is the design choice DESIGN.md calls out —
//! the reuse turns O(n·|x|) neighbour evaluation into O(|x| + n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use upa_core::brute::{blackbox_local_sensitivity, exact_local_sensitivity};
use upa_core::domain::EmpiricalSampler;
use upa_core::query::MapReduceQuery;

fn workload(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 13 + 7) % 89) as f64).collect()
}

fn bench_reuse_vs_blackbox(c: &mut Criterion) {
    let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
    let mut group = c.benchmark_group("ground_truth");
    group.sample_size(10);
    for size in [250usize, 500, 1_000] {
        let data = workload(size);
        let domain = EmpiricalSampler::new(data.clone());
        group.bench_with_input(
            BenchmarkId::new("union_preserving_reuse", size),
            &size,
            |b, _| b.iter(|| exact_local_sensitivity(&data, &query, &domain, 50, 3)),
        );
        group.bench_with_input(
            BenchmarkId::new("blackbox_bruteforce", size),
            &size,
            |b, _| b.iter(|| blackbox_local_sensitivity(&data, &query, &domain, 50, 3)),
        );
    }
    group.finish();
}

/// The reuse path alone keeps scaling linearly far past the point where
/// the blackbox path becomes unusable.
fn bench_reuse_at_scale(c: &mut Criterion) {
    let query = MapReduceQuery::scalar_sum("sum", |x: &f64| *x);
    let mut group = c.benchmark_group("ground_truth/reuse_only");
    group.sample_size(10);
    for size in [10_000usize, 100_000] {
        let data = workload(size);
        let domain = EmpiricalSampler::new(data.clone());
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| exact_local_sensitivity(&data, &query, &domain, 50, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reuse_vs_blackbox, bench_reuse_at_scale);
criterion_main!(benches);
