//! Criterion benchmarks of the relational executor (the SparkSQL
//! substitute): parse, filter scan, shuffle join and aggregate.

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::Context;
use upa_relational::exec::Catalog;
use upa_relational::parse_sql;
use upa_relational::value::{Relation, Row, Schema, Value};

fn catalog() -> Catalog {
    let ctx = Context::with_threads(4);
    let mut c = Catalog::new();
    let facts: Vec<Row> = (0..100_000)
        .map(|i| {
            vec![
                Value::Int(i % 1_000),
                Value::Float((i % 97) as f64),
                Value::Int(i % 7),
            ]
        })
        .collect();
    c.register(Relation::from_rows(
        &ctx,
        Schema::new("facts", &["key", "amount", "grp"]),
        facts,
        8,
    ));
    let dims: Vec<Row> = (0..1_000)
        .map(|i| vec![Value::Int(i), Value::Int(i % 25)])
        .collect();
    c.register(Relation::from_rows(
        &ctx,
        Schema::new("dims", &["key", "region"]),
        dims,
        4,
    ));
    c
}

fn bench_parse(c: &mut Criterion) {
    let sql = "SELECT SUM(facts.amount * 2.0) FROM facts \
               JOIN dims ON facts.key = dims.key \
               WHERE dims.region < 10 AND facts.grp IN (1, 2, 3) AND NOT facts.amount >= 90.0";
    c.bench_function("relational/parse_sql", |b| {
        b.iter(|| parse_sql(std::hint::black_box(sql)).expect("parses"))
    });
}

fn bench_execute(c: &mut Criterion) {
    let cat = catalog();
    let filter_count =
        parse_sql("SELECT COUNT(*) FROM facts WHERE amount < 50.0 AND grp <> 3").expect("parses");
    let join_sum = parse_sql(
        "SELECT SUM(facts.amount) FROM facts JOIN dims ON facts.key = dims.key \
         WHERE dims.region < 10",
    )
    .expect("parses");
    let mut group = c.benchmark_group("relational/execute_100k");
    group.sample_size(12);
    group.bench_function("filter_count", |b| {
        b.iter(|| cat.execute(&filter_count).expect("runs"))
    });
    group.bench_function("join_sum", |b| {
        b.iter(|| cat.execute(&join_sum).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_execute);
criterion_main!(benches);
