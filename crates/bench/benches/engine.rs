//! Criterion microbenchmarks of the dataflow engine (the Spark
//! substitute): narrow ops, shuffle reduce and hash join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::{Context, PairOps};

fn bench_narrow_ops(c: &mut Criterion) {
    let ctx = Context::with_threads(4);
    let data: Vec<i64> = (0..200_000).collect();
    let ds = ctx.parallelize(data, 8);
    let mut group = c.benchmark_group("engine/narrow");
    group.sample_size(20);
    group.bench_function("map_reduce_sum", |b| {
        b.iter(|| ds.map(|x| x * 2).reduce(|a, b| a + b))
    });
    group.bench_function("filter_count", |b| {
        b.iter(|| ds.filter(|x| x % 3 == 0).count())
    });
    group.bench_function("aggregate_moments", |b| {
        b.iter(|| {
            ds.aggregate(
                (0.0f64, 0u64),
                |(s, n), x| (s + *x as f64, n + 1),
                |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2),
            )
        })
    });
    group.finish();
}

fn bench_shuffle_ops(c: &mut Criterion) {
    let ctx = Context::with_threads(4);
    let pairs: Vec<(u64, u64)> = (0..100_000).map(|i| (i % 1_000, i)).collect();
    let ds = ctx.parallelize(pairs, 8);
    let right: Vec<(u64, u64)> = (0..10_000).map(|i| (i % 1_000, i)).collect();
    let rds = ctx.parallelize(right, 4);
    let mut group = c.benchmark_group("engine/shuffle");
    group.sample_size(15);
    group.bench_function("reduce_by_key", |b| {
        b.iter(|| ds.reduce_by_key(|a, b| a + b).len())
    });
    group.bench_function("hash_join", |b| b.iter(|| ds.join(&rds).len()));
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let ctx = Context::with_threads(4);
    let data: Vec<i64> = (0..200_000).collect();
    let mut group = c.benchmark_group("engine/partitions");
    group.sample_size(15);
    for parts in [1usize, 4, 16] {
        let ds = ctx.parallelize(data.clone(), parts);
        group.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, _| {
            b.iter(|| ds.map(|x| x.wrapping_mul(31)).reduce(|a, b| a ^ b))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_narrow_ops,
    bench_shuffle_ops,
    bench_partitioning
);
criterion_main!(benches);
