//! Property-based tests of the statistics substrate.

use proptest::prelude::*;
use upa_stats::erf::{norm_cdf, norm_quantile};
use upa_stats::ks::ks_statistic;
use upa_stats::sampling::{sample_indices, Zipf};
use upa_stats::{Laplace, Normal, OnlineMoments};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The normal quantile is monotone in p and inverts the CDF.
    #[test]
    fn quantile_monotone_and_inverse(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let (qlo, qhi) = (norm_quantile(lo), norm_quantile(hi));
        prop_assert!(qlo <= qhi + 1e-12);
        prop_assert!((norm_cdf(qlo) - lo).abs() < 1e-5);
    }

    /// MLE fitting recovers location/scale shifts exactly.
    #[test]
    fn mle_is_equivariant(
        base in prop::collection::vec(-10.0f64..10.0, 2..100),
        shift in -100.0f64..100.0,
        scale in 0.1f64..10.0,
    ) {
        let fit = Normal::mle(&base).unwrap();
        let transformed: Vec<f64> = base.iter().map(|x| x * scale + shift).collect();
        let fit2 = Normal::mle(&transformed).unwrap();
        prop_assert!((fit2.mean() - (fit.mean() * scale + shift)).abs() < 1e-6 * (1.0 + fit2.mean().abs()));
        prop_assert!((fit2.std_dev() - fit.std_dev() * scale).abs() < 1e-6 * (1.0 + fit2.std_dev()));
    }

    /// Laplace CDF is monotone with median at the location.
    #[test]
    fn laplace_cdf_properties(loc in -50.0f64..50.0, scale in 0.1f64..20.0, x in -100.0f64..100.0) {
        let l = Laplace::new(loc, scale).unwrap();
        prop_assert!((l.cdf(loc) - 0.5).abs() < 1e-12);
        prop_assert!(l.cdf(x) >= 0.0 && l.cdf(x) <= 1.0);
        prop_assert!(l.cdf(x + 1.0) >= l.cdf(x));
    }

    /// Welford moments equal the two-pass computation for any split.
    #[test]
    fn moments_merge_any_split(
        values in prop::collection::vec(-1000.0f64..1000.0, 1..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((values.len() as f64) * split_frac) as usize;
        let (a, b) = values.split_at(split.min(values.len()));
        let ma: OnlineMoments = a.iter().copied().collect();
        let mb: OnlineMoments = b.iter().copied().collect();
        let mut merged = ma;
        merged.merge(&mb);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((merged.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((merged.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// Sampled indices are distinct, sorted, in range, of the right count.
    #[test]
    fn sample_indices_invariants(len in 1usize..2000, n in 0usize..2500, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let idx = sample_indices(&mut rng, len, n);
        prop_assert_eq!(idx.len(), n.min(len));
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(idx.iter().all(|&i| i < len));
    }

    /// Zipf samples stay in the support for any exponent.
    #[test]
    fn zipf_support(n in 1usize..500, s in 0.0f64..3.0, seed in 0u64..100) {
        use rand::SeedableRng;
        let z = Zipf::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = z.sample(&mut rng);
            prop_assert!(v >= 1 && v <= n);
        }
    }

    /// The KS statistic is within [0, 1] and zero-ish for the fitted CDF
    /// of constant samples.
    #[test]
    fn ks_bounds(values in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let fit = Normal::mle(&values).unwrap();
        if fit.std_dev() > 0.0 {
            let d = ks_statistic(&values, &fit).unwrap();
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
