//! Statistics substrate for the UPA reproduction.
//!
//! UPA (DSN 2020, §IV-A) infers a local-sensitivity value by fitting a
//! normal distribution to the outputs of a query on sampled neighbouring
//! datasets via maximum-likelihood estimation, and then taking the
//! difference between the 1st and 99th percentiles of that distribution.
//! The released output is perturbed with Laplace noise calibrated to that
//! sensitivity.
//!
//! This crate provides, from scratch (no third-party numerics):
//!
//! * [`erf`] — error function, complementary error function and the inverse
//!   normal CDF used for percentile computation;
//! * [`normal`] — the [`normal::Normal`] distribution with MLE fitting,
//!   CDF/quantiles and sampling;
//! * [`laplace`] — the [`laplace::Laplace`] distribution and the Laplace
//!   mechanism used for the final iDP release;
//! * [`moments`] — numerically stable online moments (Welford);
//! * [`sampling`] — uniform sampling without replacement, reservoir
//!   sampling and a bounded Zipf sampler (used by the TPC-H generator to
//!   create skewed join keys);
//! * [`rmse`] — the error metrics reported in the paper's Figure 2(a).
//!
//! # Example
//!
//! ```
//! use upa_stats::normal::Normal;
//!
//! // Fit a normal distribution to neighbour outputs by MLE and read the
//! // P1/P99 range that UPA uses as the enforced output range.
//! let outputs = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9];
//! let fit = Normal::mle(&outputs).expect("non-empty sample");
//! let (lo, hi) = (fit.quantile(0.01), fit.quantile(0.99));
//! assert!(lo < hi);
//! ```

pub mod erf;
pub mod ks;
pub mod laplace;
pub mod moments;
pub mod normal;
pub mod rmse;
pub mod sampling;

pub use laplace::{Laplace, LaplaceMechanism};
pub use moments::OnlineMoments;
pub use normal::Normal;

/// Error type for statistics routines that require non-degenerate input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample was empty.
    EmptySample,
    /// A parameter was invalid (e.g. non-positive scale, probability
    /// outside `(0, 1)`). The payload names the offending parameter.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "empty sample"),
            StatsError::InvalidParameter(name) => write!(f, "invalid parameter: {name}"),
        }
    }
}

impl std::error::Error for StatsError {}
