//! Error function and inverse normal CDF, implemented from scratch.
//!
//! * [`erf`] / [`erfc`] use the Abramowitz–Stegun 7.1.26 rational
//!   approximation refined for the tails (absolute error < 1.5e-7, which is
//!   far below the sampling error of UPA's 1000-sample inference).
//! * [`norm_cdf`] is the standard normal CDF built on [`erf`].
//! * [`norm_quantile`] is Acklam's rational approximation of the inverse
//!   standard-normal CDF, followed by one Halley refinement step against
//!   [`norm_cdf`], giving ~1e-9 relative accuracy over `(0, 1)`.

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x e^{-t²} dt`.
///
/// Uses the Abramowitz–Stegun 7.1.26 approximation. Absolute error is below
/// `1.5e-7` for all real `x`.
///
/// ```
/// use upa_stats::erf::erf;
/// assert!((erf(0.0)).abs() < 1e-8);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // erf is odd: erf(-x) = -erf(x).
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    // Abramowitz & Stegun 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// ```
/// use upa_stats::erf::{erf, erfc};
/// let x = 0.7;
/// assert!((erfc(x) - (1.0 - erf(x))).abs() < 1e-12);
/// ```
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use upa_stats::erf::norm_cdf;
/// assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((norm_cdf(1.959963985) - 0.975).abs() < 1e-6);
/// ```
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function `Φ⁻¹(p)`).
///
/// Implemented with Peter Acklam's rational approximation plus one Halley
/// refinement step. Relative error is around `1e-9` for `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// use upa_stats::erf::norm_quantile;
/// assert!((norm_quantile(0.5)).abs() < 1e-7);
/// assert!((norm_quantile(0.975) - 1.959963985).abs() < 1e-5);
/// assert!((norm_quantile(0.01) + norm_quantile(0.99)).abs() < 1e-9);
/// ```
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "norm_quantile: p must be in (0, 1), got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail (by symmetry).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step: u = (Φ(x) - p) / φ(x).
    let e = norm_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if pdf > 0.0 {
        let u = e / pdf;
        x - u / (1.0 + x * u / 2.0)
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in -100..=100 {
            let x = i as f64 / 10.0;
            // The A&S approximation has ~1e-9 absolute error at 0, so the
            // odd-symmetry check is to approximation accuracy, not exact.
            assert!((erf(x) + erf(-x)).abs() < 1e-8);
            assert!(erf(x).abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn erf_monotone() {
        let mut prev = erf(-6.0);
        for i in -59..=60 {
            let cur = erf(i as f64 / 10.0);
            assert!(cur >= prev - 1e-12, "erf must be nondecreasing");
            prev = cur;
        }
    }

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.0) - 0.8413447461).abs() < 2e-7);
        assert!((norm_cdf(-1.0) - 0.1586552539).abs() < 2e-7);
        assert!((norm_cdf(2.326347874) - 0.99).abs() < 2e-7);
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for &p in &[0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let x = norm_quantile(p);
            assert!(
                (norm_cdf(x) - p).abs() < 1e-6,
                "round trip failed at p={p}: x={x}, cdf={}",
                norm_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3] {
            assert!((norm_quantile(p) + norm_quantile(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn quantile_rejects_zero() {
        norm_quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn quantile_rejects_one() {
        norm_quantile(1.0);
    }
}
