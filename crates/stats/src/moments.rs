//! Numerically stable online moments (Welford's algorithm).
//!
//! Used by the benchmark harness to summarise neighbour-output
//! distributions (Figure 3) and by the engine's metrics to aggregate task
//! timings without retaining every observation.

/// Online mean/variance/min/max accumulator.
///
/// ```
/// use upa_stats::OnlineMoments;
/// let mut m = OnlineMoments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 4);
/// assert!((m.mean() - 2.5).abs() < 1e-12);
/// assert_eq!(m.min(), Some(1.0));
/// assert_eq!(m.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel Welford); the
    /// merge is the reason the accumulator itself is a commutative,
    /// associative reducer and can run inside the dataflow engine.
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`1/n` normaliser, matching the MLE fit); 0 when
    /// fewer than two observations have been pushed.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for OnlineMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = OnlineMoments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

impl Extend<f64> for OnlineMoments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let m = OnlineMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let m: OnlineMoments = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((m.mean() - mean).abs() < 1e-9);
        assert!((m.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let (a, b) = data.split_at(123);
        let ma: OnlineMoments = a.iter().copied().collect();
        let mb: OnlineMoments = b.iter().copied().collect();
        let mut merged = ma;
        merged.merge(&mb);
        let seq: OnlineMoments = data.iter().copied().collect();
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        assert!((merged.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let m: OnlineMoments = [1.0, 2.0].into_iter().collect();
        let mut lhs = m;
        lhs.merge(&OnlineMoments::new());
        assert_eq!(lhs, m);
        let mut rhs = OnlineMoments::new();
        rhs.merge(&m);
        assert_eq!(rhs, m);
    }

    #[test]
    fn merge_is_commutative() {
        let ma: OnlineMoments = [1.0, 5.0, 9.0].into_iter().collect();
        let mb: OnlineMoments = [-2.0, 0.5].into_iter().collect();
        let mut ab = ma;
        ab.merge(&mb);
        let mut ba = mb;
        ba.merge(&ma);
        assert!((ab.mean() - ba.mean()).abs() < 1e-12);
        assert!((ab.variance() - ba.variance()).abs() < 1e-12);
        assert_eq!(ab.count(), ba.count());
    }
}
