//! Error metrics used by the paper's accuracy evaluation (Figure 2a).
//!
//! The paper reports the Root Mean Square Error between the sensitivity
//! values inferred by UPA (or FLEX) and the ground-truth local sensitivity
//! computed by brute force, expressed relative to the ground truth ("UPA
//! incurred on average 3.81% RMSE").

use crate::StatsError;

/// Root mean square error between `estimates` and `truths`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] if the slices are empty and
/// [`StatsError::InvalidParameter`] if their lengths differ.
///
/// ```
/// use upa_stats::rmse::rmse;
/// let e = rmse(&[1.0, 2.0], &[1.0, 4.0]).unwrap();
/// assert!((e - (2.0f64).sqrt() * (2.0f64).sqrt() / (2.0f64).sqrt()).abs() < 1e-9);
/// ```
pub fn rmse(estimates: &[f64], truths: &[f64]) -> Result<f64, StatsError> {
    if estimates.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if estimates.len() != truths.len() {
        return Err(StatsError::InvalidParameter("length mismatch"));
    }
    let sum_sq: f64 = estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t) * (e - t))
        .sum();
    Ok((sum_sq / estimates.len() as f64).sqrt())
}

/// Relative RMSE: RMSE normalised by the root-mean-square of the ground
/// truth. This is the "% RMSE" figure the paper quotes (3.81% average for
/// UPA). Falls back to the absolute RMSE when the truth is identically
/// zero.
///
/// # Errors
///
/// Same as [`rmse`].
pub fn relative_rmse(estimates: &[f64], truths: &[f64]) -> Result<f64, StatsError> {
    let abs = rmse(estimates, truths)?;
    let truth_rms = (truths.iter().map(|t| t * t).sum::<f64>() / truths.len() as f64).sqrt();
    if truth_rms == 0.0 {
        Ok(abs)
    } else {
        Ok(abs / truth_rms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_equal_inputs() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&xs, &xs).unwrap(), 0.0);
        assert_eq!(relative_rmse(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn hand_computed_case() {
        // errors: 1, -1 -> mean square 1 -> rmse 1.
        let e = rmse(&[2.0, 2.0], &[1.0, 3.0]).unwrap();
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_normalises_by_truth_magnitude() {
        // 10% error on each of two large truths.
        let e = relative_rmse(&[110.0, 220.0], &[100.0, 200.0]).unwrap();
        assert!((e - 0.1).abs() < 1e-12, "got {e}");
    }

    #[test]
    fn relative_falls_back_when_truth_is_zero() {
        let e = relative_rmse(&[0.5, -0.5], &[0.0, 0.0]).unwrap();
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(rmse(&[], &[]), Err(StatsError::EmptySample));
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
    }
}
