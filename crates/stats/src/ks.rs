//! Kolmogorov–Smirnov goodness-of-fit statistic and a fixed-width
//! histogram.
//!
//! The paper's §VI-C explains UPA's residual inaccuracy by how well the
//! neighbour-output distribution matches the fitted normal ("the output
//! values … may not perfectly follow a normal distribution"). The KS
//! statistic quantifies that: the Figure 3 harness reports it per query,
//! and it correlates with the observed coverage loss.

use crate::normal::Normal;
use crate::StatsError;

/// The Kolmogorov–Smirnov statistic `sup_x |F_emp(x) − F(x)|` between a
/// sample and a reference normal distribution.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for an empty sample.
///
/// ```
/// use upa_stats::{ks::ks_statistic, Normal};
/// let n = Normal::new(0.0, 1.0).unwrap();
/// // A sample drawn far from N(0, 1) has a large KS distance.
/// let d = ks_statistic(&[10.0, 11.0, 12.0], &n).unwrap();
/// assert!(d > 0.99);
/// ```
pub fn ks_statistic(samples: &[f64], reference: &Normal) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, x) in sorted.iter().enumerate() {
        let cdf = reference.cdf(*x);
        // Empirical CDF jumps from i/n to (i+1)/n at x; check both sides.
        let below = i as f64 / n;
        let above = (i + 1) as f64 / n;
        d = d.max((cdf - below).abs()).max((above - cdf).abs());
    }
    Ok(d)
}

/// KS distance between a sample and its own MLE normal fit — the
/// "how normal is this distribution" number reported by the Figure 3
/// harness.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for an empty sample and propagates
/// fit errors.
pub fn ks_vs_normal_fit(samples: &[f64]) -> Result<f64, StatsError> {
    let fit = Normal::mle(samples)?;
    if fit.std_dev() == 0.0 {
        // A point mass is matched exactly by its degenerate fit.
        return Ok(0.0);
    }
    ks_statistic(samples, &fit)
}

/// A fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins
    /// spanning the sample range (single-valued samples produce one full
    /// bin).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; bins];
        if samples.is_empty() {
            return Histogram {
                min: 0.0,
                max: 0.0,
                counts,
            };
        }
        let width = (max - min).max(f64::MIN_POSITIVE);
        for &x in samples {
            let idx = (((x - min) / width) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        Histogram { min, max, counts }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The sampled range `(min, max)`.
    pub fn range(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// A one-line sparkline rendering (for terminal reports).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        self.counts
            .iter()
            .map(|&c| {
                if max == 0 {
                    LEVELS[0]
                } else {
                    LEVELS[((c as f64 / max as f64) * 7.0).round() as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ks_is_small_for_normal_samples() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..5_000).map(|_| n.sample(&mut rng)).collect();
        let d = ks_vs_normal_fit(&samples).unwrap();
        // For 5000 genuinely normal samples the KS statistic is ~0.01.
        assert!(d < 0.03, "KS {d} too large for a normal sample");
    }

    #[test]
    fn ks_is_large_for_bimodal_samples() {
        // A ±1 two-point distribution — the count query's neighbour
        // outputs — is badly non-normal.
        let samples: Vec<f64> = (0..1_000)
            .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
            .collect();
        let d = ks_vs_normal_fit(&samples).unwrap();
        assert!(d > 0.2, "bimodal sample should have a large KS, got {d}");
    }

    #[test]
    fn ks_handles_degenerate_samples() {
        assert_eq!(ks_vs_normal_fit(&[5.0; 50]).unwrap(), 0.0);
        assert!(ks_vs_normal_fit(&[]).is_err());
    }

    #[test]
    fn ks_statistic_bounds() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let d = ks_statistic(&[0.0], &n).unwrap();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn histogram_counts_and_range() {
        // Bins are half-open [lo, mid), [mid, hi]: 0.0 and 0.4 fall in
        // the first, 0.6 and 1.0 in the second.
        let h = Histogram::from_samples(&[0.0, 0.4, 0.6, 1.0], 2);
        assert_eq!(h.total(), 4);
        assert_eq!(h.range(), (0.0, 1.0));
        assert_eq!(h.counts(), &[2, 2]);
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::from_samples(&[7.0; 10], 4);
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts().iter().copied().max(), Some(10));
    }

    #[test]
    fn sparkline_has_one_char_per_bin() {
        let h = Histogram::from_samples(&[0.0, 1.0, 2.0, 3.0], 8);
        assert_eq!(h.sparkline().chars().count(), 8);
    }
}
