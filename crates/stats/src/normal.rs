//! The normal distribution with MLE fitting, quantiles and sampling.
//!
//! UPA (§IV-A) models the outputs of a query on neighbouring datasets as a
//! normal random variable, fits it to the sampled neighbour outputs by
//! maximum-likelihood estimation and uses the P1–P99 interval as both the
//! local-sensitivity estimate and the enforced output range.

use crate::erf::{norm_cdf, norm_quantile};
use crate::StatsError;
use rand::Rng;

/// A normal (Gaussian) distribution parameterised by mean and standard
/// deviation.
///
/// ```
/// use upa_stats::Normal;
/// let n = Normal::new(0.0, 1.0).unwrap();
/// assert!((n.cdf(0.0) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `std_dev` is negative,
    /// NaN, or infinite, or if `mean` is not finite. A zero standard
    /// deviation is allowed and denotes a degenerate (point-mass)
    /// distribution, which arises naturally in UPA when every neighbouring
    /// dataset yields the same output (e.g. a count query on a dataset where
    /// every record matches).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter("mean"));
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(StatsError::InvalidParameter("std_dev"));
        }
        Ok(Normal { mean, std_dev })
    }

    /// Fits a normal distribution to `samples` by maximum-likelihood
    /// estimation (the MLE variance uses the `1/n` normaliser, as in the
    /// paper's Algorithm 1, line 18).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] for an empty input.
    ///
    /// ```
    /// use upa_stats::Normal;
    /// let fit = Normal::mle(&[1.0, 2.0, 3.0]).unwrap();
    /// assert!((fit.mean() - 2.0).abs() < 1e-12);
    /// ```
    pub fn mle(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Normal::new(mean, var.sqrt())
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// The cumulative distribution function.
    ///
    /// For a degenerate distribution (`std_dev == 0`) this is a step
    /// function at the mean.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        norm_cdf((x - self.mean) / self.std_dev)
    }

    /// The quantile function (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    ///
    /// ```
    /// use upa_stats::Normal;
    /// let n = Normal::new(10.0, 2.0).unwrap();
    /// assert!((n.quantile(0.5) - 10.0).abs() < 1e-6);
    /// ```
    pub fn quantile(&self, p: f64) -> f64 {
        if self.std_dev == 0.0 {
            assert!(p > 0.0 && p < 1.0, "quantile: p must be in (0, 1)");
            return self.mean;
        }
        self.mean + self.std_dev * norm_quantile(p)
    }

    /// The P1–P99 interval `(quantile(0.01), quantile(0.99))` used by UPA as
    /// the enforced output range `Ô_f` (Algorithm 1, line 19).
    pub fn percentile_range(&self) -> (f64, f64) {
        (self.quantile(0.01), self.quantile(0.99))
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        // Box–Muller: u1 in (0, 1], u2 in [0, 1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mle_matches_hand_computation() {
        let fit = Normal::mle(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((fit.mean() - 5.0).abs() < 1e-12);
        // Population (MLE) standard deviation of this classic sample is 2.
        assert!((fit.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mle_rejects_empty() {
        assert_eq!(Normal::mle(&[]), Err(StatsError::EmptySample));
    }

    #[test]
    fn mle_on_constant_sample_is_degenerate() {
        let fit = Normal::mle(&[3.0; 10]).unwrap();
        assert_eq!(fit.std_dev(), 0.0);
        assert_eq!(fit.quantile(0.01), 3.0);
        assert_eq!(fit.quantile(0.99), 3.0);
        let (lo, hi) = fit.percentile_range();
        assert_eq!((lo, hi), (3.0, 3.0));
    }

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn quantile_and_cdf_are_inverse() {
        let n = Normal::new(-3.0, 0.5).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-6);
        }
    }

    #[test]
    fn percentile_range_is_symmetric_about_mean() {
        let n = Normal::new(7.0, 2.0).unwrap();
        let (lo, hi) = n.percentile_range();
        assert!(((7.0 - lo) - (hi - 7.0)).abs() < 1e-9);
        assert!(lo < 7.0 && hi > 7.0);
    }

    #[test]
    fn sampling_matches_moments() {
        let n = Normal::new(5.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..200_000).map(|_| n.sample(&mut rng)).collect();
        let fit = Normal::mle(&samples).unwrap();
        assert!((fit.mean() - 5.0).abs() < 0.05, "mean {}", fit.mean());
        assert!((fit.std_dev() - 3.0).abs() < 0.05, "std {}", fit.std_dev());
    }

    #[test]
    fn degenerate_cdf_is_step() {
        let n = Normal::new(1.0, 0.0).unwrap();
        assert_eq!(n.cdf(0.999), 0.0);
        assert_eq!(n.cdf(1.0), 1.0);
    }
}
