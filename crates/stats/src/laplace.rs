//! The Laplace distribution and the Laplace mechanism.
//!
//! UPA's final release step (Algorithm 1, output line) adds
//! `Lap(localSen / ε)` noise to the (range-enforced) query output. This
//! module provides the distribution itself plus a small mechanism helper
//! that captures the `scale = sensitivity / epsilon` calibration.

use crate::StatsError;
use rand::Rng;

/// A Laplace distribution with location `mu` and scale `b > 0`.
///
/// ```
/// use upa_stats::Laplace;
/// let l = Laplace::new(0.0, 1.0).unwrap();
/// assert!((l.cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    location: f64,
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `scale` is not a finite
    /// positive number or `location` is not finite.
    pub fn new(location: f64, scale: f64) -> Result<Self, StatsError> {
        if !location.is_finite() {
            return Err(StatsError::InvalidParameter("location"));
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter("scale"));
        }
        Ok(Laplace { location, scale })
    }

    /// The location (median/mean) parameter.
    pub fn location(&self) -> f64 {
        self.location
    }

    /// The scale parameter `b`; the variance is `2b²`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        (-((x - self.location).abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Draws one sample by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in (-1/2, 1/2); clamp away from the singular endpoints.
        let u: f64 = rng.gen::<f64>() - 0.5;
        let u = u.clamp(-0.499_999_999, 0.499_999_999);
        self.location - self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }
}

/// The Laplace *mechanism*: noise calibrated as `sensitivity / epsilon`.
///
/// A zero sensitivity (which UPA produces when every sampled neighbouring
/// dataset yields exactly the same output) degenerates to releasing the
/// exact value — the mechanism is still ε-iDP because the output is
/// constant across neighbouring datasets within the enforced range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    sensitivity: f64,
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism for the given sensitivity and privacy budget.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `epsilon` is not a finite
    /// positive number, or `sensitivity` is negative or non-finite.
    pub fn new(sensitivity: f64, epsilon: f64) -> Result<Self, StatsError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(StatsError::InvalidParameter("epsilon"));
        }
        if !sensitivity.is_finite() || sensitivity < 0.0 {
            return Err(StatsError::InvalidParameter("sensitivity"));
        }
        Ok(LaplaceMechanism {
            sensitivity,
            epsilon,
        })
    }

    /// The sensitivity this mechanism was calibrated for.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Laplace noise scale `sensitivity / epsilon`.
    pub fn noise_scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Releases `value + Lap(sensitivity / epsilon)`.
    pub fn release<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        let b = self.noise_scale();
        if b == 0.0 {
            return value;
        }
        // Safe: b is finite and positive here.
        Laplace::new(0.0, b).expect("valid scale").sample(rng) + value
    }

    /// Releases a vector-valued output with independent per-coordinate
    /// noise (used for the ML queries whose output is a model vector).
    pub fn release_vec<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Vec<f64> {
        values.iter().map(|&v| self.release(v, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
        assert!(Laplace::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let l = Laplace::new(1.0, 2.0).unwrap();
        let mut prev = 0.0;
        for i in -100..=100 {
            let c = l.cdf(i as f64 / 5.0);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let l = Laplace::new(0.0, 1.5).unwrap();
        // Trapezoidal integration over a wide interval.
        let (a, b, steps) = (-60.0f64, 60.0f64, 200_000);
        let h = (b - a) / steps as f64;
        let mut total = 0.0;
        for i in 0..steps {
            let x0 = a + i as f64 * h;
            total += 0.5 * (l.pdf(x0) + l.pdf(x0 + h)) * h;
        }
        assert!((total - 1.0).abs() < 1e-6, "integral = {total}");
    }

    #[test]
    fn sampling_matches_distribution() {
        let l = Laplace::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        // Var = 2 b^2 = 8.
        assert!((var - 8.0).abs() < 0.3, "var {var}");
        // Empirical CDF at the median.
        let below = samples.iter().filter(|&&x| x < 3.0).count() as f64 / n as f64;
        assert!((below - 0.5).abs() < 0.01);
    }

    #[test]
    fn mechanism_scale_and_zero_sensitivity() {
        let m = LaplaceMechanism::new(2.0, 0.1).unwrap();
        assert!((m.noise_scale() - 20.0).abs() < 1e-12);
        let exact = LaplaceMechanism::new(0.0, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(exact.release(42.0, &mut rng), 42.0);
    }

    #[test]
    fn mechanism_rejects_bad_parameters() {
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::new(-1.0, 0.1).is_err());
        assert!(LaplaceMechanism::new(f64::INFINITY, 0.1).is_err());
    }

    #[test]
    fn release_vec_adds_independent_noise() {
        let m = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let out = m.release_vec(&[0.0, 0.0, 0.0], &mut rng);
        assert_eq!(out.len(), 3);
        // With overwhelming probability the three draws differ.
        assert!(out[0] != out[1] || out[1] != out[2]);
    }

    /// The textbook Laplace-mechanism DP bound, checked empirically: the
    /// probability ratio of landing in any interval under two inputs that
    /// differ by at most the sensitivity must be bounded by e^ε.
    #[test]
    fn empirical_dp_ratio_bound() {
        let sensitivity = 1.0;
        let epsilon = 0.5;
        let m = LaplaceMechanism::new(sensitivity, epsilon).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 400_000;
        let f_x = 0.0;
        let f_y = 1.0; // neighbouring output, |f(x)-f(y)| = sensitivity
        let hist = |center: f64, rng: &mut StdRng| {
            let mut counts = [0usize; 40];
            for _ in 0..n {
                let v = m.release(center, rng);
                let bin = (((v + 10.0) / 0.5) as isize).clamp(0, 39) as usize;
                counts[bin] += 1;
            }
            counts
        };
        let hx = hist(f_x, &mut rng);
        let hy = hist(f_y, &mut rng);
        for (cx, cy) in hx.iter().zip(hy.iter()) {
            // Only test bins with enough mass for the empirical ratio to be
            // meaningful.
            if *cx > 2_000 && *cy > 2_000 {
                let ratio = *cx as f64 / *cy as f64;
                assert!(
                    ratio < (epsilon.exp()) * 1.15 && ratio > (-epsilon).exp() / 1.15,
                    "ratio {ratio} outside e^±ε band"
                );
            }
        }
    }
}
