//! Sampling primitives for the Partition-and-Sample phase and the data
//! generators.
//!
//! * [`sample_indices`] — uniform sampling of `n` distinct indices without
//!   replacement (Robert Floyd's algorithm), used by UPA to pick the `n`
//!   differing records `S` from the input dataset;
//! * [`Reservoir`] — single-pass reservoir sampling (Algorithm R), used
//!   when the input arrives as a stream of partitions;
//! * [`Zipf`] — a bounded Zipf sampler used by the TPC-H generator to give
//!   join keys the skewed frequency distribution that makes TPCH16/21
//!   sensitivity hard (outliers in Figure 3).

use rand::Rng;
use std::collections::HashSet;

/// Uniformly samples `n` distinct indices from `0..len` without
/// replacement, using Robert Floyd's algorithm (O(n) expected work,
/// independent of `len`).
///
/// If `n >= len`, every index is returned (this mirrors the paper's rule
/// that for datasets smaller than the sample size, `n` is set to the
/// dataset size so the *exact* local sensitivity is obtained). The returned
/// indices are sorted.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let idx = upa_stats::sampling::sample_indices(&mut rng, 100, 10);
/// assert_eq!(idx.len(), 10);
/// assert!(idx.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, len: usize, n: usize) -> Vec<usize> {
    if n >= len {
        return (0..len).collect();
    }
    let mut chosen = HashSet::with_capacity(n);
    // Floyd's algorithm: for j in len-n .. len, pick t in [0, j]; if taken,
    // take j instead.
    for j in (len - n)..len {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<usize> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Single-pass reservoir sampler (Vitter's Algorithm R).
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut r = upa_stats::sampling::Reservoir::new(3);
/// for x in 0..100 {
///     r.offer(x, &mut rng);
/// }
/// assert_eq!(r.items().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item to the reservoir.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Bounded Zipf distribution over `1..=n` with exponent `s`.
///
/// Sampling is by binary search over a precomputed CDF table, so `sample`
/// is O(log n) after O(n) setup. The TPC-H generator uses this to create
/// skewed join-key frequencies.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf: n must be positive");
        assert!(s.is_finite() && s >= 0.0, "zipf: s must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point drift at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true; kept for API
    /// completeness alongside [`Zipf::len`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let idx = sample_indices(&mut rng, 1000, 100);
            assert_eq!(idx.len(), 100);
            let set: HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), 100);
            assert!(idx.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn sample_indices_small_population_returns_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let idx = sample_indices(&mut rng, 5, 10);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        let idx = sample_indices(&mut rng, 5, 5);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            for i in sample_indices(&mut rng, 20, 2) {
                counts[i] += 1;
            }
        }
        // Each index expected 2000 times; allow generous tolerance.
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (1700..2300).contains(c),
                "index {i} drawn {c} times, expected ~2000"
            );
        }
    }

    #[test]
    fn reservoir_keeps_capacity_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hit = [0usize; 10];
        for _ in 0..20_000 {
            let mut r = Reservoir::new(2);
            for x in 0..10 {
                r.offer(x, &mut rng);
            }
            for &x in r.items() {
                hit[x] += 1;
            }
        }
        for (i, c) in hit.iter().enumerate() {
            assert!(
                (3300..4700).contains(c),
                "value {i} kept {c} times, expected ~4000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_rejects_zero_capacity() {
        let _ = Reservoir::<u32>::new(0);
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 101];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 1 must dominate rank 10 which dominates rank 100.
        assert!(
            counts[1] > counts[10] * 3,
            "{} vs {}",
            counts[1],
            counts[10]
        );
        assert!(
            counts[10] > counts[100],
            "{} vs {}",
            counts[10],
            counts[100]
        );
        assert_eq!(counts[0], 0, "zipf support starts at 1");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 5];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, count) in counts.iter().enumerate().skip(1) {
            assert!(
                (9_000..11_000).contains(count),
                "value {k} drawn {count} times"
            );
        }
    }
}
