//! Property-based tests of the relational executor.

use dataflow::Context;
use proptest::prelude::*;
use upa_relational::exec::Catalog;
use upa_relational::expr::Expr;
use upa_relational::plan::{int, LogicalPlan};
use upa_relational::value::{Relation, Row, Schema, Value};

fn catalog_from(rows: Vec<(i64, i64)>, partitions: usize) -> (Context, Catalog) {
    let ctx = Context::with_threads(2);
    let mut c = Catalog::new();
    let data: Vec<Row> = rows
        .into_iter()
        .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
        .collect();
    c.register(Relation::from_rows(
        &ctx,
        Schema::new("t", &["k", "v"]),
        data,
        partitions,
    ));
    (ctx, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// COUNT after a filter equals the direct count of matching rows.
    #[test]
    fn filter_count_matches_reference(
        rows in prop::collection::vec((0i64..20, -50i64..50), 0..200),
        threshold in -50i64..50,
        partitions in 1usize..6,
    ) {
        let want = rows.iter().filter(|(_, v)| *v >= threshold).count() as f64;
        let (_ctx, c) = catalog_from(rows, partitions);
        let plan = LogicalPlan::scan("t")
            .filter(Expr::col("v").ge(int(threshold)))
            .count();
        prop_assert_eq!(c.execute(&plan).unwrap().as_scalar().unwrap(), want);
    }

    /// SUM over a filter equals the reference sum.
    #[test]
    fn filtered_sum_matches_reference(
        rows in prop::collection::vec((0i64..20, -50i64..50), 1..200),
        threshold in -50i64..50,
    ) {
        let want: i64 = rows.iter().filter(|(k, _)| *k < threshold).map(|(_, v)| v).sum();
        let (_ctx, c) = catalog_from(rows, 3);
        let plan = LogicalPlan::scan("t")
            .filter(Expr::col("k").lt(int(threshold)))
            .sum(Expr::col("v"));
        let got = c.execute(&plan).unwrap().as_scalar().unwrap();
        prop_assert!((got - want as f64).abs() < 1e-9);
    }

    /// Self-join cardinality equals the sum of squared key frequencies.
    #[test]
    fn self_join_counts_key_frequencies(
        rows in prop::collection::vec((0i64..8, 0i64..5), 0..80),
    ) {
        let mut freq = std::collections::HashMap::new();
        for (k, _) in &rows {
            *freq.entry(*k).or_insert(0u64) += 1;
        }
        let want: u64 = freq.values().map(|c| c * c).sum();
        let (_ctx, c) = catalog_from(rows, 3);
        let plan = LogicalPlan::scan("t")
            .join(LogicalPlan::scan("t"), "t.k", "t.k")
            .count();
        prop_assert_eq!(
            c.execute(&plan).unwrap().as_scalar().unwrap(),
            want as f64
        );
    }

    /// Projection never changes the row count and keeps only the asked-for
    /// columns.
    #[test]
    fn projection_preserves_cardinality(
        rows in prop::collection::vec((0i64..20, -50i64..50), 0..100),
    ) {
        let n = rows.len();
        let (_ctx, c) = catalog_from(rows, 2);
        let plan = LogicalPlan::scan("t").project(&["v"]);
        let out = c.execute(&plan).unwrap();
        let rel = out.as_rows().unwrap();
        prop_assert_eq!(rel.len(), n);
        prop_assert_eq!(rel.schema().len(), 1);
    }

    /// Execution results are independent of the partitioning.
    #[test]
    fn results_are_partition_invariant(
        rows in prop::collection::vec((0i64..10, -20i64..20), 1..100),
        p1 in 1usize..6,
        p2 in 1usize..6,
    ) {
        let plan = LogicalPlan::scan("t")
            .filter(Expr::col("v").gt(int(0)))
            .sum(Expr::col("v").mul(Expr::col("k")));
        let (_c1, cat1) = catalog_from(rows.clone(), p1);
        let (_c2, cat2) = catalog_from(rows, p2);
        let a = cat1.execute(&plan).unwrap().as_scalar().unwrap();
        let b = cat2.execute(&plan).unwrap().as_scalar().unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }
}
