//! The plan executor: logical plans run as dataflow jobs.

use crate::plan::{Aggregate, LogicalPlan};
use crate::value::{JoinKey, Relation, Row, Schema, Value};
use crate::RelError;
use dataflow::PairOps;
use std::collections::HashMap;
use std::sync::Arc;

/// The result of executing a plan: rows or an aggregate scalar.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// A relation (non-aggregated plan).
    Rows(Relation),
    /// An aggregate scalar.
    Scalar(f64),
}

impl QueryOutput {
    /// The scalar, if the plan was an aggregate.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            QueryOutput::Scalar(s) => Some(*s),
            QueryOutput::Rows(_) => None,
        }
    }

    /// The relation, if the plan was not an aggregate.
    pub fn as_rows(&self) -> Option<&Relation> {
        match self {
            QueryOutput::Rows(r) => Some(r),
            QueryOutput::Scalar(_) => None,
        }
    }
}

/// A set of named relations plus the executor entry point.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Relation>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a relation under its own name, replacing any previous
    /// relation of that name.
    pub fn register(&mut self, relation: Relation) {
        self.tables.insert(relation.name().to_string(), relation);
    }

    /// Looks up a registered relation.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Executes a plan.
    ///
    /// # Errors
    ///
    /// Returns a [`RelError`] for unknown tables/columns, type mismatches
    /// or unhashable join keys. Expression evaluation errors inside engine
    /// tasks surface as rows being dropped is **not** acceptable for a
    /// database, so predicates are pre-validated against the first row
    /// where possible and evaluation errors panic the stage (fail-fast,
    /// as SparkSQL aborts a job).
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryOutput, RelError> {
        match plan {
            LogicalPlan::Aggregate { input, agg } => {
                let rel = self.execute_rel(input)?;
                Ok(QueryOutput::Scalar(self.aggregate(&rel, agg)?))
            }
            LogicalPlan::GroupBy { input, key, agg } => {
                let rel = self.execute_rel(input)?;
                Ok(QueryOutput::Rows(self.group_by(&rel, key, agg)?))
            }
            _ => Ok(QueryOutput::Rows(self.execute_rel(plan)?)),
        }
    }

    /// Grouped aggregation: one output row `(key, value)` per distinct
    /// key, computed through a `reduce_by_key` shuffle.
    fn group_by(&self, rel: &Relation, key: &str, agg: &Aggregate) -> Result<Relation, RelError> {
        let ki = rel.schema().index_of(key).ok_or_else(|| {
            RelError::UnknownColumn(key.to_string(), rel.schema().columns().to_vec())
        })?;
        if let Some(first) = rel.data().take(1).first() {
            if first[ki].join_key().is_none() {
                return Err(RelError::UnhashableJoinKey(key.to_string()));
            }
        }
        let value: Option<crate::expr::BoundExpr> = match agg {
            Aggregate::CountStar => None,
            Aggregate::Sum(e) => {
                let bound = e.bind(rel.schema())?;
                if let Some(first) = rel.data().take(1).first() {
                    bound
                        .eval(first)?
                        .as_f64()
                        .ok_or(RelError::NonNumericAggregate)?;
                }
                Some(bound)
            }
        };
        let keyed = rel.data().map(move |row| {
            let v = match &value {
                None => 1.0,
                Some(e) => e
                    .eval(row)
                    .ok()
                    .and_then(|x| x.as_f64())
                    .expect("aggregate expression validated against the schema"),
            };
            (key_of(row, ki), (row[ki].clone(), v))
        });
        let grouped = keyed
            .reduce_by_key(|a, b| (a.0.clone(), a.1 + b.1))
            .map(|(_, (k, v))| vec![k.clone(), Value::Float(*v)]);
        let agg_name = match agg {
            Aggregate::CountStar => "count",
            Aggregate::Sum(_) => "sum",
        };
        Ok(Relation::from_dataset(
            rel.name().to_string(),
            Schema::from_qualified(vec![
                rel.schema().columns()[ki].clone(),
                format!("{}.{agg_name}", rel.name()),
            ]),
            grouped,
        ))
    }

    fn aggregate(&self, rel: &Relation, agg: &Aggregate) -> Result<f64, RelError> {
        match agg {
            Aggregate::CountStar => Ok(rel.len() as f64),
            Aggregate::Sum(expr) => {
                let bound = expr.bind(rel.schema())?;
                // Pre-validate on one row so type errors surface as
                // Results rather than stage panics.
                if let Some(first) = rel.data().take(1).first() {
                    bound
                        .eval(first)?
                        .as_f64()
                        .ok_or(RelError::NonNumericAggregate)?;
                }
                let sum = rel
                    .data()
                    .map(move |row| {
                        bound
                            .eval(row)
                            .ok()
                            .and_then(|v| v.as_f64())
                            .expect("sum expression validated against the schema")
                    })
                    .reduce(|a, b| a + b)
                    .unwrap_or(0.0);
                Ok(sum)
            }
        }
    }

    fn execute_rel(&self, plan: &LogicalPlan) -> Result<Relation, RelError> {
        match plan {
            LogicalPlan::Scan { table } => self
                .tables
                .get(table)
                .cloned()
                .ok_or_else(|| RelError::UnknownTable(table.clone())),
            LogicalPlan::Filter { input, predicate } => {
                let rel = self.execute_rel(input)?;
                let bound = predicate.bind(rel.schema())?;
                if let Some(first) = rel.data().take(1).first() {
                    bound.eval_bool(first)?;
                }
                let data = rel.data().filter(move |row| {
                    bound
                        .eval_bool(row)
                        .expect("predicate validated against the schema")
                });
                Ok(Relation::from_dataset(
                    rel.name().to_string(),
                    rel.schema().clone(),
                    data,
                ))
            }
            LogicalPlan::Project { input, columns } => {
                let rel = self.execute_rel(input)?;
                let mut indices = Vec::with_capacity(columns.len());
                let mut names = Vec::with_capacity(columns.len());
                for c in columns {
                    let i = rel.schema().index_of(c).ok_or_else(|| {
                        RelError::UnknownColumn(c.clone(), rel.schema().columns().to_vec())
                    })?;
                    indices.push(i);
                    names.push(rel.schema().columns()[i].clone());
                }
                let indices = Arc::new(indices);
                let data = rel
                    .data()
                    .map(move |row| indices.iter().map(|&i| row[i].clone()).collect::<Row>());
                Ok(Relation::from_dataset(
                    rel.name().to_string(),
                    Schema::from_qualified(names),
                    data,
                ))
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.execute_rel(left)?;
                let r = self.execute_rel(right)?;
                let li = l.schema().index_of(left_key).ok_or_else(|| {
                    RelError::UnknownColumn(left_key.clone(), l.schema().columns().to_vec())
                })?;
                let ri = r.schema().index_of(right_key).ok_or_else(|| {
                    RelError::UnknownColumn(right_key.clone(), r.schema().columns().to_vec())
                })?;
                // Validate hashability on first rows.
                for (rel, idx, name) in [(&l, li, left_key), (&r, ri, right_key)] {
                    if let Some(first) = rel.data().take(1).first() {
                        if first[idx].join_key().is_none() {
                            return Err(RelError::UnhashableJoinKey(name.clone()));
                        }
                    }
                }
                let keyed_l = l.data().map(move |row| (key_of(row, li), row.clone()));
                let keyed_r = r.data().map(move |row| (key_of(row, ri), row.clone()));
                let joined = keyed_l.join(&keyed_r).map(|(_, (lrow, rrow))| {
                    let mut out = lrow.clone();
                    out.extend(rrow.iter().cloned());
                    out
                });
                Ok(Relation::from_dataset(
                    l.name().to_string(),
                    l.schema().concat(r.schema()),
                    joined,
                ))
            }
            LogicalPlan::Aggregate { .. } | LogicalPlan::GroupBy { .. } => {
                // execute() handles aggregates; reaching here means an
                // aggregate was nested under another operator, which the
                // executor does not support.
                Err(RelError::TypeMismatch("nested aggregates are unsupported"))
            }
        }
    }
}

fn key_of(row: &Row, idx: usize) -> JoinKey {
    row[idx]
        .join_key()
        .expect("join key hashability validated against the first row")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::int;
    use crate::value::Value;
    use dataflow::Context;

    fn catalog(ctx: &Context) -> Catalog {
        let mut c = Catalog::new();
        // orders(orderkey, custkey, priority)
        let orders: Vec<Row> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10), Value::Int(i % 5 + 1)])
            .collect();
        c.register(Relation::from_rows(
            ctx,
            Schema::new("orders", &["orderkey", "custkey", "priority"]),
            orders,
            4,
        ));
        // lineitem(orderkey, price): 3 per order
        let lineitem: Vec<Row> = (0..300)
            .map(|i| vec![Value::Int(i / 3), Value::Float((i % 7) as f64)])
            .collect();
        c.register(Relation::from_rows(
            ctx,
            Schema::new("lineitem", &["orderkey", "price"]),
            lineitem,
            4,
        ));
        c
    }

    #[test]
    fn scan_filter_count() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan = LogicalPlan::scan("orders")
            .filter(Expr::col("priority").ge(int(3)))
            .count();
        // priorities 1..=5 uniform over 100 orders: 3,4,5 → 60.
        assert_eq!(c.execute(&plan).unwrap().as_scalar().unwrap(), 60.0);
    }

    #[test]
    fn join_count_matches_fanout() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan = LogicalPlan::scan("orders")
            .join(
                LogicalPlan::scan("lineitem"),
                "orders.orderkey",
                "lineitem.orderkey",
            )
            .count();
        assert_eq!(c.execute(&plan).unwrap().as_scalar().unwrap(), 300.0);
    }

    #[test]
    fn join_then_filter_then_sum() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan = LogicalPlan::scan("orders")
            .join(
                LogicalPlan::scan("lineitem"),
                "orders.orderkey",
                "lineitem.orderkey",
            )
            .filter(Expr::col("orders.priority").eq(int(1)))
            .sum(Expr::col("lineitem.price"));
        let got = c.execute(&plan).unwrap().as_scalar().unwrap();
        // Reference computation.
        let mut want = 0.0;
        for i in 0..300i64 {
            let orderkey = i / 3;
            if orderkey % 5 + 1 == 1 {
                want += (i % 7) as f64;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn projection_narrows_schema() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan = LogicalPlan::scan("orders").project(&["custkey"]);
        let out = c.execute(&plan).unwrap();
        let rel = out.as_rows().unwrap();
        assert_eq!(rel.schema().columns(), &["orders.custkey".to_string()]);
        assert_eq!(rel.len(), 100);
    }

    #[test]
    fn errors_are_reported() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        assert_eq!(
            c.execute(&LogicalPlan::scan("nope").count()).unwrap_err(),
            RelError::UnknownTable("nope".into())
        );
        let bad_col = LogicalPlan::scan("orders")
            .filter(Expr::col("zz").eq(int(1)))
            .count();
        assert!(matches!(
            c.execute(&bad_col).unwrap_err(),
            RelError::UnknownColumn(..)
        ));
        let float_key = LogicalPlan::scan("lineitem")
            .join(LogicalPlan::scan("lineitem"), "price", "price")
            .count();
        assert!(matches!(
            c.execute(&float_key).unwrap_err(),
            RelError::UnhashableJoinKey(_)
        ));
        let bad_sum = LogicalPlan::scan("orders").sum(Expr::col("priority").eq(int(1)));
        assert_eq!(
            c.execute(&bad_sum).unwrap_err(),
            RelError::NonNumericAggregate
        );
    }

    #[test]
    fn scalar_and_rows_views() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let scalar = c.execute(&LogicalPlan::scan("orders").count()).unwrap();
        assert_eq!(scalar.as_scalar(), Some(100.0));
        assert!(scalar.as_rows().is_none());
        let rows = c.execute(&LogicalPlan::scan("orders")).unwrap();
        assert!(rows.as_scalar().is_none());
        assert_eq!(rows.as_rows().unwrap().len(), 100);
    }

    #[test]
    fn executed_plan_and_flex_plan_share_structure() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan = LogicalPlan::scan("orders")
            .join(
                LogicalPlan::scan("lineitem"),
                "orders.orderkey",
                "lineitem.orderkey",
            )
            .filter(Expr::col("priority").ge(int(3)))
            .count();
        // Execute the plan...
        let measured = c.execute(&plan).unwrap().as_scalar().unwrap();
        assert!(measured > 0.0);
        // ...and analyse the same plan with FLEX.
        let mut meta = upa_flex::Metadata::new();
        meta.set_max_freq("orders", "orderkey", 1);
        meta.set_max_freq("lineitem", "orderkey", 3);
        let flex = upa_flex::analyze(&plan.to_flex(), &meta).unwrap();
        assert_eq!(flex, 3.0, "one order joins at most 3 lineitems");
    }

    #[test]
    fn group_by_count_matches_reference() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan =
            LogicalPlan::scan("orders").group_by("custkey", crate::plan::Aggregate::CountStar);
        let out = c.execute(&plan).unwrap();
        let rel = out.as_rows().unwrap();
        // 100 orders over 10 customers: 10 groups of 10.
        assert_eq!(rel.len(), 10);
        for row in rel.data().collect() {
            assert_eq!(row[1], Value::Float(10.0));
        }
    }

    #[test]
    fn group_by_sum_matches_reference() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan = LogicalPlan::scan("lineitem").group_by(
            "lineitem.orderkey",
            crate::plan::Aggregate::Sum(Expr::col("price")),
        );
        let out = c.execute(&plan).unwrap();
        let rel = out.as_rows().unwrap();
        assert_eq!(rel.len(), 100, "one group per order");
        // Spot-check order 0: lineitems 0,1,2 with prices 0,1,2.
        let rows = rel.data().collect();
        let row0 = rows
            .iter()
            .find(|r| r[0] == Value::Int(0))
            .expect("group for order 0");
        assert_eq!(row0[1], Value::Float(3.0));
    }

    #[test]
    fn group_by_on_float_key_is_rejected() {
        let ctx = Context::with_threads(2);
        let c = catalog(&ctx);
        let plan =
            LogicalPlan::scan("lineitem").group_by("price", crate::plan::Aggregate::CountStar);
        assert!(matches!(
            c.execute(&plan).unwrap_err(),
            RelError::UnhashableJoinKey(_)
        ));
    }
}
